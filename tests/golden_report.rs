//! Golden-report equivalence gate for the interned-ID refactor: the full
//! `AnalysisReport` of a fixed world, rendered deterministically, must stay
//! byte-identical to the snapshot captured from the address-keyed pipeline
//! before the columnar core landed. Any bit of drift in a float sum, a
//! candidate ordering or a Venn bucket shows up as a text diff here.
//!
//! Regenerate the snapshot (after an *intentional* output change only) with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_report
//! ```

use std::fmt::Write as _;

use washtrade::pipeline::{analyze_with, AnalysisInput, AnalysisOptions, AnalysisReport};
use workload::{WorkloadConfig, World};

const GOLDEN_PATH: &str = "tests/golden/analysis_report_small_2024.txt";

/// Render every deterministic field of the report. `Debug` for `HashMap`
/// fields would iterate in per-process random order, so map-valued fields
/// (volume CDFs, pattern occurrences) are emitted as key-sorted vectors;
/// `stage_metrics` is timing-dependent and excluded.
fn render(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let c = &report.characterization;
    writeln!(out, "table1: {:#?}", report.table1).unwrap();
    writeln!(
        out,
        "dataset: nfts={} transfers={} raw={} compliant={} non_compliant={}",
        report.dataset_nfts,
        report.dataset_transfers,
        report.raw_transfer_events,
        report.compliant_contracts,
        report.non_compliant_contracts
    )
    .unwrap();
    writeln!(out, "refinement: {:#?}", report.refinement).unwrap();
    writeln!(out, "detection: {:#?}", report.detection).unwrap();
    writeln!(
        out,
        "characterization: total_activities={} total_volume_usd={:?} total_volume_eth={:?}",
        c.total_activities, c.total_volume_usd, c.total_volume_eth
    )
    .unwrap();
    writeln!(out, "per_marketplace: {:#?}", c.per_marketplace).unwrap();
    let mut cdfs: Vec<_> = c.volume_cdfs.iter().collect();
    cdfs.sort_by_key(|(name, _)| name.as_str());
    writeln!(out, "volume_cdfs: {cdfs:#?}").unwrap();
    writeln!(out, "lifetimes: {:#?}", c.lifetimes).unwrap();
    writeln!(out, "collection_timelines: {:#?}", c.collection_timelines).unwrap();
    writeln!(out, "accounts_histogram: {:?}", c.patterns.accounts_histogram).unwrap();
    let mut occurrences: Vec<_> = c.patterns.pattern_occurrences.iter().collect();
    occurrences.sort();
    writeln!(out, "pattern_occurrences: {occurrences:?}").unwrap();
    writeln!(
        out,
        "patterns: uncatalogued={} two_account={:?} self_trade={:?}",
        c.patterns.uncatalogued, c.patterns.two_account_fraction, c.patterns.self_trade_fraction
    )
    .unwrap();
    writeln!(out, "serial_traders: {:#?}", c.serial_traders).unwrap();
    writeln!(
        out,
        "acquired: same_day={:?} within_two_weeks={:?}",
        c.acquired_same_day_fraction, c.acquired_within_two_weeks_fraction
    )
    .unwrap();
    writeln!(out, "rewards: {:#?}", report.rewards).unwrap();
    writeln!(out, "resales: {:#?}", report.resales).unwrap();
    out
}

#[test]
fn report_matches_pre_refactor_golden_snapshot() {
    let world = World::generate(WorkloadConfig::small(2024)).expect("world");
    let input = AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    };
    let rendered = render(&analyze_with(input, AnalysisOptions::default()));

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("golden snapshot rewritten: {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    if rendered != golden {
        // Point at the first diverging line instead of dumping two reports.
        let line = rendered
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| rendered.lines().count().min(golden.lines().count()) + 1);
        panic!(
            "report diverged from the pre-refactor golden snapshot at line {line}:\n  now:    {}\n  golden: {}",
            rendered.lines().nth(line - 1).unwrap_or("<eof>"),
            golden.lines().nth(line - 1).unwrap_or("<eof>"),
        );
    }
}
