//! Golden-report equivalence gate for the interned-ID refactor: the full
//! `AnalysisReport` of a fixed world, rendered deterministically, must stay
//! byte-identical to the snapshot captured from the address-keyed pipeline
//! before the columnar core landed. Any bit of drift in a float sum, a
//! candidate ordering or a Venn bucket shows up as a text diff here.
//!
//! Regenerate the snapshot (after an *intentional* output change only) with:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test --test golden_report
//! ```

use washtrade::pipeline::{analyze_with, AnalysisInput, AnalysisOptions};
use washtrade::report::render_deterministic as render;
use workload::{WorkloadConfig, World};

const GOLDEN_PATH: &str = "tests/golden/analysis_report_small_2024.txt";

#[test]
fn report_matches_pre_refactor_golden_snapshot() {
    let world = World::generate(WorkloadConfig::small(2024)).expect("world");
    let input = AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    };
    let rendered = render(&analyze_with(input, AnalysisOptions::default()));

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        eprintln!("golden snapshot rewritten: {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    diff_against_golden(&rendered, &golden);
}

/// The same golden gate with the thread budget pinned to 8: the parallel
/// decode, commit splice and per-NFT fan-outs must reproduce the snapshot
/// byte for byte when they actually fan out. CI runs this as its own named
/// step so a parallelism-only regression is labelled unambiguously.
#[test]
fn report_matches_golden_snapshot_at_eight_threads() {
    let world = World::generate(WorkloadConfig::small(2024)).expect("world");
    let input = AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    };
    let rendered =
        render(&analyze_with(input, AnalysisOptions { threads: 8, collect_metrics: false }));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    diff_against_golden(&rendered, &golden);
}

fn diff_against_golden(rendered: &str, golden: &str) {
    if rendered != golden {
        // Point at the first diverging line instead of dumping two reports.
        let line = rendered
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1)
            .unwrap_or_else(|| rendered.lines().count().min(golden.lines().count()) + 1);
        panic!(
            "report diverged from the pre-refactor golden snapshot at line {line}:\n  now:    {}\n  golden: {}",
            rendered.lines().nth(line - 1).unwrap_or("<eof>"),
            golden.lines().nth(line - 1).unwrap_or("<eof>"),
        );
    }
}
