//! Snapshot isolation under concurrent reads: reader threads issue queries
//! *while* the streaming analyzer ingests epochs, and every single response
//! must be internally consistent with exactly one published epoch — equal to
//! a reference recomputation from the [`LiveReport`] as it stood when that
//! epoch was published. Over random worlds, epoch slicings and reader-thread
//! counts.
//!
//! The mechanism under test: one `SnapshotPublisher::load` hands a reader an
//! immutable epoch-versioned snapshot, so a response can never mix state
//! from two epochs (no torn reads), and the query cache — keyed by
//! `(epoch, query)` — can never leak a stale epoch's answer forward.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use nft_wash_study::ethsim::{Address, BlockNumber, Timestamp, Wei};
use nft_wash_study::tokens::NftId;
use nft_wash_study::washtrade::pipeline::AnalysisInput;
use nft_wash_study::washtrade_serve::{AccountDossier, Query, QueryService, Response};
use nft_wash_study::washtrade_stream::{LiveReport, StreamAnalyzer, StreamOptions};
use nft_wash_study::workload::{WorkloadConfig, World};

/// The reference state of one published epoch, captured from the analyzer's
/// [`LiveReport`] right after the epoch was ingested: the resolved confirmed
/// activities plus the counters a `Stats` response must report.
#[derive(Debug, Clone, Default)]
struct Expected {
    /// `(nft, accounts, volume)` per confirmed activity, in confirmed order.
    activities: Vec<(NftId, Vec<Address>, Wei)>,
    watermark: BlockNumber,
    dataset_transfers: usize,
}

impl Expected {
    fn of(report: &LiveReport) -> Expected {
        Expected {
            activities: report
                .detection
                .confirmed
                .iter()
                .map(|a| (a.nft(), a.accounts().to_vec(), a.candidate.volume))
                .collect(),
            watermark: report.watermark,
            dataset_transfers: report.dataset_transfers,
        }
    }

    /// All currently confirmed NFTs, ascending (what `SuspectsSince(0)`
    /// must return).
    fn suspects(&self) -> Vec<NftId> {
        let mut nfts: Vec<NftId> = self.activities.iter().map(|(nft, _, _)| *nft).collect();
        nfts.sort_unstable();
        nfts.dedup();
        nfts
    }

    /// The pre-index `top_movers` aggregation.
    fn top_movers(&self, n: usize) -> Vec<(NftId, Wei)> {
        let mut volume_by_nft: BTreeMap<NftId, Wei> = BTreeMap::new();
        for (nft, _, volume) in &self.activities {
            *volume_by_nft.entry(*nft).or_insert(Wei::ZERO) += *volume;
        }
        let mut ranked: Vec<(NftId, Wei)> = volume_by_nft.into_iter().collect();
        ranked.sort_by_key(|(nft, volume)| (std::cmp::Reverse(*volume), *nft));
        ranked.truncate(n);
        ranked
    }

    /// The dossier one account's query must come back with, recomputed by a
    /// plain scan over the epoch's activities.
    fn dossier(&self, account: Address) -> Option<AccountDossier> {
        let mine: Vec<&(NftId, Vec<Address>, Wei)> =
            self.activities.iter().filter(|(_, accounts, _)| accounts.contains(&account)).collect();
        if mine.is_empty() {
            return None;
        }
        let mut nfts: Vec<NftId> = mine.iter().map(|(nft, _, _)| *nft).collect();
        nfts.sort_unstable();
        nfts.dedup();
        let mut collaborators: Vec<Address> = mine
            .iter()
            .flat_map(|(_, accounts, _)| accounts.iter().copied())
            .filter(|&a| a != account)
            .collect();
        collaborators.sort_unstable();
        collaborators.dedup();
        Some(AccountDossier {
            account,
            activities: mine.len(),
            nfts,
            wash_volume: mine.iter().map(|(_, _, volume)| *volume).sum(),
            collaborators,
        })
    }

    /// Per-collection `(activities, suspect NFTs)` counts.
    fn collection_counts(&self) -> BTreeMap<Address, (usize, usize)> {
        let mut per_collection: BTreeMap<Address, (usize, std::collections::BTreeSet<NftId>)> =
            BTreeMap::new();
        for (nft, _, _) in &self.activities {
            let entry = per_collection.entry(nft.contract).or_default();
            entry.0 += 1;
            entry.1.insert(*nft);
        }
        per_collection
            .into_iter()
            .map(|(contract, (activities, nfts))| (contract, (activities, nfts.len())))
            .collect()
    }
}

/// Check one served response against the reference state of the epoch it
/// claims to come from. Panics (inside the proptest case) on any mismatch.
fn verify(epoch: u64, query: &Query, response: &Response, expected: &Expected, context: &str) {
    match (query, response) {
        (Query::Stats, Response::Stats(stats)) => {
            assert_eq!(stats.epoch, epoch, "stats epoch tag ({context})");
            assert_eq!(stats.watermark, expected.watermark, "watermark ({context})");
            assert_eq!(
                stats.confirmed_activities,
                expected.activities.len(),
                "confirmed count ({context})"
            );
            assert_eq!(stats.suspect_nfts, expected.suspects().len(), "suspect NFTs ({context})");
            assert_eq!(
                stats.wash_volume,
                expected.activities.iter().map(|(_, _, volume)| *volume).sum::<Wei>(),
                "wash volume ({context})"
            );
            assert_eq!(
                stats.dataset_transfers, expected.dataset_transfers,
                "transfer count ({context})"
            );
        }
        (Query::SuspectsSince(block), Response::Suspects(suspects)) => {
            assert_eq!(block.0, 0, "the mix only issues the all-time window");
            assert_eq!(suspects, &expected.suspects(), "suspect set ({context})");
        }
        (Query::TopMovers(n), Response::TopMovers(movers)) => {
            assert_eq!(movers, &expected.top_movers(*n), "top movers ({context})");
        }
        (Query::Account(account), Response::Account(dossier)) => {
            assert_eq!(dossier, &expected.dossier(*account), "dossier ({context})");
        }
        (Query::TopCollections(_), Response::Collections(collections)) => {
            let counts = expected.collection_counts();
            assert_eq!(collections.len(), counts.len(), "collection count ({context})");
            for rollup in collections {
                let (activities, suspect_nfts) =
                    counts.get(&rollup.collection).unwrap_or_else(|| {
                        panic!("unexpected collection {:?} ({context})", rollup.collection)
                    });
                assert_eq!(rollup.activities, *activities, "rollup activities ({context})");
                assert_eq!(rollup.suspect_nfts, *suspect_nfts, "rollup NFTs ({context})");
            }
            assert!(
                collections.windows(2).all(|w| w[0].volume_usd >= w[1].volume_usd),
                "rollups ranked by volume ({context})"
            );
        }
        (Query::AsOf(target, _), Response::NotRetained { requested, .. }) => {
            assert_eq!(requested, target, "typed miss names the requested epoch ({context})");
        }
        (Query::AsOf(target, inner), response) => {
            assert_eq!(epoch, *target, "AsOf answers from the addressed epoch ({context})");
            verify(epoch, inner, response, expected, context);
        }
        (query, response) => {
            panic!("response shape does not match query: {query:?} → {response:?} ({context})")
        }
    }
}

/// Check one suspect-diff response against the reference states of both
/// addressed epochs (the main sample loop resolves them; `verify` only sees
/// one epoch's reference).
fn verify_diff(
    epoch: u64,
    from: u64,
    to: u64,
    response: &Response,
    expectations: &BTreeMap<u64, Expected>,
    context: &str,
) {
    match response {
        Response::NotRetained { requested, .. } => {
            assert!(
                *requested == from || *requested == to,
                "typed miss names one of the diffed epochs ({context})"
            );
        }
        Response::SuspectDiff { added, removed } => {
            assert_eq!(epoch, from.max(to), "diff is tagged with the later epoch ({context})");
            let suspects_at = |epoch: &u64| -> Vec<NftId> {
                expectations
                    .get(epoch)
                    .unwrap_or_else(|| {
                        panic!("diff answered for unpublished epoch {epoch} ({context})")
                    })
                    .suspects()
            };
            let from_set = suspects_at(&from);
            let to_set = suspects_at(&to);
            let expected_added: Vec<NftId> =
                to_set.iter().filter(|nft| !from_set.contains(nft)).copied().collect();
            let expected_removed: Vec<NftId> =
                from_set.iter().filter(|nft| !to_set.contains(nft)).copied().collect();
            assert_eq!(added, &expected_added, "diff additions ({context})");
            assert_eq!(removed, &expected_removed, "diff removals ({context})");
        }
        other => panic!("suspect diff answered with {other:?} ({context})"),
    }
}

/// A world with every pipeline ingredient, small enough for 96 threaded
/// cases.
fn tiny_config(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        seed,
        start: Timestamp::from_secs(1_609_459_200),
        duration_days: 80,
        collections: 4,
        non_compliant_collections: 1,
        erc1155_collections: 1,
        dex_position_nfts: 2,
        legit_traders: 12,
        legit_sales: 30,
        zero_volume_shuffles: 2,
        wash_activities: 10,
        serial_trader_fraction: 0.3,
        gas_price_gwei: 40,
    }
}

proptest::proptest! {
    #[test]
    fn concurrent_readers_always_observe_one_published_epoch(
        seed in 0u64..1_000,
        reader_threads in 1usize..4,
        budgets in proptest::collection::vec(1u64..120, 1..6),
    ) {
        let world = World::generate(tiny_config(seed)).expect("world");
        let input = AnalysisInput {
            chain: &world.chain,
            labels: &world.labels,
            directory: &world.directory,
            oracle: &world.oracle,
        };

        let mut analyzer =
            StreamAnalyzer::new(input, StreamOptions::single_threaded());
        let service = QueryService::new(analyzer.publisher());

        // Reference state per published epoch; epoch 0 is the empty
        // snapshot a fresh publisher holds.
        let expectations: Mutex<BTreeMap<u64, Expected>> =
            Mutex::new([(0u64, Expected::default())].into_iter().collect());
        let samples: Mutex<Vec<(u64, Query, Response)>> = Mutex::new(Vec::new());
        let done = AtomicBool::new(false);

        std::thread::scope(|scope| {
            // Writer: ingest every epoch, recording the reference state the
            // just-published snapshot must serve. Readers may race ahead of
            // the recording — samples are verified after the join, when the
            // map is complete.
            scope.spawn(|| {
                let mut cycle = budgets.iter().cycle();
                while let Some(delta) =
                    analyzer.ingest_epoch(*cycle.next().expect("non-empty budgets"))
                {
                    let epoch = delta.index as u64 + 1;
                    expectations
                        .lock()
                        .expect("expectations lock")
                        .insert(epoch, Expected::of(analyzer.report()));
                }
                done.store(true, Ordering::Release);
            });

            // Readers: hammer the typed query mix through the shared service
            // (and its cache) while ingestion runs, collecting epoch-tagged
            // responses.
            for reader in 0..reader_threads {
                let service = service.clone();
                let samples = &samples;
                let done = &done;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    let mut round = reader;
                    loop {
                        let finishing = done.load(Ordering::Acquire);
                        // Soft cap mid-ingestion so sample memory stays
                        // bounded; the pass after the writer finished always
                        // runs, so the final epoch is sampled.
                        if local.len() < 600 || finishing {
                            let snapshot = service.snapshot();
                            let account = snapshot
                                .accounts()
                                .get(round % snapshot.accounts().len().max(1))
                                .copied()
                                .unwrap_or(Address::NULL);
                            let mix = [
                                Query::Stats,
                                Query::SuspectsSince(BlockNumber(0)),
                                Query::TopMovers(1 + round % 7),
                                Query::Account(account),
                                Query::TopCollections(usize::MAX),
                            ];
                            for query in mix {
                                let served = service.query(&query);
                                local.push((served.epoch, query, served.response));
                            }
                            // Historical queries against retained epochs:
                            // the addressed epoch may be evicted between
                            // listing and answering, so a typed
                            // `NotRetained` miss is acceptable; an *answer*
                            // must match that epoch's reference state.
                            let retained = service.publisher().retained_epochs();
                            let target = retained[round % retained.len()];
                            let older = retained[(round / 3) % retained.len()];
                            let historical = [
                                Query::AsOf(
                                    target,
                                    Box::new(Query::SuspectsSince(BlockNumber(0))),
                                ),
                                Query::AsOf(target, Box::new(Query::Stats)),
                                Query::AsOf(target, Box::new(Query::TopMovers(1 + round % 7))),
                                Query::SuspectDiff { from: older, to: target },
                            ];
                            for query in historical {
                                let served = service.query(&query);
                                local.push((served.epoch, query, served.response));
                            }
                            round += 1;
                        } else {
                            std::thread::yield_now();
                        }
                        if finishing {
                            break;
                        }
                    }
                    samples.lock().expect("samples lock").extend(local);
                });
            }
        });

        let expectations = expectations.into_inner().expect("expectations lock");
        let samples = samples.into_inner().expect("samples lock");
        proptest::prop_assert!(!samples.is_empty(), "readers must have sampled something");
        for (epoch, query, response) in &samples {
            let context = format!(
                "seed {seed}, readers {reader_threads}, budgets {budgets:?}, epoch {epoch}"
            );
            if let Query::SuspectDiff { from, to } = query {
                verify_diff(*epoch, *from, *to, response, &expectations, &context);
                continue;
            }
            let expected = expectations.get(epoch).unwrap_or_else(|| {
                panic!("response claims never-published epoch {epoch} (seed {seed})")
            });
            verify(*epoch, query, response, expected, &context);
        }

        // The final epoch must have been observed at least once (the
        // post-completion pass guarantees it), so the loop above genuinely
        // covered the converged state.
        let last_epoch = *expectations.keys().next_back().expect("at least epoch 0");
        proptest::prop_assert!(
            samples.iter().any(|(epoch, _, _)| *epoch == last_epoch),
            "no sample observed the final epoch {} (seed {})",
            last_epoch,
            seed
        );
    }
}
