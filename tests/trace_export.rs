//! The trace-export gate: the Chrome trace-event JSON emitted by
//! `obs::trace::export_chrome_json` must be well-formed (parseable, every
//! event carrying the complete-event fields) and causally sound — a child
//! span's `[ts, ts+dur]` window nests inside its parent's, and the child
//! shares the parent's trace id.
//!
//! Two entry points: a self-contained test that streams a small world and
//! validates its own export, and a CI hook that validates an externally
//! produced trace file (the observability bench's large-world export) when
//! `CHROME_TRACE_PATH` points at one.

use bench_suite::json::{self, Json};
use nft_wash_study::ethsim::Timestamp;
use nft_wash_study::obs;
use nft_wash_study::washtrade::pipeline::AnalysisInput;
use nft_wash_study::washtrade_stream::{StreamAnalyzer, StreamOptions};
use nft_wash_study::workload::{WorkloadConfig, World};

/// Containment comparisons tolerate the µs formatting's truncation to three
/// decimals (1 ns) plus float parse rounding.
const EPSILON_US: f64 = 0.01;

fn field<'a>(event: &'a Json, key: &str) -> &'a Json {
    event.get(key).unwrap_or_else(|| panic!("trace event missing `{key}`: {event:?}"))
}

fn num(value: &Json) -> f64 {
    match value {
        Json::Int(n) => *n as f64,
        Json::Float(f) => *f,
        other => panic!("expected a number, got {other:?}"),
    }
}

fn int(value: &Json) -> i64 {
    match value {
        Json::Int(n) => *n,
        other => panic!("expected an integer, got {other:?}"),
    }
}

/// Validate one exported trace document; returns the number of events.
fn validate_chrome_trace(text: &str) -> usize {
    let doc = json::parse(text).expect("exported trace must be valid JSON");
    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("top-level `traceEvents` array missing: {other:?}"),
    };

    // Pass 1 — shape, and an index of every span's window and trace.
    let mut spans = std::collections::HashMap::new();
    for event in events {
        match field(event, "ph") {
            Json::Str(ph) => assert_eq!(ph, "X", "only complete events are exported"),
            other => panic!("`ph` must be a string: {other:?}"),
        }
        assert!(matches!(field(event, "name"), Json::Str(_)));
        let ts = num(field(event, "ts"));
        let dur = num(field(event, "dur"));
        assert!(ts >= 0.0 && dur >= 0.0);
        int(field(event, "pid"));
        int(field(event, "tid"));
        let args = field(event, "args");
        let span = int(field(args, "span"));
        let trace = int(field(args, "trace"));
        let parent = int(field(args, "parent"));
        spans.insert(span, (trace, parent, ts, ts + dur));
    }

    // Pass 2 — causal soundness. A parent evicted from the bounded flight
    // ring leaves its child effectively rootless; only links where both
    // ends survived are checkable.
    let mut checked = 0usize;
    for (span, (trace, parent, start, end)) in &spans {
        if *parent == 0 {
            continue;
        }
        if let Some((parent_trace, _, parent_start, parent_end)) = spans.get(parent) {
            assert_eq!(
                trace, parent_trace,
                "span {span} and its parent {parent} must share a trace"
            );
            assert!(
                *start >= parent_start - EPSILON_US && *end <= parent_end + EPSILON_US,
                "span {span} [{start}, {end}] outlives its parent {parent} \
                 [{parent_start}, {parent_end}]"
            );
            checked += 1;
        }
    }
    if spans.len() > 1 {
        assert!(checked > 0, "a multi-span trace must have at least one checkable link");
    }
    events.len()
}

#[test]
fn streamed_world_exports_a_valid_nesting_timeline() {
    let world = World::generate(WorkloadConfig {
        seed: 23,
        start: Timestamp::from_secs(1_609_459_200),
        duration_days: 60,
        collections: 4,
        non_compliant_collections: 1,
        erc1155_collections: 1,
        dex_position_nfts: 1,
        legit_traders: 10,
        legit_sales: 24,
        zero_volume_shuffles: 2,
        wash_activities: 8,
        serial_trader_fraction: 0.3,
        gas_price_gwei: 40,
    })
    .expect("world generation");
    let input = AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    };
    let mut analyzer = StreamAnalyzer::new(input, StreamOptions { threads: 4 });
    let mut epochs = 0usize;
    while analyzer.ingest_epoch(25).is_some() {
        epochs += 1;
    }
    assert!(epochs >= 2, "the world must slice into multiple epochs");

    let exported = obs::trace::export_chrome_json();
    if !obs::enabled() {
        assert_eq!(exported, "{\"traceEvents\":[]}", "noop builds export an empty timeline");
        return;
    }
    let count = validate_chrome_trace(&exported);
    assert!(count >= epochs, "at least one span per ingested epoch");
    // The epoch root and its pipeline phases all made it into the timeline.
    for name in ["stream.epoch", "ingest.decode", "stream.refine_detect", "serve.publish"] {
        assert!(exported.contains(&format!("\"name\":\"{name}\"")), "no `{name}` span exported");
    }
}

/// CI hook: validate the trace artifact the observability bench exported.
/// Skips (passing) when `CHROME_TRACE_PATH` is unset or the file is absent,
/// so plain `cargo test` stays self-contained.
#[test]
fn exported_bench_trace_file_validates_when_present() {
    let Ok(path) = std::env::var("CHROME_TRACE_PATH") else {
        return;
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    let count = validate_chrome_trace(&text);
    if obs::enabled() {
        assert!(count > 0, "an instrumented bench run must export spans ({path})");
    }
}
