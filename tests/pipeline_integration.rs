//! End-to-end integration tests: workload generation → full analysis
//! pipeline, checking structural invariants that must hold regardless of the
//! random seed.

use std::collections::HashSet;

use washtrade::pipeline::{analyze, AnalysisInput, AnalysisReport};
use workload::{WorkloadConfig, World};

fn run(seed: u64) -> (World, AnalysisReport) {
    let world = World::generate(WorkloadConfig::small(seed)).expect("world builds");
    let report = analyze(AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    });
    (world, report)
}

#[test]
fn table1_covers_all_six_marketplaces() {
    let (_, report) = run(1);
    assert_eq!(report.table1.len(), 6);
    let names: HashSet<&str> = report.table1.iter().map(|r| r.name.as_str()).collect();
    for name in ["OpenSea", "LooksRare", "Rarible", "SuperRare", "Foundation", "Decentraland"] {
        assert!(names.contains(name), "missing {name} in Table I");
    }
    // OpenSea should carry the bulk of ordinary transactions, as in the paper.
    let opensea = report.table1.iter().find(|r| r.name == "OpenSea").unwrap();
    let total_txs: usize = report.table1.iter().map(|r| r.transactions).sum();
    assert!(
        opensea.transactions * 2 > total_txs,
        "OpenSea should dominate marketplace transactions"
    );
}

#[test]
fn refinement_funnel_shrinks_monotonically() {
    let (_, report) = run(2);
    let refinement = report.refinement;
    assert!(refinement.initial.components >= refinement.after_service_removal.components);
    assert!(
        refinement.after_service_removal.components >= refinement.after_contract_removal.components
    );
    assert!(
        refinement.after_contract_removal.components >= refinement.after_zero_volume.components
    );
    assert!(refinement.after_zero_volume.components > 0, "some candidates must survive");
}

#[test]
fn venn_counts_are_consistent_with_confirmed_activities() {
    let (_, report) = run(3);
    let with_flow_evidence =
        report.detection.confirmed.iter().filter(|a| a.methods.flow_method_count() > 0).count();
    assert_eq!(report.detection.venn.total(), with_flow_evidence);
    // Everything confirmed must have at least one method.
    for activity in &report.detection.confirmed {
        assert!(activity.methods.confirmed());
    }
    // Self-trade counter matches the per-activity flags.
    let self_trades = report.detection.confirmed.iter().filter(|a| a.methods.self_trade).count();
    assert_eq!(report.detection.self_trades, self_trades);
}

#[test]
fn detection_is_deterministic_for_a_fixed_seed() {
    let (_, first) = run(4);
    let (_, second) = run(4);
    let nfts_first: Vec<_> = {
        let mut v: Vec<_> = first.detection.confirmed.iter().map(|a| a.nft()).collect();
        v.sort();
        v
    };
    let nfts_second: Vec<_> = {
        let mut v: Vec<_> = second.detection.confirmed.iter().map(|a| a.nft()).collect();
        v.sort();
        v
    };
    assert_eq!(nfts_first, nfts_second);
    assert_eq!(first.detection.venn, second.detection.venn);
    assert_eq!(first.dataset_transfers, second.dataset_transfers);
}

#[test]
fn characterization_totals_are_internally_consistent() {
    let (_, report) = run(5);
    let characterization = &report.characterization;
    assert_eq!(characterization.total_activities, report.detection.confirmed.len());
    let per_market_activities: usize =
        characterization.per_marketplace.iter().map(|row| row.activities).sum();
    assert_eq!(per_market_activities, characterization.total_activities);
    let histogram_total: usize = characterization.patterns.accounts_histogram.iter().sum();
    assert_eq!(histogram_total, characterization.total_activities);
    let classified: usize = characterization.patterns.pattern_occurrences.values().sum();
    assert_eq!(
        classified + characterization.patterns.uncatalogued,
        characterization.total_activities
    );
    // Volume shares are valid fractions.
    for row in &characterization.per_marketplace {
        if let Some(share) = row.share_of_marketplace_volume {
            assert!((0.0..=1.0 + 1e-9).contains(&share), "share {share} out of range");
        }
    }
    // Lifetime CDF fractions are monotone.
    assert!(
        characterization.lifetimes.within_one_day <= characterization.lifetimes.within_ten_days
    );
}

#[test]
fn wash_volume_never_exceeds_marketplace_total_volume() {
    let (_, report) = run(6);
    let totals: std::collections::HashMap<&str, f64> =
        report.table1.iter().map(|row| (row.name.as_str(), row.volume_usd)).collect();
    for row in &report.characterization.per_marketplace {
        if let Some(total) = totals.get(row.name.as_str()) {
            assert!(
                row.volume_usd <= total * 1.0001,
                "{}: wash volume {} exceeds marketplace volume {}",
                row.name,
                row.volume_usd,
                total
            );
        }
    }
}

#[test]
fn larger_worlds_scale_without_breaking_invariants() {
    let world = World::generate(WorkloadConfig::paper_scaled(9, 0.008)).expect("world");
    let report = analyze(AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    });
    assert!(report.detection.confirmed.len() >= world.truth.len() / 2);
    assert!(report.characterization.total_volume_usd > 0.0);
    // The LooksRare wash share of LooksRare volume should be large, as in the
    // paper (84.79%), because its legit volume is tiny in comparison.
    if let Some(row) =
        report.characterization.per_marketplace.iter().find(|row| row.name == "LooksRare")
    {
        if let Some(share) = row.share_of_marketplace_volume {
            assert!(share > 0.3, "LooksRare wash share unexpectedly low: {share}");
        }
    }
}
