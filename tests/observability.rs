//! The repository-level observability gate: one streamed world, a handful of
//! queries, then `Query::Metrics` must come back with a deterministic,
//! name-sorted snapshot that covers every instrumented subsystem — ingest,
//! the parallel executor, the streaming scheduler, and the serve layer.
//!
//! Under `--features obs-noop` the same test asserts the opposite contract:
//! the snapshot is empty, because every record path compiled to nothing.

use nft_wash_study::ethsim::Timestamp;
use nft_wash_study::obs;
use nft_wash_study::washtrade::pipeline::AnalysisInput;
use nft_wash_study::washtrade_serve::{Query, QueryService, Response};
use nft_wash_study::washtrade_stream::{StreamAnalyzer, StreamOptions};
use nft_wash_study::workload::{WorkloadConfig, World};

fn config(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        seed,
        start: Timestamp::from_secs(1_609_459_200),
        duration_days: 90,
        collections: 5,
        non_compliant_collections: 1,
        erc1155_collections: 1,
        dex_position_nfts: 2,
        legit_traders: 14,
        legit_sales: 40,
        zero_volume_shuffles: 3,
        wash_activities: 12,
        serial_trader_fraction: 0.3,
        gas_price_gwei: 40,
    }
}

fn metrics_snapshot(service: &QueryService) -> obs::MetricsSnapshot {
    let served = service.query(&Query::Metrics);
    assert!(!served.cached, "Query::Metrics must never be served from the cache");
    match served.response {
        Response::Metrics(snapshot) => snapshot,
        other => panic!("Query::Metrics answered with {other:?}"),
    }
}

#[test]
fn query_metrics_covers_every_instrumented_subsystem() {
    let world = World::generate(config(7)).expect("world generation");
    let input = AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    };

    // Four worker threads so the executor's parallel fan-out (and its
    // metrics) run even on a single-core host; results are thread-count
    // independent either way.
    let mut analyzer = StreamAnalyzer::new(input, StreamOptions { threads: 4 });
    let service = QueryService::new(analyzer.publisher());
    let mut epochs: usize = 0;
    while analyzer.ingest_epoch(20).is_some() {
        epochs += 1;
    }
    assert!(epochs >= 2, "the world must slice into multiple epochs");

    // Exercise the serve path: a repeated query (cache hit), a ranking, and
    // a point lookup.
    service.query(&Query::Stats);
    service.query(&Query::Stats);
    service.query(&Query::TopMovers(5));

    let snapshot = metrics_snapshot(&service);

    if !obs::enabled() {
        assert_eq!(snapshot.metrics.len(), 0, "noop builds must snapshot nothing");
        assert!(obs::recent_events(16).is_empty(), "noop builds must log no events");
        assert!(obs::flight::dump().is_empty(), "noop builds must record no trace spans");
        assert_eq!(obs::flight::recorded_total(), 0);
        match service.query(&Query::Health).response {
            Response::Health(report) => {
                assert_eq!(report, obs::HealthReport::default(), "noop health must be empty")
            }
            other => panic!("Query::Health answered with {other:?}"),
        }
        return;
    }

    // Every subsystem is represented.
    for prefix in ["ingest.", "executor.", "stream.", "serve."] {
        assert!(
            snapshot.metrics.iter().any(|metric| metric.name.starts_with(prefix)),
            "no {prefix}* metric in the snapshot"
        );
    }

    // Ingest: one instrumented call per streamed epoch, with phase timings.
    assert!(snapshot.counter("ingest.calls").unwrap_or(0) >= epochs as u64);
    assert!(snapshot.counter("ingest.transfers").unwrap_or(0) > 0);
    let decode = snapshot.histogram("ingest.decode_ns").expect("decode histogram");
    assert!(decode.count >= epochs as u64);

    // Executor: the dirty-set fan-outs report tasks and busy time.
    assert!(snapshot.counter("executor.fanouts").unwrap_or(0) > 0);
    assert!(snapshot.counter("executor.tasks").unwrap_or(0) > 0);

    // Stream: one epoch record per ingested epoch, watermark past block 0.
    assert_eq!(snapshot.counter("stream.epochs"), Some(epochs as u64));
    let epoch_ns = snapshot.histogram("stream.epoch_ns").expect("epoch histogram");
    assert_eq!(epoch_ns.count, epochs as u64);
    assert!(snapshot.gauge("stream.watermark").unwrap_or(0) > 0);

    // Serve: queries timed per variant, cache hit recorded, snapshots built.
    // (The Metrics query itself records its count only *after* the snapshot
    // it returns was taken, so it isn't in its own answer.)
    assert!(snapshot.counter("serve.query.count").unwrap_or(0) >= 3);
    assert!(snapshot.counter("serve.cache.hits").unwrap_or(0) >= 1);
    assert!(snapshot.histogram("serve.query.stats_ns").map_or(0, |h| h.count) >= 2);
    let full_builds = snapshot.histogram("serve.snapshot.build_ns").map_or(0, |h| h.count);
    let delta_builds = snapshot.histogram("serve.snapshot.delta_build_ns").map_or(0, |h| h.count);
    assert!(
        full_builds + delta_builds >= epochs as u64,
        "every published epoch builds a snapshot (full or delta-encoded)"
    );
    assert!(delta_builds >= 1, "steady-state epochs delta-encode against the previous snapshot");
    assert_eq!(snapshot.counter("serve.publisher.publishes"), Some(epochs as u64));

    // Publish provenance: the delta/full split, chunk-reuse ratio (basis
    // points, set on delta builds), and the retention ring's occupancy.
    assert_eq!(snapshot.gauge("serve.publish.delta"), Some(1), "steady state publishes deltas");
    assert!(snapshot.gauge("serve.publish.reuse_ratio").unwrap_or(-1) >= 0);
    let delta_publishes = snapshot.histogram("serve.publish.delta_ns").map_or(0, |h| h.count);
    let full_publishes = snapshot.histogram("serve.publish.full_ns").map_or(0, |h| h.count);
    assert!(delta_publishes >= 1, "delta publish latencies land in their own histogram");
    assert_eq!(delta_publishes + full_publishes, epochs as u64);
    assert!(snapshot.gauge("serve.publisher.ring_occupancy").unwrap_or(0) >= 1);
    assert!(snapshot.gauge("serve.publisher.checkpoints").unwrap_or(-1) >= 0);

    // Stream watermark lag: once the stream has drained to the chain tip,
    // the last epoch's lag gauge reads zero.
    assert_eq!(snapshot.gauge("stream.watermark_lag"), Some(0));

    // The flight recorder retained the streamed run's span tree: epoch roots
    // with ingest phases and publishes parented somewhere beneath them.
    assert!(obs::flight::recorded_total() > 0);
    let flight = obs::flight::dump();
    let epoch_roots: Vec<_> =
        flight.iter().filter(|record| record.name == "stream.epoch").collect();
    assert!(!epoch_roots.is_empty(), "epoch root spans reach the flight ring");
    for root in &epoch_roots {
        assert_eq!(root.parent, None, "stream.epoch is a trace root");
        assert!(root.attrs.iter().any(|(key, _)| *key == "epoch"));
    }
    assert!(flight.iter().any(|record| record.name == "serve.publish"));

    // Query::Health: answered live (never cached) from the per-epoch SLO
    // evaluations; the standard catalog was installed lazily on the first
    // streamed epoch.
    let served = service.query(&Query::Health);
    assert!(!served.cached, "Query::Health must never be served from the cache");
    let report = match served.response {
        Response::Health(report) => report,
        other => panic!("Query::Health answered with {other:?}"),
    };
    assert_eq!(report.evaluations, epochs as u64, "one SLO evaluation per epoch");
    assert_eq!(report.verdicts.len(), 4, "the standard SLO catalog has four rules");
    for slo in ["epoch_latency", "watermark_lag", "cache_hit_rate", "chunk_reuse"] {
        assert!(report.verdicts.iter().any(|verdict| verdict.slo == slo), "missing SLO {slo}");
    }
    assert!(!service.query(&Query::Health).cached);

    // The event ring saw the per-epoch events, newest last.
    let events = obs::recent_events(usize::MAX);
    let stream_events: Vec<_> =
        events.iter().filter(|event| event.name == "stream.epoch").collect();
    assert_eq!(stream_events.len(), epochs.min(128), "one ring event per epoch");

    // Determinism: metrics arrive sorted by name, and a second snapshot is a
    // newer version with the same ordering contract.
    let names: Vec<&str> = snapshot.metrics.iter().map(|metric| metric.name.as_str()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "snapshot metrics must be name-sorted");

    let second = metrics_snapshot(&service);
    assert!(second.version > snapshot.version, "snapshot versions must increase");
    let second_names: Vec<&str> =
        second.metrics.iter().map(|metric| metric.name.as_str()).collect();
    let mut second_sorted = second_names.clone();
    second_sorted.sort_unstable();
    assert_eq!(second_names, second_sorted);

    // Both renderers accept the full real-world snapshot.
    let text = snapshot.render_text();
    let json = snapshot.render_json();
    assert!(text.contains("stream.epochs"));
    assert!(json.contains("\"serve.query.count\""));
}
