//! Retention and time-travel gates for the delta-encoded snapshot stack.
//!
//! Two invariants anchor this suite:
//!
//! 1. **AsOf parity** — every snapshot the publisher retains (ring entry or
//!    checkpoint) is bit-identical to a full, from-scratch `Snapshot`
//!    rebuild of that epoch's analysis state. Since the stream publishes
//!    delta-encoded snapshots, this is exactly the statement that delta
//!    encoding is invisible: shared chunks change the cost of building, not
//!    one bit of the result. CI runs `as_of_parity_matches_full_rebuild` as
//!    a named gate.
//! 2. **Typed retention misses** — an epoch outside the retention policy
//!    answers with `Response::NotRetained` naming the requested epoch, the
//!    latest one, and the currently answerable set; never a panic, never a
//!    wrong epoch's data.

use std::collections::BTreeMap;

use nft_wash_study::ethsim::Timestamp;
use nft_wash_study::tokens::NftId;
use nft_wash_study::washtrade::pipeline::AnalysisInput;
use nft_wash_study::washtrade_serve::{
    Query, QueryService, Response, RetentionPolicy, Snapshot, SnapshotPublisher,
};
use nft_wash_study::washtrade_stream::{StreamAnalyzer, StreamOptions};
use nft_wash_study::workload::{WorkloadConfig, World};

fn config(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        seed,
        start: Timestamp::from_secs(1_609_459_200),
        duration_days: 80,
        collections: 4,
        non_compliant_collections: 1,
        erc1155_collections: 1,
        dex_position_nfts: 2,
        legit_traders: 12,
        legit_sales: 30,
        zero_volume_shuffles: 2,
        wash_activities: 10,
        serial_trader_fraction: 0.3,
        gas_price_gwei: 40,
    }
}

/// Stream `world` to the tip under `policy`, capturing a full (non-delta)
/// snapshot rebuild at every epoch — the reference the retained history
/// must match bit for bit.
fn stream_with_history(
    world: &World,
    policy: RetentionPolicy,
    budget: u64,
) -> (SnapshotPublisher, BTreeMap<u64, Snapshot>) {
    let input = AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    };
    let publisher = SnapshotPublisher::with_retention(policy);
    let mut analyzer =
        StreamAnalyzer::with_publisher(input, StreamOptions::single_threaded(), publisher.clone());
    let mut fulls = BTreeMap::new();
    while analyzer.ingest_epoch(budget).is_some() {
        fulls.insert(publisher.epoch(), analyzer.rebuild_full_snapshot());
    }
    (publisher, fulls)
}

/// The named CI gate: on a multi-epoch stream with the default retention
/// policy, every retained historical snapshot — all of them delta-encoded
/// past epoch 1 — equals the full rebuild of that epoch's state, and the
/// `AsOf` / diff / trend query surface answers exactly what those full
/// snapshots answer.
#[test]
fn as_of_parity_matches_full_rebuild() {
    let world = World::generate(config(11)).expect("world generation");
    let (publisher, fulls) = stream_with_history(&world, RetentionPolicy::default(), 15);
    let max_epoch = *fulls.keys().next_back().expect("at least one epoch");
    assert!(max_epoch >= 4, "the world must slice into several epochs");

    // The published path really exercised delta encoding: the final
    // snapshot was delta-built and reused previously resolved records.
    let last = publisher.load();
    let build = last.build_stats();
    assert!(build.delta, "steady-state publishes are delta-encoded");
    assert!(build.records_reused > 0, "unchanged NFTs reuse their resolved segments");
    assert_eq!(build.records_total, last.stats().confirmed_activities);

    let service = QueryService::new(publisher.clone());
    let retained = publisher.retained_epochs();
    assert!(retained.len() >= 2, "default policy retains recent history");
    let mut compared = 0;
    for epoch in retained {
        let Some(historical) = publisher.at_epoch(epoch) else {
            panic!("retained_epochs listed {epoch} but at_epoch missed");
        };
        let full = fulls.get(&epoch).expect("every retained epoch was published");
        assert_eq!(&historical, full, "epoch {epoch}: delta-built history != full rebuild");

        // The query surface serves the same bits.
        for inner in [
            Query::Stats,
            Query::TopMovers(usize::MAX),
            Query::SuspectsSince(nft_wash_study::ethsim::BlockNumber(0)),
            Query::TopCollections(usize::MAX),
            Query::Marketplaces,
        ] {
            let served = service.query(&Query::AsOf(epoch, Box::new(inner.clone())));
            assert_eq!(served.epoch, epoch, "AsOf answers from the addressed epoch");
            assert_eq!(served.response, full.answer(&inner), "epoch {epoch}, {inner:?}");
        }
        compared += 1;
    }
    assert!(compared >= 2, "parity must cover multiple historical epochs");

    // The trend series is the stats line of every retained epoch, ascending.
    let served = service.query(&Query::WashVolumeTrend);
    let Response::Trend(points) = served.response else {
        panic!("trend query answered with {:?}", served.response);
    };
    assert_eq!(
        points.iter().map(|point| point.epoch).collect::<Vec<_>>(),
        publisher.retained_epochs(),
        "one trend point per retained epoch"
    );
    for point in &points {
        let full = fulls.get(&point.epoch).expect("trend point epoch was published");
        let stats = full.stats();
        assert_eq!(
            (point.watermark, point.confirmed_activities, point.suspect_nfts),
            (stats.watermark, stats.confirmed_activities, stats.suspect_nfts)
        );
        assert_eq!(point.wash_volume_usd, stats.wash_volume_usd, "bit-exact USD totals");
    }

    // Suspect diff across the retained span equals a set diff of the two
    // full snapshots' suspect tables.
    let (first, last_epoch) = {
        let retained = publisher.retained_epochs();
        (retained[0], *retained.last().expect("non-empty"))
    };
    let served = service.query(&Query::SuspectDiff { from: first, to: last_epoch });
    let Response::SuspectDiff { added, removed } = served.response else {
        panic!("suspect diff answered with {:?}", served.response);
    };
    let suspects = |epoch: u64| -> Vec<NftId> {
        fulls[&epoch].suspects().iter().map(|summary| summary.nft).collect()
    };
    let (from_set, to_set) = (suspects(first), suspects(last_epoch));
    assert_eq!(
        added,
        to_set.iter().filter(|nft| !from_set.contains(nft)).copied().collect::<Vec<_>>()
    );
    assert_eq!(
        removed,
        from_set.iter().filter(|nft| !to_set.contains(nft)).copied().collect::<Vec<_>>()
    );
}

// Retention-policy property: over random worlds, epoch budgets and policies,
// (a) every epoch the policy says is retained — ring tail or checkpoint — is
// answerable and bit-identical to the full rebuild captured when that epoch
// was published; (b) every evicted epoch answers `AsOf` with a typed
// `NotRetained` miss naming it.
proptest::proptest! {
    #[test]
    fn retention_policy_keeps_exactly_what_it_promises(
        seed in 0u64..500,
        recent in 1usize..5,
        checkpoint_every in 0u64..5,
        budget in 5u64..60,
    ) {
        let world = World::generate(config(seed)).expect("world generation");
        let policy = RetentionPolicy { recent, checkpoint_every };
        let (publisher, fulls) = stream_with_history(&world, policy, budget);
        let max_epoch = *fulls.keys().next_back().expect("at least one epoch");
        let service = QueryService::new(publisher.clone());

        for (&epoch, full) in &fulls {
            // Ring: the last `recent` published epochs. Checkpoints: every
            // `checkpoint_every`-th epoch, preserved on eviction.
            let in_ring = epoch + recent as u64 > max_epoch;
            let checkpointed = checkpoint_every > 0 && epoch % checkpoint_every == 0;
            match publisher.at_epoch(epoch) {
                Some(historical) => {
                    proptest::prop_assert!(
                        in_ring || checkpointed,
                        "epoch {} retained against policy {:?} (max {})",
                        epoch, policy, max_epoch
                    );
                    proptest::prop_assert!(
                        historical == *full,
                        "epoch {}: retained snapshot differs from the full rebuild (seed {})",
                        epoch, seed
                    );
                }
                None => {
                    proptest::prop_assert!(
                        !(in_ring || checkpointed),
                        "epoch {} evicted against policy {:?} (max {})",
                        epoch, policy, max_epoch
                    );
                    let served = service.query(&Query::AsOf(epoch, Box::new(Query::Stats)));
                    match served.response {
                        Response::NotRetained { requested, latest, retained } => {
                            proptest::prop_assert_eq!(requested, epoch);
                            proptest::prop_assert_eq!(latest, max_epoch);
                            proptest::prop_assert!(!retained.contains(&epoch));
                        }
                        other => {
                            panic!("evicted epoch {epoch} answered {other:?} (seed {seed})")
                        }
                    }
                }
            }
        }
    }
}
