//! Profitability integration tests (§VI): the reward and resale analyses are
//! cross-checked against the workload's ground truth.

use std::collections::HashMap;

use tokens::NftId;
use washtrade::pipeline::{analyze, AnalysisInput, AnalysisReport};
use workload::{Venue, WashGoal, WorkloadConfig, World};

fn run(seed: u64) -> (World, AnalysisReport) {
    let world = World::generate(WorkloadConfig::small(seed)).expect("world builds");
    let report = analyze(AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    });
    (world, report)
}

#[test]
fn reward_report_covers_looksrare_and_rarible_only() {
    let (_, report) = run(100);
    let names: Vec<&str> = report.rewards.markets.iter().map(|m| m.marketplace.as_str()).collect();
    assert_eq!(names.len(), 2);
    assert!(names.contains(&"LooksRare"));
    assert!(names.contains(&"Rarible"));
    // Outcomes only ever reference those two marketplaces.
    for outcome in &report.rewards.outcomes {
        assert!(outcome.marketplace == "LooksRare" || outcome.marketplace == "Rarible");
        assert!(outcome.claimed);
        assert!(outcome.volume_eth > 0.0);
    }
}

#[test]
fn claimed_ground_truth_activities_show_up_as_reward_outcomes() {
    let (world, report) = run(101);
    let outcomes: HashMap<NftId, &washtrade::profit::RewardOutcome> =
        report.rewards.outcomes.iter().map(|o| (o.nft, o)).collect();
    let mut claimed_truth = 0usize;
    let mut found = 0usize;
    for truth in &world.truth {
        if !truth.claimed_rewards() {
            continue;
        }
        claimed_truth += 1;
        if let Some(outcome) = outcomes.get(&truth.nft) {
            found += 1;
            // The tokens were actually claimed, so the analysis must see a
            // strictly positive reward value.
            assert!(outcome.rewards_usd > 0.0, "claimed activity with zero reward value");
        }
    }
    if claimed_truth > 0 {
        assert!(
            found * 10 >= claimed_truth * 7,
            "only {found}/{claimed_truth} claimed activities produced reward outcomes"
        );
    }
}

#[test]
fn reward_exploitation_is_mostly_profitable() {
    // The paper's headline: exploiting reward systems succeeds in ~80% of the
    // claimed activities, with gains dwarfing the losses.
    let (world, report) = run(102);
    let claimed_planted =
        world.truth.iter().filter(|t| t.venue.has_reward_system() && t.claimed_rewards()).count();
    if claimed_planted >= 3 {
        assert!(
            report.rewards.success_rate() >= 0.5,
            "reward success rate {:.2} unexpectedly low",
            report.rewards.success_rate()
        );
        let total_gain: f64 =
            report.rewards.markets.iter().map(|m| m.successful.total_balance_usd).sum();
        let total_loss: f64 =
            report.rewards.markets.iter().map(|m| m.failed.total_balance_usd.abs()).sum();
        assert!(
            total_gain > total_loss,
            "gains (${total_gain:.0}) should exceed losses (${total_loss:.0})"
        );
    }
}

#[test]
fn resale_report_matches_planted_resales() {
    let (world, report) = run(103);
    let outcomes: HashMap<NftId, &washtrade::profit::ResaleOutcome> =
        report.resales.outcomes.iter().map(|o| (o.nft, o)).collect();
    let mut planted_resold = 0usize;
    let mut seen_resold = 0usize;
    let mut planted_unsold = 0usize;
    let mut seen_unsold = 0usize;
    for truth in &world.truth {
        match truth.goal {
            WashGoal::Resale { resale_price_eth: Some(_) } => {
                planted_resold += 1;
                if let Some(outcome) = outcomes.get(&truth.nft) {
                    if outcome.resold {
                        seen_resold += 1;
                        // The resale price recovered from the chain matches
                        // the planted price.
                        let planted_price = truth.resale_price.map(|p| p.to_eth()).unwrap_or(0.0);
                        let recovered = outcome.resale_price_eth.unwrap_or(0.0);
                        assert!(
                            (planted_price - recovered).abs() < 1e-6,
                            "resale price mismatch: planted {planted_price}, recovered {recovered}"
                        );
                    }
                }
            }
            WashGoal::Resale { resale_price_eth: None } => {
                planted_unsold += 1;
                if let Some(outcome) = outcomes.get(&truth.nft) {
                    if !outcome.resold {
                        seen_unsold += 1;
                    }
                }
            }
            _ => {}
        }
    }
    if planted_resold > 0 {
        assert!(
            seen_resold * 10 >= planted_resold * 7,
            "only {seen_resold}/{planted_resold} planted resales recovered"
        );
    }
    if planted_unsold > 0 {
        assert!(
            seen_unsold * 10 >= planted_unsold * 7,
            "only {seen_unsold}/{planted_unsold} planted unsold activities recovered"
        );
    }
}

#[test]
fn resale_fees_only_reduce_the_balance() {
    let (_, report) = run(104);
    for outcome in report.resales.outcomes.iter().filter(|o| o.resold) {
        let gross = outcome.gross_gain_eth.unwrap();
        let net = outcome.net_gain_eth.unwrap();
        assert!(
            net <= gross + 1e-12,
            "net gain {net} exceeds gross gain {gross} for {}",
            outcome.nft
        );
    }
}

#[test]
fn off_market_and_reward_venues_are_kept_out_of_the_resale_set() {
    let (world, report) = run(105);
    let reward_nfts: Vec<NftId> = world
        .truth
        .iter()
        .filter(|t| matches!(t.venue, Venue::LooksRare | Venue::Rarible))
        .map(|t| t.nft)
        .collect();
    for outcome in &report.resales.outcomes {
        assert!(
            !reward_nfts.contains(&outcome.nft),
            "reward-venue NFT {} leaked into the resale analysis",
            outcome.nft
        );
    }
}
