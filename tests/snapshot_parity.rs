//! Batch/stream parity of the serving layer: a [`Snapshot`] built from a
//! finished batch `AnalysisReport` equals the snapshot the streaming
//! analyzer publishes over the same chain — exactly (when the stream covers
//! the chain in one epoch, so confirmation blocks coincide) and on every
//! confirmation-block-independent index (at any epoch slicing).

use nft_wash_study::washtrade::pipeline::{analyze_with, AnalysisInput, AnalysisOptions};
use nft_wash_study::washtrade_serve::{Snapshot, SnapshotMeta};
use nft_wash_study::washtrade_stream::{StreamAnalyzer, StreamOptions};
use nft_wash_study::workload::{WorkloadConfig, World};

fn input_of(world: &World) -> AnalysisInput<'_> {
    AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    }
}

#[test]
fn batch_snapshot_equals_single_epoch_stream_snapshot() {
    let world = World::generate(WorkloadConfig::small(2024)).expect("world");
    let input = input_of(&world);

    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    let epochs = live.run_to_tip(u64::MAX);
    assert_eq!(epochs, 1, "one budgetless epoch covers the whole chain");
    let streamed = live.snapshot();
    assert!(streamed.stats().confirmed_activities > 0, "world must contain detections");

    let report = analyze_with(input, AnalysisOptions::default());
    let batched = Snapshot::from_report(
        &report,
        &world.directory,
        &world.oracle,
        SnapshotMeta { epoch: 1, watermark: streamed.watermark() },
    );

    // Full content equality: every index, rollup, counter and float.
    assert_eq!(batched, streamed);
}

#[test]
fn batch_snapshot_matches_multi_epoch_stream_on_every_block_free_index() {
    let world = World::generate(WorkloadConfig::small(7)).expect("world");
    let input = input_of(&world);

    let plan = world.epoch_plan(5);
    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    for budget in plan.budgets() {
        live.ingest_epoch(budget).expect("plan budgets cover the chain");
    }
    assert!(live.is_caught_up());
    let streamed = live.snapshot();
    assert!(streamed.epoch() >= 2, "the plan must slice the chain into several epochs");

    let report = analyze_with(input, AnalysisOptions::default());
    let batched = Snapshot::from_report(
        &report,
        &world.directory,
        &world.oracle,
        SnapshotMeta { epoch: streamed.epoch(), watermark: streamed.watermark() },
    );

    // Confirmation blocks depend on the epoch slicing, so the suspect log
    // differs; everything derived from the analysis state alone must agree.
    assert!(batched.activities().eq(streamed.activities()), "resolved activity records agree");
    assert_eq!(batched.accounts(), streamed.accounts());
    assert_eq!(batched.collections(), streamed.collections());
    assert_eq!(batched.marketplaces(), streamed.marketplaces());
    assert_eq!(batched.top_movers(usize::MAX), streamed.top_movers(usize::MAX));
    assert_eq!(
        batched.suspects_since(ethsim::BlockNumber(0)),
        streamed.suspects_since(ethsim::BlockNumber(0)),
        "the all-time suspect set is slicing-independent"
    );
    for account in streamed.accounts() {
        assert_eq!(batched.dossier(*account), streamed.dossier(*account));
    }
    let (b, s) = (batched.stats(), streamed.stats());
    assert_eq!(
        (b.confirmed_activities, b.suspect_nfts, b.involved_accounts, b.wash_volume),
        (s.confirmed_activities, s.suspect_nfts, s.involved_accounts, s.wash_volume)
    );
    assert_eq!(b.wash_volume_usd, s.wash_volume_usd, "float totals are bit-identical");
    assert_eq!(b.wash_volume_eth, s.wash_volume_eth);
    assert_eq!((b.dataset_nfts, b.dataset_transfers), (s.dataset_nfts, s.dataset_transfers));

    // Per-NFT summaries agree on everything but the confirmation block.
    for streamed_summary in streamed.suspects() {
        let batched_summary = batched.suspect(streamed_summary.nft).expect("same suspect set");
        assert_eq!(batched_summary.activities, streamed_summary.activities);
        assert_eq!(batched_summary.volume, streamed_summary.volume);
        assert!(streamed_summary.confirmed_at < streamed.watermark());
    }
}

#[test]
fn analyzer_generations_continue_the_publishers_epoch_numbering() {
    // Re-ingesting through a shared publisher must never reuse an epoch
    // number: a `(epoch, query)` cache key from generation one may not
    // collide with generation two's snapshots.
    let world = World::generate(WorkloadConfig::small(5)).expect("world");
    let input = input_of(&world);

    let mut first = StreamAnalyzer::new(input, StreamOptions::default());
    first.run_to_tip(150);
    let publisher = first.publisher();
    let first_epoch = publisher.epoch();
    assert!(first_epoch >= 2, "expected a multi-epoch first generation");

    let mut second = StreamAnalyzer::with_publisher(input, StreamOptions::default(), publisher);
    assert_eq!(
        second.snapshot().epoch(),
        first_epoch,
        "the inherited snapshot keeps serving until the new generation publishes"
    );
    second.ingest_epoch(150).expect("chain has blocks");
    assert_eq!(
        second.snapshot().epoch(),
        first_epoch + 1,
        "generation two's first epoch numbers above generation one's last"
    );
    second.run_to_tip(150);
    assert!(second.snapshot().epoch() > first_epoch + 1);
}

#[test]
fn marketplace_rollups_mirror_the_characterization_table() {
    // The served marketplace rollups are the Table II rows: same grouping,
    // same floats, same order as `Characterization::per_marketplace`.
    let world = World::generate(WorkloadConfig::small(11)).expect("world");
    let input = input_of(&world);
    let report = analyze_with(input, AnalysisOptions::default());
    let snapshot = Snapshot::from_report(
        &report,
        &world.directory,
        &world.oracle,
        SnapshotMeta { epoch: 1, watermark: ethsim::BlockNumber(0) },
    );
    assert_eq!(snapshot.marketplaces(), &report.characterization.per_marketplace[..]);
    assert_eq!(snapshot.stats().wash_volume_usd, report.characterization.total_volume_usd);
    assert_eq!(snapshot.stats().wash_volume_eth, report.characterization.total_volume_eth);
}
