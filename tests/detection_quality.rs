//! Detection-quality integration tests: the pipeline's output is compared
//! against the workload generator's ground truth, per evidence channel.

use std::collections::{HashMap, HashSet};

use tokens::NftId;
use washtrade::pipeline::{analyze, AnalysisInput, AnalysisReport};
use workload::{ExitEvidence, FundingEvidence, ScenarioPattern, WorkloadConfig, World};

fn run(seed: u64) -> (World, AnalysisReport) {
    let world = World::generate(WorkloadConfig::small(seed)).expect("world builds");
    let report = analyze(AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    });
    (world, report)
}

fn detected_by_nft(report: &AnalysisReport) -> HashMap<NftId, &washtrade::ConfirmedActivity> {
    report.detection.confirmed.iter().map(|activity| (activity.nft(), activity)).collect()
}

#[test]
fn recall_is_high_across_seeds() {
    for seed in [10, 20, 30] {
        let (world, report) = run(seed);
        let planted: HashSet<NftId> = world.truth.iter().map(|t| t.nft).collect();
        let detected: HashSet<NftId> = report.detection.confirmed.iter().map(|a| a.nft()).collect();
        let recalled = planted.intersection(&detected).count();
        let recall = recalled as f64 / planted.len() as f64;
        assert!(recall >= 0.85, "seed {seed}: recall {recall:.2} ({recalled}/{})", planted.len());
    }
}

#[test]
fn planted_funder_evidence_is_recovered() {
    let (world, report) = run(40);
    let detected = detected_by_nft(&report);
    let mut with_funder = 0usize;
    let mut recovered = 0usize;
    for truth in &world.truth {
        let planted_funder =
            matches!(truth.funder, FundingEvidence::Internal | FundingEvidence::External);
        if !planted_funder {
            continue;
        }
        with_funder += 1;
        if let Some(activity) = detected.get(&truth.nft) {
            if activity.methods.common_funder.is_some() {
                recovered += 1;
            }
        }
    }
    assert!(with_funder > 0, "the workload should plant funder evidence");
    assert!(
        recovered * 10 >= with_funder * 8,
        "only {recovered}/{with_funder} planted funders recovered"
    );
}

#[test]
fn planted_exit_evidence_is_recovered() {
    let (world, report) = run(41);
    let detected = detected_by_nft(&report);
    let mut with_exit = 0usize;
    let mut recovered = 0usize;
    for truth in &world.truth {
        if truth.exit == ExitEvidence::None {
            continue;
        }
        with_exit += 1;
        if let Some(activity) = detected.get(&truth.nft) {
            if activity.methods.common_exit.is_some() {
                recovered += 1;
            }
        }
    }
    assert!(with_exit > 0);
    assert!(
        recovered * 10 >= with_exit * 7,
        "only {recovered}/{with_exit} planted exits recovered"
    );
}

#[test]
fn planted_zero_risk_activities_are_flagged_zero_risk() {
    let (world, report) = run(42);
    let detected = detected_by_nft(&report);
    let mut planted = 0usize;
    let mut flagged = 0usize;
    for truth in &world.truth {
        if !truth.zero_risk {
            continue;
        }
        planted += 1;
        if let Some(activity) = detected.get(&truth.nft) {
            if activity.methods.zero_risk {
                flagged += 1;
            }
        }
    }
    assert!(planted > 0);
    assert!(
        flagged * 10 >= planted * 8,
        "only {flagged}/{planted} planted zero-risk activities flagged"
    );
}

#[test]
fn exchange_funded_activities_do_not_get_funder_credit_from_the_exchange() {
    let (world, report) = run(43);
    let detected = detected_by_nft(&report);
    for truth in &world.truth {
        if truth.funder != FundingEvidence::Exchange {
            continue;
        }
        if let Some(activity) = detected.get(&truth.nft) {
            if let Some(funder) = activity.methods.common_funder {
                // If a funder was still found it must be internal money
                // movement, never the exchange account itself.
                assert!(
                    !world.labels.is_exchange_or_defi(funder.account),
                    "exchange account credited as common funder"
                );
            }
        }
    }
}

#[test]
fn self_trades_are_confirmed_de_facto() {
    let (world, report) = run(44);
    let detected = detected_by_nft(&report);
    let mut planted = 0usize;
    let mut confirmed = 0usize;
    for truth in &world.truth {
        if truth.pattern != ScenarioPattern::Catalogued(graphlib::PatternId(0)) {
            continue;
        }
        planted += 1;
        if let Some(activity) = detected.get(&truth.nft) {
            if activity.methods.self_trade {
                confirmed += 1;
            }
        }
    }
    if planted > 0 {
        assert!(confirmed * 10 >= planted * 8, "only {confirmed}/{planted} self-trades confirmed");
    }
}

#[test]
fn detected_patterns_match_planted_shapes() {
    let (world, report) = run(45);
    let detected = detected_by_nft(&report);
    let catalogue = graphlib::PatternCatalogue::paper();
    let mut compared = 0usize;
    let mut matching = 0usize;
    for truth in &world.truth {
        let ScenarioPattern::Catalogued(expected) = truth.pattern else {
            continue;
        };
        let Some(activity) = detected.get(&truth.nft) else {
            continue;
        };
        // Only compare when the detected component is exactly the planted
        // account set (otherwise extra parties legitimately change the shape).
        let mut planted_accounts = truth.accounts.clone();
        planted_accounts.sort();
        planted_accounts.dedup();
        if planted_accounts != activity.candidate.accounts {
            continue;
        }
        compared += 1;
        let shape = activity.candidate.shape();
        if catalogue.classify(activity.candidate.accounts.len(), &shape) == Some(expected) {
            matching += 1;
        }
    }
    assert!(compared > 0, "no comparable activities");
    assert!(
        matching * 10 >= compared * 9,
        "only {matching}/{compared} detected shapes match the planted pattern"
    );
}

#[test]
fn serial_traders_emerge_in_characterization() {
    let (_, report) = run(46);
    let serial = &report.characterization.serial_traders;
    assert!(serial.total_accounts > 0);
    assert!(
        serial.serial_accounts > 0,
        "the workload reuses accounts, so serial traders must appear"
    );
    assert!(serial.activities_with_serials <= serial.total_activities);
    assert!(serial.mean_activities_per_serial >= 2.0);
}
