//! Umbrella package for the workspace: it owns the repository-level
//! integration tests (`tests/`) and runnable examples (`examples/`), and
//! re-exports the crates they exercise. The actual library code lives in the
//! workspace members under `crates/`.

#![forbid(unsafe_code)]

pub use ethsim;
pub use graphlib;
pub use labels;
pub use marketplace;
pub use obs;
pub use oracle;
pub use tokens;
pub use washtrade;
pub use washtrade_serve;
pub use washtrade_stream;
pub use workload;
