//! The headline invariant of the streaming subsystem: after ingesting all
//! epochs, the [`LiveReport`] is bit-identical to a batch `analyze()` over
//! the same chain — same wash-trade sets, Venn counts and characterization —
//! at any epoch size and any thread count. Plus the dirty-set guarantee:
//! mid-stream epochs re-detect strictly fewer NFTs than the total.

use std::collections::{BTreeMap, HashMap};

use ethsim::{BlockNumber, Timestamp, Wei};
use tokens::NftId;
use washtrade::pipeline::{analyze_with, AnalysisInput, AnalysisOptions, AnalysisReport};
use washtrade_stream::{LiveReport, NftStatus, StreamAnalyzer, StreamOptions};
use workload::{WorkloadConfig, World};

fn input_of(world: &World) -> AnalysisInput<'_> {
    AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    }
}

fn assert_live_equals_batch(live: &LiveReport, batch: &AnalysisReport, context: &str) {
    assert_eq!(live.detection, batch.detection, "detection diverged ({context})");
    assert_eq!(live.refinement, batch.refinement, "refinement diverged ({context})");
    assert_eq!(
        live.characterization, batch.characterization,
        "characterization diverged ({context})"
    );
    assert_eq!(live.dataset_nfts, batch.dataset_nfts, "NFT count diverged ({context})");
    assert_eq!(
        live.dataset_transfers, batch.dataset_transfers,
        "transfer count diverged ({context})"
    );
    assert_eq!(
        live.raw_transfer_events, batch.raw_transfer_events,
        "raw event count diverged ({context})"
    );
    assert_eq!(
        (live.compliant_contracts, live.non_compliant_contracts),
        (batch.compliant_contracts, batch.non_compliant_contracts),
        "compliance counts diverged ({context})"
    );
    assert_eq!(live.rewards, batch.rewards, "reward report diverged ({context})");
    assert_eq!(live.resales, batch.resales, "resale report diverged ({context})");
}

/// Reference recomputation of `suspects_since`: replay the per-epoch deltas
/// to recover each NFT's *latest* confirmation epoch (exactly the
/// bookkeeping the analyzer keeps), then filter by the currently confirmed
/// set — the linear scan the snapshot index replaced.
fn reference_suspects_since(report: &LiveReport, block: BlockNumber) -> Vec<NftId> {
    let mut first_confirmed: HashMap<NftId, BlockNumber> = HashMap::new();
    for delta in &report.epochs {
        for nft in &delta.new_suspects {
            first_confirmed.insert(*nft, delta.last_block);
        }
    }
    let confirmed: std::collections::BTreeSet<NftId> =
        report.detection.confirmed.iter().map(|a| a.nft()).collect();
    let mut suspects: Vec<NftId> = first_confirmed
        .into_iter()
        .filter(|(nft, confirmed_at)| *confirmed_at >= block && confirmed.contains(nft))
        .map(|(nft, _)| nft)
        .collect();
    suspects.sort_unstable();
    suspects
}

/// Reference recomputation of `top_movers`: aggregate confirmed wash volume
/// per NFT straight from the live report — the per-query scan the snapshot
/// ranking replaced.
fn reference_top_movers(report: &LiveReport, n: usize) -> Vec<(NftId, Wei)> {
    let mut volume_by_nft: BTreeMap<NftId, Wei> = BTreeMap::new();
    for activity in &report.detection.confirmed {
        let entry = volume_by_nft.entry(activity.nft()).or_insert(Wei::ZERO);
        *entry += activity.candidate.volume;
    }
    let mut ranked: Vec<(NftId, Wei)> = volume_by_nft.into_iter().collect();
    ranked.sort_by_key(|(nft, volume)| (std::cmp::Reverse(*volume), *nft));
    ranked.truncate(n);
    ranked
}

/// A world small enough that the proptest's 96 cases stay fast, while still
/// containing every ingredient (non-compliant contracts, shuffles, serial
/// traders) the pipeline filters on.
fn tiny_config(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        seed,
        start: Timestamp::from_secs(1_609_459_200),
        duration_days: 80,
        collections: 4,
        non_compliant_collections: 1,
        erc1155_collections: 1,
        dex_position_nfts: 2,
        legit_traders: 12,
        legit_sales: 30,
        zero_volume_shuffles: 2,
        wash_activities: 10,
        serial_trader_fraction: 0.3,
        gas_price_gwei: 40,
    }
}

#[test]
fn live_report_matches_batch_at_any_thread_count() {
    let world = World::generate(WorkloadConfig::small(2024)).expect("world");
    let input = input_of(&world);
    let batch = analyze_with(input, AnalysisOptions::single_threaded());
    assert!(!batch.detection.confirmed.is_empty(), "world must contain detectable activity");

    let plan = world.epoch_plan(4);
    assert!(plan.len() >= 3, "the straddling plan must produce at least 3 epochs");
    for threads in [1, 0] {
        let mut live = StreamAnalyzer::new(input, StreamOptions { threads });
        let mut deltas = Vec::new();
        for budget in plan.budgets() {
            deltas.push(live.ingest_epoch(budget).expect("plan budgets cover the chain"));
        }
        assert!(live.is_caught_up());
        assert!(live.ingest_epoch(1).is_none());
        assert_live_equals_batch(live.report(), &batch, &format!("threads = {threads}"));

        // Dirty-set guarantee: once the NFT population is established, an
        // epoch re-detects strictly fewer NFTs than the total.
        let mid_stream = deltas.iter().skip(1).find(|d| d.total_nfts > 0).expect("mid epochs");
        assert!(
            mid_stream.dirty_nfts < mid_stream.total_nfts,
            "epoch {} re-detected every NFT ({} of {}), dirty-set scheduling is broken",
            mid_stream.index,
            mid_stream.dirty_nfts,
            mid_stream.total_nfts,
        );
        assert!(deltas.iter().any(|d| d.dirty_nfts > 0), "some epoch must touch NFTs");
    }
}

#[test]
fn query_api_is_consistent_with_the_live_report() {
    let world = World::generate(WorkloadConfig::small(7)).expect("world");
    let input = input_of(&world);
    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    let epochs = live.run_to_tip(400);
    assert!(epochs >= 2, "expected a multi-epoch run, got {epochs}");

    let report = live.report();
    assert!(!report.detection.confirmed.is_empty());
    for activity in &report.detection.confirmed {
        match live.status(activity.nft()) {
            NftStatus::Confirmed { activities, volume } => {
                assert!(activities >= 1);
                assert!(!volume.is_zero() || activity.candidate.volume.is_zero());
            }
            other => panic!("confirmed NFT {:?} reported as {other:?}", activity.nft()),
        }
    }
    // Every confirmed NFT was first confirmed somewhere within the chain.
    let all = live.suspects_since(ethsim::BlockNumber(0));
    let confirmed: std::collections::BTreeSet<_> =
        report.detection.confirmed.iter().map(|a| a.nft()).collect();
    assert_eq!(all, confirmed.iter().copied().collect::<Vec<_>>());
    // Top movers are ranked by volume, descending, and drawn from the
    // confirmed set.
    let movers = live.top_movers(5);
    assert!(movers.windows(2).all(|w| w[0].1 >= w[1].1));
    for (nft, _) in &movers {
        assert!(confirmed.contains(nft));
    }
    // An NFT that never traded is unseen.
    let ghost = tokens::NftId::new(ethsim::Address::derived("no-such-collection"), 0);
    assert_eq!(live.status(ghost), NftStatus::Unseen);
}

/// The partial-cache stress test: one world and epoch slicing (found by a
/// deterministic scan, pinned here) that exhibits every adversarial cache
/// transition at once —
///
/// * **suspect decay**: a previously confirmed NFT leaves the confirmed set
///   when its components merge (`lost_suspects > 0`), so stale partials must
///   be *removed* from every maintained aggregate, not just overwritten;
/// * **non-adjacent re-dirtying**: NFTs gain transfers in two epochs with a
///   quiet epoch in between, so partials survive an epoch of disuse and are
///   then replaced;
/// * **zero-dirty epoch**: an epoch whose blocks touch no NFT, so the
///   reassembly runs entirely from caches with an empty dirty set.
///
/// At every epoch, the incrementally reassembled [`LiveReport`] must be
/// bit-identical to [`StreamAnalyzer::rebuild_full_report`] — the
/// pre-incremental full-rescan tail over the same caches — and at the tip to
/// the batch report; all of it at 1, 2, 4 and 8 threads.
#[test]
fn partial_caches_survive_adversarial_transitions() {
    let world = World::generate(tiny_config(11)).expect("world");
    let input = input_of(&world);
    let batch = analyze_with(input, AnalysisOptions::single_threaded());

    for threads in [1usize, 2, 4, 8] {
        let mut live = StreamAnalyzer::new(input, StreamOptions { threads });
        let mut lost_total = 0usize;
        let mut zero_dirty_epochs = 0usize;
        while let Some(delta) = live.ingest_epoch(7) {
            lost_total += delta.lost_suspects;
            if delta.dirty_nfts == 0 {
                zero_dirty_epochs += 1;
            }
            // The epoch-granular invariant: the dirty-driven reassembly and
            // a from-scratch rebuild over the same per-NFT caches agree on
            // every field, mid-stream included.
            assert_eq!(
                live.report(),
                &live.rebuild_full_report(),
                "incremental reassembly diverged from the full rescan at epoch {} \
                 (threads {threads})",
                delta.index,
            );
        }
        // The scenarios this fixture was picked for actually occurred.
        assert!(lost_total > 0, "fixture lost no suspect (threads {threads})");
        assert!(zero_dirty_epochs > 0, "fixture had no zero-dirty epoch (threads {threads})");
        assert_live_equals_batch(
            live.report(),
            &batch,
            &format!("adversarial fixture, threads {threads}"),
        );
    }

    // Pin the non-adjacent re-dirtying ingredient explicitly: at least one
    // NFT must gain transfers in two epochs that are not consecutive.
    let executor = washtrade::parallel::Executor::new(1);
    let mut cursor = washtrade_stream::BlockCursor::new();
    let mut dataset = washtrade_stream::IncrementalDataset::new();
    let mut dirty_epochs: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut index = 0usize;
    while let Some(span) = cursor.next_epoch(&world.chain, 7) {
        let delta = dataset.apply_span(&world.chain, &world.directory, span, &executor);
        for key in &delta.dirty {
            dirty_epochs.entry(key.0).or_default().push(index);
        }
        index += 1;
    }
    assert!(
        dirty_epochs.values().any(|epochs| epochs.windows(2).any(|w| w[1] - w[0] >= 2)),
        "fixture dirtied no NFT in two non-adjacent epochs"
    );
}

proptest::proptest! {
    #[test]
    fn streaming_equals_batch_at_random_epoch_slicings(
        seed in 0u64..1_000,
        threads in 1usize..5,
        budgets in proptest::collection::vec(1u64..120, 1..6),
    ) {
        let world = World::generate(tiny_config(seed)).expect("world");
        let input = input_of(&world);
        let batch = analyze_with(
            input,
            AnalysisOptions { threads, ..AnalysisOptions::default() },
        );

        let mut live = StreamAnalyzer::new(input, StreamOptions { threads });
        let mut cycle = budgets.iter().cycle();
        while live.ingest_epoch(*cycle.next().expect("non-empty budgets")).is_some() {}

        let context = format!("seed {seed}, threads {threads}, budgets {budgets:?}");
        assert_live_equals_batch(live.report(), &batch, &context);

        // The wash-trade sets agree exactly (redundant with the detection
        // equality above, but this is the set the paper's tables build on —
        // assert it explicitly).
        let live_sets: Vec<_> = live
            .report()
            .detection
            .confirmed
            .iter()
            .map(|a| (a.nft(), a.accounts().to_vec()))
            .collect();
        let batch_sets: Vec<_> = batch
            .detection
            .confirmed
            .iter()
            .map(|a| (a.nft(), a.accounts().to_vec()))
            .collect();
        proptest::prop_assert_eq!(live_sets, batch_sets);
        proptest::prop_assert_eq!(live.report().detection.venn, batch.detection.venn);
        proptest::prop_assert_eq!(
            live.report().characterization.total_activities,
            batch.characterization.total_activities
        );

        // The snapshot-served query helpers stay bit-identical to the
        // pre-index linear scans they replaced, at every window and size.
        let report = live.report();
        let tip = report.watermark;
        for block in [0, tip.0 / 3, tip.0 / 2, tip.0.saturating_sub(1), tip.0] {
            proptest::prop_assert_eq!(
                live.suspects_since(BlockNumber(block)),
                reference_suspects_since(report, BlockNumber(block)),
                "suspects_since diverged at block {} ({})",
                block,
                context
            );
        }
        for n in [0, 1, 3, usize::MAX] {
            proptest::prop_assert_eq!(
                live.top_movers(n),
                reference_top_movers(report, n),
                "top_movers diverged at n = {} ({})",
                n,
                context
            );
        }
    }
}
