//! # washtrade-stream — streaming wash-trade analysis
//!
//! The batch pipeline in `washtrade` consumes a completed chain and
//! recomputes everything from scratch — the shape of the paper's one-shot,
//! 34-month study. This crate turns that pipeline into an *incremental* one,
//! the "real-time detection" direction the follow-up literature flags as the
//! gap between one-shot studies and deployable systems:
//!
//! * [`BlockCursor`] tails an [`ethsim::Chain`] from a watermark block,
//!   handing out contiguous ingestion epochs;
//! * [`IncrementalDataset`] and [`IncrementalGraphs`] intern and append the
//!   epoch's new transfers into the columnar store and grow the per-NFT
//!   graphs in place, via the `apply_entries` / `apply_rows` seams in
//!   `washtrade` (dirty sets travel as dense `Vec<NftKey>`s, the graph
//!   table is `NftKey`-indexed);
//! * [`StreamAnalyzer`] re-runs refinement and detection only for the
//!   *dirty* NFT set (the NFTs touched since the last epoch), fanned out
//!   over the shared `washtrade::parallel::Executor`, and re-assembles the
//!   global artifacts into a persistent [`LiveReport`] with a per-epoch
//!   [`EpochDelta`] and a query API ([`StreamAnalyzer::status`],
//!   [`StreamAnalyzer::suspects_since`], [`StreamAnalyzer::top_movers`]);
//! * after every epoch the analyzer builds an immutable, epoch-versioned
//!   `washtrade_serve::Snapshot` from the dense layers and swaps it into a
//!   [`SnapshotPublisher`](washtrade_serve::SnapshotPublisher) — the
//!   publication seam the read-side subsystem (`washtrade-serve`) serves
//!   concurrent queries from while ingestion keeps running. The analyzer's
//!   own `suspects_since` / `top_movers` helpers are answered from those
//!   snapshot indexes too (bit-identically to the linear scans they
//!   replaced).
//!
//! **Headline invariant:** after ingesting all epochs, the [`LiveReport`] is
//! bit-identical to batch `washtrade::pipeline::analyze` on the same chain —
//! same confirmed wash-trade set, Venn counts and characterization — at any
//! epoch size and any thread count. The equivalence proptest in
//! `tests/equivalence.rs` slices random worlds at random epoch boundaries to
//! enforce exactly that.
//!
//! ```no_run
//! use washtrade::pipeline::AnalysisInput;
//! use washtrade_stream::{StreamAnalyzer, StreamOptions};
//! use workload::{WorkloadConfig, World};
//!
//! let world = World::generate(WorkloadConfig::small(42)).expect("world");
//! let input = AnalysisInput {
//!     chain: &world.chain,
//!     labels: &world.labels,
//!     directory: &world.directory,
//!     oracle: &world.oracle,
//! };
//! let mut live = StreamAnalyzer::new(input, StreamOptions::default());
//! while let Some(delta) = live.ingest_epoch(500) {
//!     println!(
//!         "epoch {}: {} dirty NFTs, {} new suspects",
//!         delta.index,
//!         delta.dirty_nfts,
//!         delta.new_suspects.len()
//!     );
//! }
//! println!("{} confirmed activities", live.report().detection.confirmed.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cursor;
pub mod incremental;
pub mod live;
pub mod tail;

pub use cursor::{BlockCursor, EpochSpan};
pub use incremental::{AppendDelta, IncrementalDataset, IncrementalGraphs};
pub use live::{EpochDelta, LiveReport, NftStatus, StreamAnalyzer, StreamOptions};
pub use tail::LegitVolumeSet;
