//! The live analyzer: a dirty-set scheduler over the incremental dataset and
//! graphs that keeps a [`LiveReport`] continuously up to date and guarantees
//! convergence to the batch result at the chain tip (see the mid-stream
//! semantics note on [`StreamAnalyzer`] for what "up to date" means before
//! the tip).
//!
//! Per epoch, only the NFTs touched by new transfers are re-refined and
//! re-evaluated (a pure per-NFT computation, fanned out over the shared
//! [`Executor`]); the global artifacts — leverage pass, Venn counts,
//! refinement report, characterization — are then re-assembled from the
//! per-NFT caches through the exact same code paths the batch pipeline uses.
//! That shared-code-path design is what makes the headline invariant hold:
//! after ingesting all epochs, the live report is bit-identical to batch
//! analysis of the same chain, at any epoch size and thread count.
//!
//! The scheduler is dense end to end: dirty sets are `Vec<NftKey>`, the
//! per-NFT cache is a `Vec` indexed by [`NftKey`], and candidates stay in
//! dense-id form until the per-epoch [`LiveReport`] is assembled — the same
//! single resolve-at-report-boundary point the batch pipeline uses.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::{Duration, Instant};

use ethsim::{Address, BlockNumber, Timestamp, Wei};
use graphlib::PatternCatalogue;
use ids::NftKey;
use serde::{Deserialize, Serialize};
use tokens::NftId;
use washtrade::characterize::{
    activity_facts, characterize, characterize_from_parts, ActivityFacts, Characterization,
    CharacterizeBaseline,
};
use washtrade::dataset::NftMarketLeaves;
use washtrade::detect::{DenseActivity, DetectionOutcome, Detector, MethodSet};
use washtrade::parallel::Executor;
use washtrade::pipeline::{AnalysisInput, AnalysisOptions};
use washtrade::profit::{
    analyze_resales, analyze_rewards, reduce_resales, reduce_rewards, resale_facts, reward_facts,
    ResaleOutcome, ResaleReport, RewardOutcome, RewardReport,
};
use washtrade::refine::{
    aggregate_refinements, DenseCandidate, NftRefinement, RefinementAggregator, RefinementReport,
    Refiner,
};
use washtrade::txgraph::NftGraph;
use washtrade_serve::{Snapshot, SnapshotMeta, SnapshotPublisher, WashVolumes};

use crate::cursor::BlockCursor;
use crate::incremental::{IncrementalDataset, IncrementalGraphs};
use crate::tail::{DenseMarketLeaves, DenseVolumeFold, LegitVolumeSet, TxIds};

/// What one ingested epoch changed, as reported back to the caller and kept
/// in [`LiveReport::epochs`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochDelta {
    /// Zero-based epoch index.
    pub index: usize,
    /// First block of the epoch.
    pub first_block: BlockNumber,
    /// Last block of the epoch (inclusive).
    pub last_block: BlockNumber,
    /// Raw ERC-721-shaped logs scanned.
    pub raw_events: usize,
    /// Compliant transfers appended.
    pub transfers: usize,
    /// NFTs whose graphs changed — the only NFTs re-refined and re-detected
    /// this epoch (the dirty-set metric).
    pub dirty_nfts: usize,
    /// Total NFTs known after the epoch, for comparison with `dirty_nfts`.
    pub total_nfts: usize,
    /// NFTs newly confirmed as wash-traded this epoch, ascending.
    pub new_suspects: Vec<NftId>,
    /// Previously confirmed NFTs no longer confirmed (components can merge as
    /// edges arrive, changing the surviving candidate set).
    pub lost_suspects: usize,
    /// Confirmed activities after the epoch.
    pub confirmed_total: usize,
    /// Wall-clock time of the epoch's ingestion + re-detection, nanoseconds.
    pub wall_time_ns: u64,
    /// Wall-clock time of the epoch's report reassembly (the
    /// refine-aggregate → detect → characterize → profit tail), nanoseconds
    /// — the `reassemble_scaling` bench's incremental-path sample.
    pub reassemble_ns: u64,
}

impl EpochDelta {
    /// Number of blocks the epoch covered.
    pub fn blocks(&self) -> u64 {
        self.last_block.0 - self.first_block.0 + 1
    }

    /// The epoch's wall-clock time as a [`Duration`].
    pub fn wall_time(&self) -> Duration {
        Duration::from_nanos(self.wall_time_ns)
    }
}

/// The continuously maintained analysis state, exposing the same §IV-B/§IV-C,
/// §V and §VI numbers as the batch `AnalysisReport` plus the per-epoch
/// history.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveReport {
    /// §IV-B: counts after each refinement stage.
    pub refinement: RefinementReport,
    /// §IV-C/D: confirmed activities and method overlap.
    pub detection: DetectionOutcome,
    /// §V: volumes, temporal behaviour, patterns, serial traders.
    pub characterization: Characterization,
    /// §VI-A: reward-system exploitation on the reward marketplaces.
    pub rewards: RewardReport,
    /// §VI-B: resale profitability on the remaining marketplaces.
    pub resales: ResaleReport,
    /// Distinct NFTs with at least one compliant transfer.
    pub dataset_nfts: usize,
    /// Compliant transfers ingested.
    pub dataset_transfers: usize,
    /// Raw ERC-721-shaped logs scanned (before the compliance filter).
    pub raw_transfer_events: usize,
    /// Contracts passing the compliance probe.
    pub compliant_contracts: usize,
    /// Contracts failing the probe.
    pub non_compliant_contracts: usize,
    /// The cursor watermark: first block not yet ingested.
    pub watermark: BlockNumber,
    /// One delta per ingested epoch, in order.
    pub epochs: Vec<EpochDelta>,
}

/// The streaming status of one NFT, as answered by
/// [`StreamAnalyzer::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NftStatus {
    /// No transfer of this NFT has been ingested.
    Unseen,
    /// The NFT has transfers but no suspicious component.
    Clean {
        /// Transfers ingested for the NFT.
        transfers: usize,
    },
    /// Suspicious components survive refinement but none is confirmed.
    Candidate {
        /// Surviving candidate components.
        components: usize,
    },
    /// At least one component is confirmed as wash trading.
    Confirmed {
        /// Confirmed activities on the NFT.
        activities: usize,
        /// Total confirmed wash volume on the NFT.
        volume: Wei,
    },
}

/// Tunables for a [`StreamAnalyzer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamOptions {
    /// Thread budget for the per-epoch dirty-set fan-out; `0` (the default)
    /// means one thread per available core. Results are bit-identical at any
    /// value.
    pub threads: usize,
}

impl StreamOptions {
    /// Options pinned to a single thread.
    pub fn single_threaded() -> Self {
        StreamOptions { threads: 1 }
    }

    /// Adopt the thread budget of batch [`AnalysisOptions`].
    pub fn from_analysis(options: AnalysisOptions) -> Self {
        StreamOptions { threads: options.threads }
    }
}

/// Cached per-NFT analysis state: the refinement outcome plus, per
/// candidate, the base detection evidence and the characterize/profit leaf
/// facts — everything the per-epoch reassembly folds, valid until the NFT's
/// graph next changes. Candidates (with their aligned evidence and facts)
/// are stored sorted by the batch sort key, so walking suspect NFTs in id
/// order replays the exact batch candidate sequence with no global sort.
#[derive(Debug, Clone)]
struct NftState {
    refinement: NftRefinement,
    evidence: Vec<MethodSet>,
    facts: Vec<CandidateFacts>,
}

/// The cached leaf facts of one candidate: the expensive per-candidate
/// halves of characterize (§V) and profit (§VI), recomputed only when the
/// candidate's NFT is dirtied. All three are pure functions of the candidate
/// and append-only inputs (columns, graph, chain histories), which is what
/// makes caching them across epochs sound.
#[derive(Debug, Clone)]
struct CandidateFacts {
    characterize: ActivityFacts,
    reward: Option<RewardOutcome>,
    resale: Option<ResaleOutcome>,
}

/// The streaming analyzer: owns the cursor, the incremental layers, the
/// per-NFT caches and the live report.
///
/// # Mid-stream semantics
///
/// Graphs and candidates are built strictly from the ingested prefix, but
/// the flow evidence (`common_funder` / `common_exit`) scans the chain's
/// account histories, which on an already-materialized chain include blocks
/// past the watermark. Mid-stream confirmations are therefore
/// *final-chain-informed*: an activity whose exit sweep lies in a future
/// epoch can already be confirmed when its trades arrive. This is the right
/// behaviour when catching up over history (no detection flapping while the
/// evidence is already on disk), and it vanishes at the tip: once every
/// block is ingested, the [`LiveReport`] is bit-identical to batch
/// `analyze()` — the invariant the equivalence suite enforces. A true
/// prefix-only mid-stream view would need per-account dirty tracking so
/// cached evidence could expire as the watermark moves; that is future work.
pub struct StreamAnalyzer<'a> {
    input: AnalysisInput<'a>,
    executor: Executor,
    cursor: BlockCursor,
    dataset: IncrementalDataset,
    graphs: IncrementalGraphs,
    /// Per-NFT cache, indexed by [`NftKey`]; `None` for NFTs with no
    /// suspicious component at any stage.
    states: Vec<Option<NftState>>,
    /// §IV-B counts maintained as states change — reading the refinement
    /// report each epoch is O(1) instead of a rescan of every state.
    refine_agg: RefinementAggregator,
    /// NFTs with a cached state (suspects), keyed by resolved identity — the
    /// reassembly walks this map to visit candidates in the exact order the
    /// batch global sort produces.
    suspects_by_id: BTreeMap<NftId, NftKey>,
    /// Every known key sorted by resolved identity (the
    /// `nft_keys_sorted_by_id` order), maintained by merging each epoch's
    /// new key range — the Table I fold's iteration order.
    nft_id_order: Vec<NftKey>,
    /// How many interner keys `nft_id_order` covers.
    known_keys: usize,
    /// Cached per-NFT marketplace leaves (priced Table I rows) in dense
    /// transaction-id form, indexed by [`NftKey`]; dirty NFTs are repriced,
    /// clean ones keep their leaves.
    market_leaves: Vec<Option<DenseMarketLeaves>>,
    /// Dense transaction ids backing `market_leaves`: each hash is hashed
    /// once when a dirty NFT's leaves are cached, so the per-epoch Table I
    /// fold replay dedups through a bitset instead of a hash set.
    tx_ids: TxIds,
    /// Maintained collection→creation-time map (Fig. 5 baseline): per-NFT
    /// first rows are immutable, so only dirty NFTs fold in.
    collection_created: HashMap<Address, Timestamp>,
    /// Maintained Fig. 3 legit-volume baseline multiset.
    legit: LegitVolumeSet,
    confirmed_nfts: BTreeSet<NftId>,
    first_confirmed: HashMap<NftId, BlockNumber>,
    /// The confirmed activities still in dense-id form — what each epoch's
    /// snapshot is built from (the publication seam's input).
    dense_confirmed: Vec<DenseActivity>,
    /// NFTs whose confirmed activities changed in the last reassembly,
    /// computed by diffing consecutive dense confirmed sets. This is the
    /// delta-build contract: diffing outcomes (not the dirty set) also
    /// catches leverage-pass flips on NFTs whose own graphs were untouched.
    changed_nfts: BTreeSet<NftId>,
    /// The snapshot this analyzer last published — the delta-encoding base
    /// for the next epoch. `None` until the first publish (an inherited
    /// publisher's foreign snapshot is never used as a delta base).
    last_snapshot: Option<Snapshot>,
    /// The publication slot this analyzer swaps a fresh [`Snapshot`] into
    /// after every ingested epoch.
    publisher: SnapshotPublisher,
    /// Published epoch numbers start above the epoch found in the publisher
    /// at construction, so epochs stay monotonic across analyzer
    /// generations sharing one slot — a `(epoch, query)` cache key can
    /// never collide with a previous generation's.
    epoch_base: u64,
    live: LiveReport,
}

impl<'a> StreamAnalyzer<'a> {
    /// A fresh analyzer over the given inputs, cursor at genesis, nothing
    /// ingested, publishing into a fresh [`SnapshotPublisher`].
    pub fn new(input: AnalysisInput<'a>, options: StreamOptions) -> Self {
        StreamAnalyzer::with_publisher(input, options, SnapshotPublisher::new())
    }

    /// A fresh analyzer publishing into an existing [`SnapshotPublisher`] —
    /// the way to keep a serving slot (and the readers holding clones of it)
    /// alive across analyzer generations, e.g. when re-ingesting a chain
    /// from scratch. The previous snapshot keeps serving until this
    /// analyzer's first epoch publishes, and the new epochs number upward
    /// from the inherited snapshot's epoch (never reusing one, so cached
    /// responses from earlier generations can never be served against this
    /// generation's snapshots).
    pub fn with_publisher(
        input: AnalysisInput<'a>,
        options: StreamOptions,
        publisher: SnapshotPublisher,
    ) -> Self {
        let empty = IncrementalDataset::new();
        let live = LiveReport {
            refinement: RefinementReport::default(),
            detection: DetectionOutcome::default(),
            characterization: characterize(&[], empty.dataset(), input.directory, input.oracle),
            rewards: reduce_rewards(std::iter::empty(), input.directory),
            resales: reduce_resales(std::iter::empty()),
            dataset_nfts: 0,
            dataset_transfers: 0,
            raw_transfer_events: 0,
            compliant_contracts: 0,
            non_compliant_contracts: 0,
            watermark: BlockNumber(0),
            epochs: Vec::new(),
        };
        let epoch_base = publisher.epoch();
        StreamAnalyzer {
            input,
            executor: Executor::new(options.threads),
            cursor: BlockCursor::new(),
            dataset: empty,
            graphs: IncrementalGraphs::new(),
            states: Vec::new(),
            refine_agg: RefinementAggregator::default(),
            suspects_by_id: BTreeMap::new(),
            nft_id_order: Vec::new(),
            known_keys: 0,
            market_leaves: Vec::new(),
            tx_ids: TxIds::new(),
            collection_created: HashMap::new(),
            legit: LegitVolumeSet::new(),
            confirmed_nfts: BTreeSet::new(),
            first_confirmed: HashMap::new(),
            dense_confirmed: Vec::new(),
            changed_nfts: BTreeSet::new(),
            last_snapshot: None,
            publisher,
            epoch_base,
            live,
        }
    }

    /// Ingest the next epoch of at most `max_blocks` blocks: append the new
    /// transfers, grow the touched graphs, re-refine and re-evaluate exactly
    /// the dirty NFT set, and re-assemble the live report. Returns `None`
    /// once the cursor is caught up with the chain tip.
    pub fn ingest_epoch(&mut self, max_blocks: u64) -> Option<EpochDelta> {
        let span = self.cursor.next_epoch(self.input.chain, max_blocks)?;
        let started = Instant::now();
        // Root of this epoch's span tree: every traced phase below — the
        // ingest decode/reconcile/splice, the dirty-set fan-out, reassembly,
        // and the snapshot publish — parents under it.
        let mut epoch_trace = obs::trace::span("stream.epoch");
        epoch_trace.attr("epoch", self.live.epochs.len() as u64);
        epoch_trace.attr("first_block", span.first.0);
        epoch_trace.attr("last_block", span.last.0);

        let applied =
            self.dataset.apply_span(self.input.chain, self.input.directory, span, &self.executor);
        self.graphs.sync(self.dataset.dataset(), &applied.dirty);

        // Dirty-set re-detection: refinement, base evidence and the
        // characterize/profit leaf facts are pure per NFT, so only the
        // touched graphs are recomputed, fanned out over the executor.
        // `applied.dirty` is sorted, so the fan-out order — and with it
        // every downstream artifact — is thread-count independent.
        let dataset = self.dataset.dataset();
        let interner = &dataset.interner;
        let (chain, directory, oracle) =
            (self.input.chain, self.input.directory, self.input.oracle);
        let refiner = Refiner::new(chain, self.input.labels, interner);
        let detector = Detector::new(chain, self.input.labels, interner);
        let catalogue = PatternCatalogue::paper();
        let dirty_graphs: Vec<&NftGraph> = applied
            .dirty
            .iter()
            .map(|nft| self.graphs.get(*nft).expect("dirty NFT has a synced graph"))
            .collect();
        let mut detect_trace = obs::trace::span("stream.refine_detect");
        detect_trace.attr("dirty", dirty_graphs.len() as u64);
        let recomputed: Vec<(NftKey, NftState, NftMarketLeaves)> =
            self.executor.map(&dirty_graphs, |graph| {
                let mut refinement = refiner.refine_nft(graph);
                let mut entries: Vec<(DenseCandidate, MethodSet, CandidateFacts)> =
                    std::mem::take(&mut refinement.candidates)
                        .into_iter()
                        .map(|candidate| {
                            let evidence = detector.evaluate(&candidate, Some(graph));
                            let facts = CandidateFacts {
                                characterize: activity_facts(
                                    &candidate, dataset, directory, oracle, &catalogue,
                                ),
                                reward: reward_facts(
                                    &candidate, chain, directory, oracle, interner,
                                ),
                                resale: resale_facts(
                                    &candidate,
                                    chain,
                                    directory,
                                    oracle,
                                    Some(graph),
                                    interner,
                                ),
                            };
                            (candidate, evidence, facts)
                        })
                        .collect();
                // Store candidates in batch sort-key order: the key is
                // strictly unique, so the reassembly's id-ordered walk over
                // per-NFT sorted lists reproduces the global sorted sequence.
                entries.sort_by_key(|(candidate, _, _)| candidate.sort_key(interner));
                let mut evidence = Vec::with_capacity(entries.len());
                let mut facts = Vec::with_capacity(entries.len());
                for (candidate, methods, candidate_facts) in entries {
                    refinement.candidates.push(candidate);
                    evidence.push(methods);
                    facts.push(candidate_facts);
                }
                let leaves = dataset.nft_market_leaves(graph.nft, oracle);
                (graph.nft, NftState { refinement, evidence, facts }, leaves)
            });
        detect_trace.finish();
        drop(dirty_graphs);
        let mut evaluate_reruns = 0u64;
        for (nft, state, leaves) in recomputed {
            evaluate_reruns += state.evidence.len() as u64;
            if self.states.len() <= nft.index() {
                self.states.resize_with(nft.index() + 1, || None);
            }
            if self.market_leaves.len() <= nft.index() {
                self.market_leaves.resize_with(nft.index() + 1, || None);
            }
            self.market_leaves[nft.index()] =
                Some(DenseMarketLeaves::from_leaves(&leaves, &mut self.tx_ids));
            // Fig. 5 baseline: a dirty NFT has rows, and its first row's
            // timestamp is immutable, so the min-fold is idempotent across
            // re-dirtying.
            if let Some(&first_row) = dataset.columns.rows_of(nft).first() {
                let first_seen = dataset.columns.timestamp[first_row as usize];
                let entry =
                    self.collection_created.entry(interner.nft(nft).contract).or_insert(first_seen);
                if first_seen < *entry {
                    *entry = first_seen;
                }
            }
            let slot = &mut self.states[nft.index()];
            if let Some(old) = slot.take() {
                self.refine_agg.remove(&old.refinement);
            }
            if state.refinement.is_empty() {
                self.suspects_by_id.remove(&interner.nft(nft));
            } else {
                self.refine_agg.add(&state.refinement);
                self.suspects_by_id.insert(interner.nft(nft), nft);
                *slot = Some(state);
            }
        }

        let reassemble_started = Instant::now();
        self.reassemble(span.last);
        let reassemble_ns =
            u64::try_from(reassemble_started.elapsed().as_nanos().max(1)).unwrap_or(u64::MAX);

        // Delta bookkeeping.
        let now_confirmed: BTreeSet<NftId> =
            self.live.detection.confirmed.iter().map(|activity| activity.nft()).collect();
        let new_suspects: Vec<NftId> =
            now_confirmed.difference(&self.confirmed_nfts).copied().collect();
        let lost_suspects = self.confirmed_nfts.difference(&now_confirmed).count();
        for nft in &new_suspects {
            // Plain insert, not or_insert: an NFT that lost its confirmation
            // and regained it later must report the *latest* transition, so
            // `suspects_since` stays consistent with the epoch delta that
            // just listed it under `new_suspects`.
            self.first_confirmed.insert(*nft, span.last);
        }
        self.confirmed_nfts = now_confirmed;

        let delta = EpochDelta {
            index: self.live.epochs.len(),
            first_block: span.first,
            last_block: span.last,
            raw_events: applied.raw_events,
            transfers: applied.transfers,
            dirty_nfts: applied.dirty.len(),
            total_nfts: self.dataset.dataset().nft_count(),
            new_suspects,
            lost_suspects,
            confirmed_total: self.live.detection.confirmed.len(),
            wall_time_ns: u64::try_from(started.elapsed().as_nanos().max(1)).unwrap_or(u64::MAX),
            reassemble_ns,
        };
        if obs::recording() {
            obs::counter!("stream.epochs");
            obs::counter!("stream.refine_reruns", delta.dirty_nfts as u64);
            obs::counter!("stream.evaluate_reruns", evaluate_reruns);
            obs::counter!("stream.new_suspects", delta.new_suspects.len() as u64);
            obs::counter!("stream.lost_suspects", delta.lost_suspects as u64);
            obs::histogram!("stream.epoch_ns", delta.wall_time_ns);
            obs::histogram!("stream.dirty_nfts", delta.dirty_nfts as u64);
            obs::gauge!("stream.total_nfts", delta.total_nfts as i64);
            obs::gauge!("stream.confirmed_total", delta.confirmed_total as i64);
            obs::gauge!("stream.watermark", self.live.watermark.0 as i64);
            // Blocks on the chain the cursor has not handed out yet — the
            // `watermark_lag` SLO's input (0 when tailing keeps up).
            let lag = self.input.chain.current_block_number().0.saturating_sub(span.last.0);
            obs::gauge!("stream.watermark_lag", lag as i64);
            obs::event!(
                "stream.epoch",
                "epoch {}: blocks {}..={}, {} dirty of {} NFTs, {} confirmed",
                delta.index,
                delta.first_block.0,
                delta.last_block.0,
                delta.dirty_nfts,
                delta.total_nfts,
                delta.confirmed_total
            );
        }
        self.live.epochs.push(delta.clone());
        self.publish_snapshot();
        epoch_trace.attr("dirty", delta.dirty_nfts as u64);
        epoch_trace.attr("transfers", delta.transfers as u64);
        epoch_trace.attr("confirmed", delta.confirmed_total as u64);
        epoch_trace.finish();
        if obs::recording() {
            // Judge the SLO catalog against the fresh metrics (including the
            // publish gauges this epoch just set); a newly violated rule
            // captures the flight ring as an incident.
            obs::health::evaluate(&obs::snapshot());
        }
        Some(delta)
    }

    /// Build the read-side [`Snapshot`] for the just-ingested epoch and swap
    /// it into the publisher — the publication seam between ingestion and
    /// the concurrent readers. Confirmation blocks are restricted to the
    /// currently confirmed set, so the snapshot's suspect log answers
    /// `suspects_since` exactly as the pre-index linear scan did. The
    /// per-marketplace rollup rows are reused from the characterization this
    /// epoch just re-assembled (they are bit-identical to what the snapshot
    /// would re-derive) instead of re-scanning every transfer for venue
    /// totals.
    ///
    /// Cost: the snapshot is **delta-encoded** against the one this analyzer
    /// last published. The expensive per-activity resolution (USD pricing,
    /// dominant venue, pattern classification, address resolution) runs only
    /// for the NFTs in `changed_nfts`; every unchanged NFT shares the
    /// previous epoch's resolved segment by `Arc` clone, and a quiet epoch
    /// shares every index wholesale. The first epoch of a generation (or
    /// one inheriting a foreign snapshot through
    /// [`StreamAnalyzer::with_publisher`]) pays one full build. Either path
    /// publishes a snapshot bit-identical to
    /// [`StreamAnalyzer::rebuild_full_snapshot`] — the AsOf-parity gate's
    /// invariant.
    fn publish_snapshot(&mut self) {
        let mut publish_trace = obs::trace::span("serve.publish");
        let confirmed_at = self.current_confirmed_at();
        let meta = self.current_meta();
        let marketplaces = self.live.characterization.per_marketplace.clone();
        let wash_volumes = Some(self.current_wash_volumes());
        let snapshot = match &self.last_snapshot {
            Some(previous) => Snapshot::delta_from_dense(
                previous,
                meta,
                &self.dense_confirmed,
                self.dataset.dataset(),
                self.input.directory,
                self.input.oracle,
                &confirmed_at,
                marketplaces,
                &self.changed_nfts,
                wash_volumes,
            ),
            None => Snapshot::from_dense_with_marketplaces(
                meta,
                &self.dense_confirmed,
                self.dataset.dataset(),
                self.input.directory,
                self.input.oracle,
                &confirmed_at,
                marketplaces,
                wash_volumes,
            ),
        };
        let build = snapshot.build_stats();
        publish_trace.attr("epoch", snapshot.epoch());
        publish_trace.attr("delta", u64::from(build.delta));
        publish_trace.attr("reuse_bp", (build.chunk_reuse_ratio() * 10_000.0) as u64);
        publish_trace.finish();
        self.last_snapshot = Some(snapshot.clone());
        self.publisher.publish(snapshot);
    }

    /// Confirmation blocks of the currently confirmed NFTs — the suspect-log
    /// input of the next published snapshot.
    fn current_confirmed_at(&self) -> HashMap<NftId, BlockNumber> {
        self.first_confirmed
            .iter()
            .filter(|(nft, _)| self.confirmed_nfts.contains(*nft))
            .map(|(nft, block)| (*nft, *block))
            .collect()
    }

    /// Version stamp of the next (or just-) published snapshot.
    fn current_meta(&self) -> SnapshotMeta {
        SnapshotMeta {
            epoch: self.epoch_base + self.live.epochs.len() as u64,
            watermark: self.live.watermark,
        }
    }

    /// Rebuild the current epoch's snapshot from scratch through the full
    /// (non-delta) constructor. This is the delta path's reference: the
    /// result must be bit-identical to [`StreamAnalyzer::snapshot`], which
    /// the AsOf-parity gate asserts per epoch and the `snapshot_delta` bench
    /// times the delta path against.
    pub fn rebuild_full_snapshot(&self) -> Snapshot {
        Snapshot::from_dense_with_marketplaces(
            self.current_meta(),
            &self.dense_confirmed,
            self.dataset.dataset(),
            self.input.directory,
            self.input.oracle,
            &self.current_confirmed_at(),
            self.live.characterization.per_marketplace.clone(),
            Some(self.current_wash_volumes()),
        )
    }

    /// The epoch's float wash-volume totals, forwarded from the
    /// characterization this epoch's reassembly just computed — the same
    /// flat fold over the same confirmed sequence the snapshot would run,
    /// so forwarding changes no bits (the parity suite pins this).
    fn current_wash_volumes(&self) -> WashVolumes {
        WashVolumes {
            eth: self.live.characterization.total_volume_eth,
            usd: self.live.characterization.total_volume_usd,
        }
    }

    /// Ingest epochs of `max_blocks` until caught up with the chain tip;
    /// returns how many epochs were ingested.
    pub fn run_to_tip(&mut self, max_blocks: u64) -> usize {
        let mut epochs = 0;
        while self.ingest_epoch(max_blocks).is_some() {
            epochs += 1;
        }
        epochs
    }

    /// Re-assemble the global artifacts from the per-NFT caches, mirroring
    /// the batch pipeline's refine → detect → characterize → profit tail over
    /// the ingested prefix — but at dirty-set cost: every expensive
    /// per-candidate and per-row value is read from a maintained cache, and
    /// only the final folds (which replay the exact batch accumulation order,
    /// so every float comes out bit-identical) run over the full suspect set.
    /// Candidates stay dense throughout; the resolved [`DetectionOutcome`]
    /// for the [`LiveReport`] is produced at the end — the same single
    /// resolution point the batch report assembly uses.
    fn reassemble(&mut self, last_block: BlockNumber) {
        let _reassemble_span = obs::span!("stream.reassemble_ns");
        let _reassemble_trace = obs::trace::span("stream.reassemble");
        let dataset = self.dataset.dataset();
        let interner = &dataset.interner;
        let (directory, oracle) = (self.input.directory, self.input.oracle);

        // §IV-B: the maintained aggregate already holds the report.
        {
            let _span = obs::span!("stream.reassemble.refine_agg_ns");
            self.live.refinement = self.refine_agg.report();
        }

        // §IV-C/D: walk suspect NFTs in resolved-id order; per-NFT candidate
        // lists are stored sorted by the batch sort key, whose leading
        // component is the NFT id — so this concatenation *is* the batch
        // global sort, with no per-epoch sort or candidate clone.
        let _detect_span = obs::span!("stream.reassemble.detect_ns");
        let mut pairs: Vec<(&DenseCandidate, MethodSet)> = Vec::new();
        let mut pair_facts: Vec<&CandidateFacts> = Vec::new();
        for &key in self.suspects_by_id.values() {
            let state = self.states[key.index()].as_ref().expect("suspect NFT has a cached state");
            for ((candidate, methods), facts) in
                state.refinement.candidates.iter().zip(&state.evidence).zip(&state.facts)
            {
                pairs.push((candidate, *methods));
                pair_facts.push(facts);
            }
        }
        let (detection, confirmed_indices) = Detector::assemble_indexed(&pairs);
        let confirmed_facts: Vec<&CandidateFacts> =
            confirmed_indices.iter().map(|&index| pair_facts[index as usize]).collect();
        drop(_detect_span);

        // §V: characterization from cached leaves + maintained baselines.
        let _characterize_span = obs::span!("stream.reassemble.characterize_ns");
        // Extend the id-sorted key order with this epoch's new keys: the
        // interner is append-only, so they are exactly the tail range.
        let nft_count = interner.nft_count();
        if self.known_keys < nft_count {
            let mut fresh: Vec<NftKey> =
                (self.known_keys..nft_count).map(|index| NftKey(index as u32)).collect();
            fresh.sort_by_key(|&key| interner.nft(key));
            let mut merged = Vec::with_capacity(self.nft_id_order.len() + fresh.len());
            let mut old = self.nft_id_order.iter().copied().peekable();
            let mut new = fresh.into_iter().peekable();
            while let (Some(&a), Some(&b)) = (old.peek(), new.peek()) {
                if interner.nft(a) <= interner.nft(b) {
                    merged.push(a);
                    old.next();
                } else {
                    merged.push(b);
                    new.next();
                }
            }
            merged.extend(old);
            merged.extend(new);
            self.nft_id_order = merged;
            self.known_keys = nft_count;
        }
        // Fig. 3 baseline: price only the new rows, flip only the rows whose
        // wash status the confirmed-set transition changed.
        self.legit.append_rows(dataset, oracle);
        self.legit.apply_confirmed_delta(&self.dense_confirmed, &detection.confirmed);
        // Table I totals: replay the batch fold over cached per-NFT leaves in
        // the same id-sorted order (only dirty NFTs were repriced). Dense
        // transaction ids make the per-transaction dedup a bitset probe, but
        // every dedup verdict — and so every f64 add, in the same order —
        // matches the batch fold's bit for bit.
        let mut fold = DenseVolumeFold::new(interner.market_count());
        for &key in &self.nft_id_order {
            if let Some(leaves) = self.market_leaves.get(key.index()).and_then(Option::as_ref) {
                fold.add(leaves);
            }
        }
        let market_totals = fold.totals(directory, interner);
        let baseline = CharacterizeBaseline {
            market_totals,
            legit_volume_cdf: self.legit.cdf(),
            collection_created: self.collection_created.clone(),
        };
        let facts: Vec<ActivityFacts> =
            confirmed_facts.iter().map(|facts| facts.characterize.clone()).collect();
        self.live.characterization =
            characterize_from_parts(&detection.confirmed, &facts, baseline);
        drop(_characterize_span);

        // §VI: profit reduces over cached outcomes, in confirmed order.
        {
            let _span = obs::span!("stream.reassemble.profit_ns");
            self.live.rewards = reduce_rewards(
                confirmed_facts.iter().filter_map(|facts| facts.reward.as_ref()),
                directory,
            );
            self.live.resales =
                reduce_resales(confirmed_facts.iter().filter_map(|facts| facts.resale.as_ref()));
        }

        self.live.detection = detection.resolve(interner);
        let previous = std::mem::replace(&mut self.dense_confirmed, detection.confirmed);
        // The next snapshot's delta base: which NFTs' confirmed activities
        // actually changed. Diffing outcomes (rather than trusting the dirty
        // set) is what makes the delta build safe against the leverage pass,
        // which can flip an NFT whose own graph never changed.
        self.changed_nfts = changed_suspects(&previous, &self.dense_confirmed, interner);
        self.live.dataset_nfts = dataset.nft_count();
        self.live.dataset_transfers = dataset.transfer_count();
        self.live.raw_transfer_events = dataset.raw_transfer_events;
        self.live.compliant_contracts = dataset.compliant_contracts.len();
        self.live.non_compliant_contracts = dataset.non_compliant_contracts.len();
        self.live.watermark = BlockNumber(last_block.0 + 1);
    }

    /// The live report as of the last ingested epoch.
    pub fn report(&self) -> &LiveReport {
        &self.live
    }

    /// Rebuild the current live report from scratch — the pre-incremental
    /// full-rescan tail: flatten and globally sort every cached candidate,
    /// re-run the leverage pass, then recompute characterization and both
    /// profit analyses over the full confirmed set with no cached leaves.
    /// This is the incremental reassembly's reference: the result must be
    /// bit-identical to [`StreamAnalyzer::report`] after every epoch (the
    /// equivalence suite asserts it), and the `reassemble_scaling` bench
    /// times the incremental path against it.
    pub fn rebuild_full_report(&self) -> LiveReport {
        let dataset = self.dataset.dataset();
        let interner = &dataset.interner;
        let refinement =
            aggregate_refinements(self.states.iter().flatten().map(|state| &state.refinement));
        let mut pairs: Vec<(DenseCandidate, MethodSet)> = self
            .states
            .iter()
            .flatten()
            .flat_map(|state| {
                state.refinement.candidates.iter().cloned().zip(state.evidence.iter().copied())
            })
            .collect();
        pairs.sort_by_key(|(candidate, _)| candidate.sort_key(interner));
        let (candidates, evidence): (Vec<DenseCandidate>, Vec<MethodSet>) =
            pairs.into_iter().unzip();
        let detection = Detector::assemble(&candidates, evidence);
        let characterization =
            characterize(&detection.confirmed, dataset, self.input.directory, self.input.oracle);
        let rewards = analyze_rewards(
            &detection.confirmed,
            self.input.chain,
            self.input.directory,
            self.input.oracle,
            interner,
        );
        let resales = analyze_resales(
            &detection.confirmed,
            self.input.chain,
            self.input.directory,
            self.input.oracle,
            self.graphs.table(),
            interner,
        );
        LiveReport {
            refinement,
            characterization,
            rewards,
            resales,
            detection: detection.resolve(interner),
            dataset_nfts: dataset.nft_count(),
            dataset_transfers: dataset.transfer_count(),
            raw_transfer_events: dataset.raw_transfer_events,
            compliant_contracts: dataset.compliant_contracts.len(),
            non_compliant_contracts: dataset.non_compliant_contracts.len(),
            watermark: self.live.watermark,
            epochs: self.live.epochs.clone(),
        }
    }

    /// Whether every block currently on the chain has been ingested.
    pub fn is_caught_up(&self) -> bool {
        self.cursor.is_caught_up(self.input.chain)
    }

    /// The streaming status of one NFT.
    pub fn status(&self, nft: NftId) -> NftStatus {
        let confirmed: Vec<&washtrade::refine::Candidate> = self
            .live
            .detection
            .confirmed
            .iter()
            .filter(|activity| activity.nft() == nft)
            .map(|activity| &activity.candidate)
            .collect();
        if !confirmed.is_empty() {
            return NftStatus::Confirmed {
                activities: confirmed.len(),
                volume: confirmed.iter().map(|candidate| candidate.volume).sum(),
            };
        }
        let dataset = self.dataset.dataset();
        let Some(key) = dataset.interner.nft_key(nft) else {
            return NftStatus::Unseen;
        };
        if let Some(state) = self.states.get(key.index()).and_then(Option::as_ref) {
            if !state.refinement.candidates.is_empty() {
                return NftStatus::Candidate { components: state.refinement.candidates.len() };
            }
        }
        match dataset.columns.transfer_count_of(key) {
            0 => NftStatus::Unseen,
            transfers => NftStatus::Clean { transfers },
        }
    }

    /// A handle on the publication slot this analyzer publishes into after
    /// every epoch. Clones are cheap and independent of the analyzer's
    /// lifetime: hand them to reader threads (or a
    /// [`washtrade_serve::QueryService`]) and they keep serving the latest
    /// published snapshot while ingestion continues.
    pub fn publisher(&self) -> SnapshotPublisher {
        self.publisher.clone()
    }

    /// The currently published snapshot — the state of the last ingested
    /// epoch (the empty epoch-zero snapshot before any ingestion).
    pub fn snapshot(&self) -> Snapshot {
        self.publisher.load()
    }

    /// The confirmed activities still in dense-id form, as the last epoch's
    /// snapshot was built from them.
    pub fn dense_confirmed(&self) -> &[DenseActivity] {
        &self.dense_confirmed
    }

    /// Currently confirmed NFTs whose latest transition into the confirmed
    /// set happened at or after `block` (measured by the last block of the
    /// epoch that confirmed them), ascending.
    ///
    /// Served from the published snapshot's block-sorted suspect log —
    /// O(log suspects + answer) instead of the pre-index scan over every
    /// NFT ever confirmed — with output bit-identical to that scan (the
    /// equivalence proptest checks both helpers against reference
    /// recomputations).
    pub fn suspects_since(&self, block: BlockNumber) -> Vec<NftId> {
        self.publisher.load().suspects_since(block)
    }

    /// The `n` confirmed NFTs with the largest wash volume, descending
    /// (ties broken by NFT id, so the ranking is deterministic).
    ///
    /// Served as a prefix of the published snapshot's precomputed ranking —
    /// no per-query aggregation over the confirmed set.
    pub fn top_movers(&self, n: usize) -> Vec<(NftId, Wei)> {
        self.publisher.load().top_movers(n)
    }
}

/// The NFTs whose confirmed activity groups differ between two consecutive
/// dense confirmed sets — the delta-build `changed` contract. Both inputs
/// are in confirmed order (sorted by `(resolved NFT, first account)`), so
/// this is a linear merge over per-NFT groups; a group present on only one
/// side (new or lost suspect) is changed, a group present on both sides is
/// changed iff its dense activities differ. Dense keys are stable (the
/// interner is append-only), so equal dense groups resolve to identical
/// serving records.
fn changed_suspects(
    previous: &[DenseActivity],
    current: &[DenseActivity],
    interner: &ids::Interner,
) -> BTreeSet<NftId> {
    fn group_end(activities: &[DenseActivity], start: usize) -> usize {
        let key = activities[start].candidate.nft;
        let mut end = start + 1;
        while end < activities.len() && activities[end].candidate.nft == key {
            end += 1;
        }
        end
    }
    let mut changed = BTreeSet::new();
    let (mut i, mut j) = (0, 0);
    while i < previous.len() || j < current.len() {
        let prev_nft = (i < previous.len()).then(|| interner.nft(previous[i].candidate.nft));
        let cur_nft = (j < current.len()).then(|| interner.nft(current[j].candidate.nft));
        match (prev_nft, cur_nft) {
            (Some(prev), Some(cur)) if prev == cur => {
                let prev_end = group_end(previous, i);
                let cur_end = group_end(current, j);
                if previous[i..prev_end] != current[j..cur_end] {
                    changed.insert(cur);
                }
                i = prev_end;
                j = cur_end;
            }
            (Some(prev), Some(cur)) if prev < cur => {
                changed.insert(prev);
                i = group_end(previous, i);
            }
            (Some(_), Some(cur)) => {
                changed.insert(cur);
                j = group_end(current, j);
            }
            (Some(prev), None) => {
                changed.insert(prev);
                i = group_end(previous, i);
            }
            (None, Some(cur)) => {
                changed.insert(cur);
                j = group_end(current, j);
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    changed
}
