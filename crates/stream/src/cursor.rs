//! The block cursor: a watermark over an [`ethsim::Chain`] that hands out
//! contiguous, non-overlapping epochs of blocks for incremental ingestion.

use ethsim::{BlockNumber, Chain};
use serde::{Deserialize, Serialize};

/// A contiguous range of blocks forming one ingestion epoch (inclusive on
/// both ends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochSpan {
    /// First block of the epoch.
    pub first: BlockNumber,
    /// Last block of the epoch (inclusive).
    pub last: BlockNumber,
}

impl EpochSpan {
    /// Number of blocks covered by the span.
    pub fn blocks(&self) -> u64 {
        self.last.0 - self.first.0 + 1
    }
}

/// Tails a chain from a watermark block, producing [`EpochSpan`]s that cover
/// every block exactly once.
///
/// The cursor reads up to and including the chain's currently open block, so
/// after draining to the tip the consumed range equals what a batch scan
/// sees. When the open block later receives more transactions *and* the
/// cursor already consumed it, those transactions are skipped — tail a live
/// chain only past sealed blocks (or after the producer has quiesced), as
/// any log-range consumer must.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BlockCursor {
    next: BlockNumber,
}

impl BlockCursor {
    /// A cursor starting at the genesis block.
    pub fn new() -> Self {
        BlockCursor::default()
    }

    /// A cursor resuming from a watermark: `next` is the first block that has
    /// *not* been ingested yet.
    pub fn from_watermark(next: BlockNumber) -> Self {
        BlockCursor { next }
    }

    /// The first block the next epoch will cover.
    pub fn watermark(&self) -> BlockNumber {
        self.next
    }

    /// Whether every block currently on the chain has been handed out.
    pub fn is_caught_up(&self, chain: &Chain) -> bool {
        self.next > chain.current_block_number()
    }

    /// Hand out the next epoch of at most `max_blocks` blocks, advancing the
    /// watermark past it. Returns `None` once the cursor is caught up with
    /// the chain tip (the open block included).
    ///
    /// # Panics
    ///
    /// Panics if `max_blocks` is zero.
    pub fn next_epoch(&mut self, chain: &Chain, max_blocks: u64) -> Option<EpochSpan> {
        assert!(max_blocks > 0, "an epoch must cover at least one block");
        let tip = chain.current_block_number();
        if self.next > tip {
            return None;
        }
        // Saturating: `max_blocks = u64::MAX` ("everything in one epoch")
        // must clamp to the tip, not overflow.
        let last = BlockNumber(self.next.0.saturating_add(max_blocks - 1).min(tip.0));
        let span = EpochSpan { first: self.next, last };
        self.next = BlockNumber(last.0 + 1);
        Some(span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::Timestamp;

    fn chain_with_blocks(sealed: u64) -> Chain {
        let mut chain = Chain::new(Timestamp::from_secs(1_000));
        for i in 0..sealed {
            chain.seal_block(Timestamp::from_secs(1_000 + (i + 1) * 13)).unwrap();
        }
        chain
    }

    #[test]
    fn epochs_cover_every_block_exactly_once() {
        let chain = chain_with_blocks(9); // blocks 0..=9, block 9 open
        let mut cursor = BlockCursor::new();
        let mut covered = Vec::new();
        while let Some(span) = cursor.next_epoch(&chain, 4) {
            covered.extend(span.first.0..=span.last.0);
        }
        assert_eq!(covered, (0..=9).collect::<Vec<_>>());
        assert!(cursor.is_caught_up(&chain));
        assert!(cursor.next_epoch(&chain, 4).is_none());
    }

    #[test]
    fn cursor_resumes_from_watermark_and_follows_growth() {
        let mut chain = chain_with_blocks(3);
        let mut cursor = BlockCursor::from_watermark(BlockNumber(2));
        let span = cursor.next_epoch(&chain, 10).unwrap();
        assert_eq!((span.first, span.last), (BlockNumber(2), BlockNumber(3)));
        assert_eq!(span.blocks(), 2);
        assert!(cursor.is_caught_up(&chain));
        // The chain grows: the cursor picks up the new blocks.
        chain.seal_block(Timestamp::from_secs(10_000)).unwrap();
        let span = cursor.next_epoch(&chain, 10).unwrap();
        assert_eq!((span.first, span.last), (BlockNumber(4), BlockNumber(4)));
        assert_eq!(cursor.watermark(), BlockNumber(5));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_sized_epochs_are_rejected() {
        let chain = chain_with_blocks(1);
        BlockCursor::new().next_epoch(&chain, 0);
    }

    #[test]
    fn huge_epoch_budgets_clamp_to_the_tip() {
        let chain = chain_with_blocks(3);
        let mut cursor = BlockCursor::new();
        cursor.next_epoch(&chain, 2).unwrap();
        let span = cursor.next_epoch(&chain, u64::MAX).unwrap();
        assert_eq!((span.first, span.last), (BlockNumber(2), BlockNumber(3)));
        assert!(cursor.is_caught_up(&chain));
    }
}
