//! Incrementally maintained inputs of the streaming characterization tail.
//!
//! The Fig. 3 "volume without wash trading" baseline is the one
//! characterization input that depends on *both* halves of the state: every
//! ingested transfer row (its USD pricing) and the current confirmed set
//! (which rows are wash trades). The batch path rebuilds it each time with a
//! full column scan; [`LegitVolumeSet`] maintains the same sample multiset
//! across epochs — appends price only the new rows, and the confirmed-set
//! delta flips only the rows of transactions whose wash status actually
//! changed — so snapshotting the CDF is a memcpy instead of a world scan.
//!
//! Bit-identity argument: `Cdf::new` sorts its samples by `total_cmp`, a
//! total order under which equal elements are identical bit patterns, so the
//! sorted sequence is unique for a given multiset. The maintained sorted
//! multiset therefore yields — via [`Cdf::from_sorted`] — exactly the bits a
//! batch scan-and-sort over the same rows yields, and no float is ever
//! subtracted: samples enter and leave the multiset whole.

use std::collections::HashMap;

use ethsim::TxHash;
use ids::BitSet;
use marketplace::MarketplaceDirectory;
use washtrade::dataset::{Dataset, NftMarketLeaves};
use washtrade::detect::DenseActivity;
use washtrade::stats::Cdf;

use oracle::PriceOracle;

/// The maintained "volume w/o wash trading" sample multiset (Fig. 3
/// baseline): USD values of every priced transfer row whose transaction is
/// not currently part of a confirmed wash activity.
#[derive(Debug, Clone, Default)]
pub struct LegitVolumeSet {
    /// First column row not yet priced.
    next_row: usize,
    /// Per-row USD value (immutable once priced — rows are append-only).
    row_usd: Vec<f64>,
    /// Whether the row is a CDF sample at all: non-zero price and a
    /// non-NaN USD value (`Cdf::new` drops NaNs, so the maintained set
    /// excludes them the same way).
    row_eligible: Vec<bool>,
    /// Rows carried by each transaction, for flipping a transaction's rows
    /// in and out of the sample set when its wash status changes.
    tx_rows: HashMap<TxHash, Vec<u32>>,
    /// How many confirmed internal edges currently reference each
    /// transaction; a transaction is wash iff its count is non-zero.
    wash_refcount: HashMap<TxHash, u32>,
    /// The sample multiset, sorted by `total_cmp`.
    sorted: Vec<f64>,
    /// Samples entering the multiset this epoch (merged on commit).
    pending_add: Vec<f64>,
    /// Samples leaving the multiset this epoch (merged on commit).
    pending_remove: Vec<f64>,
}

impl LegitVolumeSet {
    /// An empty set, no rows priced.
    pub fn new() -> Self {
        LegitVolumeSet::default()
    }

    /// Price and index the column rows appended since the last call. New
    /// rows whose transaction is already wash are indexed but not sampled —
    /// the flip machinery owns them from the start.
    pub fn append_rows(&mut self, dataset: &Dataset, oracle: &PriceOracle) {
        let columns = &dataset.columns;
        for row in self.next_row..columns.len() {
            let usd = oracle.wei_to_usd(columns.price[row], columns.timestamp[row]).unwrap_or(0.0);
            let eligible = !columns.price[row].is_zero() && !usd.is_nan();
            self.row_usd.push(usd);
            self.row_eligible.push(eligible);
            self.tx_rows.entry(columns.tx_hash[row]).or_default().push(row as u32);
            if eligible && self.wash_refcount.get(&columns.tx_hash[row]).copied().unwrap_or(0) == 0
            {
                self.pending_add.push(usd);
            }
        }
        self.next_row = columns.len();
    }

    /// Apply one epoch's confirmed-set transition: reference counts drop for
    /// every internal edge of the previous confirmed activities and rise for
    /// the current ones, and the rows of each transaction whose wash status
    /// flipped move out of or into the sample multiset.
    pub fn apply_confirmed_delta(&mut self, previous: &[DenseActivity], current: &[DenseActivity]) {
        // Status before the transition, recorded once per touched tx.
        let mut was_wash: HashMap<TxHash, bool> = HashMap::new();
        for activity in previous {
            for (_, _, edge) in &activity.candidate.internal_edges {
                let count = self.wash_refcount.entry(edge.tx_hash).or_insert(0);
                was_wash.entry(edge.tx_hash).or_insert(*count > 0);
                debug_assert!(*count > 0, "wash refcount underflow");
                *count -= 1;
            }
        }
        for activity in current {
            for (_, _, edge) in &activity.candidate.internal_edges {
                let count = self.wash_refcount.entry(edge.tx_hash).or_insert(0);
                was_wash.entry(edge.tx_hash).or_insert(*count > 0);
                *count += 1;
            }
        }
        for (tx, was) in was_wash {
            let is = self.wash_refcount.get(&tx).copied().unwrap_or(0) > 0;
            if was == is {
                continue;
            }
            let Some(rows) = self.tx_rows.get(&tx) else {
                continue;
            };
            for &row in rows {
                if !self.row_eligible[row as usize] {
                    continue;
                }
                let usd = self.row_usd[row as usize];
                if is {
                    self.pending_remove.push(usd);
                } else {
                    self.pending_add.push(usd);
                }
            }
        }
    }

    /// The current baseline CDF — commits pending moves, then snapshots the
    /// sorted multiset.
    pub fn cdf(&mut self) -> Cdf {
        self.commit();
        Cdf::from_sorted(self.sorted.clone())
    }

    /// Merge this epoch's pending adds/removes into the sorted multiset:
    /// one sort of the (small) pending sets plus one linear merge. Equal
    /// samples are interchangeable (identical bits under `total_cmp`), so
    /// add/remove pairs cancel and removals may take any matching instance.
    fn commit(&mut self) {
        if self.pending_add.is_empty() && self.pending_remove.is_empty() {
            return;
        }
        self.pending_add.sort_by(|a, b| a.total_cmp(b));
        self.pending_remove.sort_by(|a, b| a.total_cmp(b));

        // Cancel same-epoch add/remove pairs (e.g. a row appended and
        // immediately washed): both lists are sorted, so one linear pass.
        let (mut adds, mut removes) = (Vec::new(), Vec::new());
        let (mut i, mut j) = (0, 0);
        while i < self.pending_add.len() && j < self.pending_remove.len() {
            match self.pending_add[i].total_cmp(&self.pending_remove[j]) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    adds.push(self.pending_add[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    removes.push(self.pending_remove[j]);
                    j += 1;
                }
            }
        }
        adds.extend_from_slice(&self.pending_add[i..]);
        removes.extend_from_slice(&self.pending_remove[j..]);
        self.pending_add.clear();
        self.pending_remove.clear();

        let mut merged = Vec::with_capacity(self.sorted.len() + adds.len());
        let mut add = adds.iter().copied().peekable();
        let mut remove_at = 0usize;
        for &value in &self.sorted {
            while add.peek().is_some_and(|a| a.total_cmp(&value).is_lt()) {
                merged.push(add.next().unwrap());
            }
            if remove_at < removes.len() && removes[remove_at].to_bits() == value.to_bits() {
                remove_at += 1;
                continue;
            }
            merged.push(value);
        }
        merged.extend(add);
        debug_assert_eq!(remove_at, removes.len(), "removed sample missing from multiset");
        self.sorted = merged;
    }
}

/// Dense transaction ids for the streamed Table I fold: each distinct
/// [`TxHash`] is hashed exactly once, when a dirty NFT's leaves are cached —
/// every later per-epoch fold replay dedups through a [`BitSet`] over these
/// ids instead of re-hashing 32-byte hashes into a fresh set per epoch.
#[derive(Debug, Clone, Default)]
pub struct TxIds {
    ids: HashMap<TxHash, u32>,
}

impl TxIds {
    /// An empty assignment.
    pub fn new() -> Self {
        TxIds::default()
    }

    /// The dense id of `hash`, assigning the next free one on first sight.
    pub fn id(&mut self, hash: TxHash) -> u32 {
        let next = self.ids.len() as u32;
        *self.ids.entry(hash).or_insert(next)
    }

    /// Number of distinct transactions seen.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no transaction has been assigned an id yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// One pre-priced marketplace row of an NFT with its transaction in dense-id
/// form — the cached leaf of the streamed Table I fold (the stream-side
/// mirror of [`washtrade::dataset::MarketLeaf`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMarketLeaf {
    /// The attributed marketplace.
    pub market: ids::MarketId,
    /// Dense id of the carrying transaction (volume dedups per transaction).
    pub tx: u32,
    /// Price in ETH.
    pub eth: f64,
    /// Price in USD at the transfer's timestamp.
    pub usd: f64,
}

/// The cached dense leaves of one NFT (see [`DenseMarketLeaf`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DenseMarketLeaves {
    /// Leaves in row (chronological) order.
    pub leaves: Vec<DenseMarketLeaf>,
}

impl DenseMarketLeaves {
    /// Convert freshly priced leaves into dense form, assigning transaction
    /// ids through `txs`.
    pub fn from_leaves(leaves: &NftMarketLeaves, txs: &mut TxIds) -> Self {
        DenseMarketLeaves {
            leaves: leaves
                .leaves
                .iter()
                .map(|leaf| DenseMarketLeaf {
                    market: leaf.market,
                    tx: txs.id(leaf.tx_hash),
                    eth: leaf.eth,
                    usd: leaf.usd,
                })
                .collect(),
        }
    }
}

/// The streamed Table I reduce: the exact accumulation of
/// [`washtrade::dataset::MarketVolumeFold`] — per-market f64 sums over leaves
/// fed in identity-sorted NFT order, first leaf per (market, transaction)
/// winning — with the per-epoch transaction dedup running over a [`BitSet`]
/// of dense ids instead of a hash set of 32-byte hashes. Dense ids are
/// bijective with hashes, so every dedup verdict (and with it every f64 add,
/// in the same order) matches the batch fold bit for bit.
pub struct DenseVolumeFold {
    per_market: Vec<Option<DenseMarketAccumulator>>,
}

struct DenseMarketAccumulator {
    transactions: BitSet,
    volume_usd: f64,
}

impl DenseVolumeFold {
    /// An empty fold over `market_count` dense marketplace ids.
    pub fn new(market_count: usize) -> Self {
        let mut per_market = Vec::new();
        per_market.resize_with(market_count, || None);
        DenseVolumeFold { per_market }
    }

    /// Fold one NFT's cached leaves. Callers must add NFTs in identity-sorted
    /// order — same contract as the batch fold.
    pub fn add(&mut self, leaves: &DenseMarketLeaves) {
        for leaf in &leaves.leaves {
            let accumulator = self.per_market[leaf.market.index()].get_or_insert_with(|| {
                DenseMarketAccumulator { transactions: BitSet::new(), volume_usd: 0.0 }
            });
            if accumulator.transactions.insert(leaf.tx as usize) {
                accumulator.volume_usd += leaf.usd;
            }
        }
    }

    /// Resolve the fold into the marketplace-name → total-USD-volume map the
    /// characterization baseline consumes (the same values
    /// `MarketVolumeFold::rows` carries in its rows).
    pub fn totals(
        self,
        directory: &MarketplaceDirectory,
        interner: &ids::Interner,
    ) -> HashMap<String, f64> {
        directory
            .iter()
            .map(|info| {
                let volume = interner
                    .market_id(info.contract)
                    .and_then(|id| self.per_market[id.index()].as_ref())
                    .map(|accumulator| accumulator.volume_usd)
                    .unwrap_or(0.0);
                (info.name.clone(), volume)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_merges_adds_and_removes() {
        let mut set = LegitVolumeSet::new();
        set.pending_add.extend([3.0, 1.0, 2.0]);
        set.commit();
        assert_eq!(set.sorted, vec![1.0, 2.0, 3.0]);
        set.pending_add.push(2.5);
        set.pending_remove.push(2.0);
        set.commit();
        assert_eq!(set.sorted, vec![1.0, 2.5, 3.0]);
        // Same-epoch add+remove of an equal sample cancels.
        set.pending_add.push(9.0);
        set.pending_remove.push(9.0);
        set.commit();
        assert_eq!(set.sorted, vec![1.0, 2.5, 3.0]);
    }

    #[test]
    fn duplicate_samples_remove_one_instance() {
        let mut set = LegitVolumeSet::new();
        set.pending_add.extend([5.0, 5.0, 5.0]);
        set.commit();
        set.pending_remove.push(5.0);
        set.commit();
        assert_eq!(set.sorted, vec![5.0, 5.0]);
    }
}
