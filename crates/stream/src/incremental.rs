//! Incremental dataset and graph maintenance: append-only layers over
//! `washtrade`'s [`Dataset`] and [`NftGraph`] that grow with each ingested
//! epoch instead of being rebuilt from scratch.

use std::collections::HashMap;

use ethsim::Chain;
use marketplace::MarketplaceDirectory;
use tokens::NftId;
use washtrade::dataset::Dataset;
use washtrade::txgraph::NftGraph;

use crate::cursor::EpochSpan;

/// What one ingested epoch changed in the dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppendDelta {
    /// NFTs that gained at least one transfer, in ascending order.
    pub dirty: Vec<NftId>,
    /// Raw ERC-721-shaped logs scanned in the epoch (before compliance).
    pub raw_events: usize,
    /// Compliant transfers appended.
    pub transfers: usize,
}

/// A [`Dataset`] grown epoch by epoch through the incremental
/// [`Dataset::apply_entries`] seam.
///
/// Feeding a chain's blocks through `apply_span` in any epoch partition
/// produces a dataset identical to a one-shot [`Dataset::build`] over the
/// same chain (compliance verdicts are cached across epochs, per-NFT
/// histories stay sorted).
#[derive(Debug, Clone, Default)]
pub struct IncrementalDataset {
    inner: Dataset,
}

impl IncrementalDataset {
    /// An empty dataset, no blocks ingested yet.
    pub fn new() -> Self {
        IncrementalDataset::default()
    }

    /// Scan the span's blocks for ERC-721 transfers and append them,
    /// returning what changed.
    pub fn apply_span(
        &mut self,
        chain: &Chain,
        directory: &MarketplaceDirectory,
        span: EpochSpan,
    ) -> AppendDelta {
        let entries = chain.logs_in_blocks(span.first, span.last, &Dataset::transfer_filter());
        let raw_events = entries.len();
        let applied = self.inner.apply_entries(chain, directory, &entries);
        AppendDelta { dirty: applied.dirty, raw_events, transfers: applied.appended }
    }

    /// The dataset accumulated so far.
    pub fn dataset(&self) -> &Dataset {
        &self.inner
    }

    /// Consume the layer, yielding the accumulated dataset.
    pub fn into_dataset(self) -> Dataset {
        self.inner
    }
}

/// Per-NFT transaction graphs maintained in place: each sync appends only the
/// transfers an NFT gained since its last sync, via the incremental
/// [`NftGraph::apply_transfers`] seam.
#[derive(Debug, Clone, Default)]
pub struct IncrementalGraphs {
    graphs: HashMap<NftId, NftGraph>,
    /// How many of each NFT's dataset transfers are already in its graph.
    applied: HashMap<NftId, usize>,
}

impl IncrementalGraphs {
    /// No graphs yet.
    pub fn new() -> Self {
        IncrementalGraphs::default()
    }

    /// Bring the graphs of the `dirty` NFTs up to date with `dataset`,
    /// appending each NFT's unseen transfer suffix to its graph (creating the
    /// graph on first sight).
    ///
    /// Sound because epoch ingestion only ever *appends* to a per-NFT
    /// history: the unseen suffix is exactly the new transfers, so the grown
    /// graph equals a from-scratch [`NftGraph::from_transfers`] over the full
    /// history.
    pub fn sync(&mut self, dataset: &Dataset, dirty: &[NftId]) {
        for nft in dirty {
            let Some(transfers) = dataset.transfers_by_nft.get(nft) else {
                continue;
            };
            let seen = self.applied.entry(*nft).or_insert(0);
            if *seen >= transfers.len() {
                continue;
            }
            let graph = self.graphs.entry(*nft).or_insert_with(|| NftGraph::new(*nft));
            graph.apply_transfers(&transfers[*seen..]);
            *seen = transfers.len();
        }
    }

    /// The graph of one NFT, if it has any transfers yet.
    pub fn get(&self, nft: NftId) -> Option<&NftGraph> {
        self.graphs.get(&nft)
    }

    /// Number of NFTs with a graph.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether no NFT has a graph yet.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{Address, BlockNumber, Timestamp, TxHash, Wei};
    use washtrade::dataset::NftTransfer;

    fn transfer(nft: NftId, from: &str, to: &str, block: u64) -> NftTransfer {
        NftTransfer {
            nft,
            from: Address::derived(from),
            to: Address::derived(to),
            tx_hash: TxHash::hash_of(format!("{from}->{to}@{block}").as_bytes()),
            block: BlockNumber(block),
            timestamp: Timestamp::from_secs(block * 13),
            price: Wei::from_eth(1.0),
            marketplace: None,
        }
    }

    #[test]
    fn sync_appends_only_the_unseen_suffix() {
        let nft = NftId::new(Address::derived("c"), 1);
        let mut dataset = Dataset::default();
        dataset
            .transfers_by_nft
            .insert(nft, vec![transfer(nft, "a", "b", 1), transfer(nft, "b", "a", 2)]);

        let mut graphs = IncrementalGraphs::new();
        graphs.sync(&dataset, &[nft]);
        assert_eq!(graphs.get(nft).unwrap().graph.edge_count(), 2);

        // Re-syncing without new transfers is a no-op.
        graphs.sync(&dataset, &[nft]);
        assert_eq!(graphs.get(nft).unwrap().graph.edge_count(), 2);

        // A new transfer arrives: only it is appended.
        dataset.transfers_by_nft.get_mut(&nft).unwrap().push(transfer(nft, "a", "c", 3));
        graphs.sync(&dataset, &[nft]);
        let grown = graphs.get(nft).unwrap();
        assert_eq!(grown.graph.edge_count(), 3);

        // And the grown graph equals a from-scratch build.
        let batch = NftGraph::from_transfers(nft, &dataset.transfers_by_nft[&nft]);
        assert_eq!(grown.suspicious_account_sets(), batch.suspicious_account_sets());
        assert_eq!(grown.graph.node_count(), batch.graph.node_count());
        assert_eq!(graphs.len(), 1);
        assert!(!graphs.is_empty());
    }
}
