//! Incremental dataset and graph maintenance: append-only layers over
//! `washtrade`'s [`Dataset`] and [`NftGraph`] that grow with each ingested
//! epoch instead of being rebuilt from scratch.
//!
//! Both layers are dense: dirty sets are sorted `Vec<NftKey>`s and the graph
//! table is a `Vec` indexed by [`NftKey`] — the stream never hashes an NFT
//! identity after ingest.

use ethsim::Chain;
use ids::NftKey;
use marketplace::MarketplaceDirectory;
use washtrade::dataset::Dataset;
use washtrade::parallel::Executor;
use washtrade::txgraph::NftGraph;

use crate::cursor::EpochSpan;

/// What one ingested epoch changed in the dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppendDelta {
    /// NFTs that gained at least one transfer, in ascending key order.
    pub dirty: Vec<NftKey>,
    /// Raw ERC-721-shaped logs scanned in the epoch (before compliance).
    pub raw_events: usize,
    /// Compliant transfers appended.
    pub transfers: usize,
}

/// A [`Dataset`] grown epoch by epoch through the incremental
/// [`Dataset::apply_entries`] seam.
///
/// Feeding a chain's blocks through `apply_span` in any epoch partition
/// produces a dataset identical to a one-shot [`Dataset::build`] over the
/// same chain — columns, id assignment and compliance verdicts alike
/// (interning is append-only and first-seen order equals execution order).
#[derive(Debug, Clone, Default)]
pub struct IncrementalDataset {
    inner: Dataset,
}

impl IncrementalDataset {
    /// An empty dataset, no blocks ingested yet.
    pub fn new() -> Self {
        IncrementalDataset::default()
    }

    /// Scan the span's blocks for ERC-721 transfers and append them,
    /// returning what changed. Runs the same two-phase sharded ingest as the
    /// batch path ([`Dataset::ingest_blocks`]): the span's blocks are the
    /// shard boundaries, decoded in parallel over `executor` and committed
    /// in order — so an epoch's cost parallelizes exactly like a batch
    /// build's, and the resulting dataset stays bit-identical to it.
    pub fn apply_span(
        &mut self,
        chain: &Chain,
        directory: &MarketplaceDirectory,
        span: EpochSpan,
        executor: &Executor,
    ) -> AppendDelta {
        let raw_before = self.inner.raw_transfer_events;
        let applied = self.inner.ingest_blocks(chain, directory, span.first, span.last, executor);
        AppendDelta {
            dirty: applied.dirty,
            raw_events: self.inner.raw_transfer_events - raw_before,
            transfers: applied.appended,
        }
    }

    /// The dataset accumulated so far.
    pub fn dataset(&self) -> &Dataset {
        &self.inner
    }

    /// Consume the layer, yielding the accumulated dataset.
    pub fn into_dataset(self) -> Dataset {
        self.inner
    }
}

/// Per-NFT transaction graphs maintained in place, indexed by [`NftKey`]:
/// each sync appends only the column rows an NFT gained since its last sync,
/// via the incremental [`NftGraph::apply_rows`] seam.
#[derive(Debug, Clone, Default)]
pub struct IncrementalGraphs {
    /// `graphs[key.index()]` is that NFT's graph. Keys are dense and
    /// assigned in first-transfer order, so the table grows at the tail.
    graphs: Vec<NftGraph>,
    /// How many of each NFT's column rows are already in its graph.
    applied: Vec<usize>,
}

impl IncrementalGraphs {
    /// No graphs yet.
    pub fn new() -> Self {
        IncrementalGraphs::default()
    }

    /// Bring the graphs of the `dirty` NFTs up to date with `dataset`,
    /// appending each NFT's unseen row suffix to its graph (creating the
    /// graph on first sight — dirty keys are dense, so the table extends by
    /// plain pushes).
    ///
    /// Sound because epoch ingestion only ever *appends* to a per-NFT row
    /// slice: the unseen suffix is exactly the new transfers, so the grown
    /// graph equals a from-scratch [`NftGraph::from_columns`] over the full
    /// history.
    pub fn sync(&mut self, dataset: &Dataset, dirty: &[NftKey]) {
        for &nft in dirty {
            while self.graphs.len() <= nft.index() {
                self.graphs.push(NftGraph::new(NftKey(self.graphs.len() as u32)));
                self.applied.push(0);
            }
            let rows = dataset.columns.rows_of(nft);
            let seen = &mut self.applied[nft.index()];
            if *seen >= rows.len() {
                continue;
            }
            self.graphs[nft.index()].apply_rows(&dataset.columns, &rows[*seen..]);
            *seen = rows.len();
        }
    }

    /// The graph of one NFT, if it has any transfers yet.
    pub fn get(&self, nft: NftKey) -> Option<&NftGraph> {
        self.graphs.get(nft.index())
    }

    /// The full [`NftKey`]-indexed graph table — the same shape batch
    /// [`NftGraph::from_dataset`] builds, for callers running batch-path
    /// code (e.g. the full-rescan reference report) over maintained graphs.
    pub fn table(&self) -> &[NftGraph] {
        &self.graphs
    }

    /// Number of NFTs with a graph.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether no NFT has a graph yet.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{Address, BlockNumber, Timestamp, TxHash, Wei};
    use tokens::NftId;
    use washtrade::dataset::NftTransfer;

    fn transfer(nft: NftId, from: &str, to: &str, block: u64) -> NftTransfer {
        NftTransfer {
            nft,
            from: Address::derived(from),
            to: Address::derived(to),
            tx_hash: TxHash::hash_of(format!("{from}->{to}@{block}").as_bytes()),
            block: BlockNumber(block),
            timestamp: Timestamp::from_secs(block * 13),
            price: Wei::from_eth(1.0),
            marketplace: None,
        }
    }

    #[test]
    fn sync_appends_only_the_unseen_suffix() {
        let nft = NftId::new(Address::derived("c"), 1);
        let mut dataset = Dataset::default();
        let key = dataset.push_transfer(&transfer(nft, "a", "b", 1));
        dataset.push_transfer(&transfer(nft, "b", "a", 2));

        let mut graphs = IncrementalGraphs::new();
        graphs.sync(&dataset, &[key]);
        assert_eq!(graphs.get(key).unwrap().graph.edge_count(), 2);

        // Re-syncing without new transfers is a no-op.
        graphs.sync(&dataset, &[key]);
        assert_eq!(graphs.get(key).unwrap().graph.edge_count(), 2);

        // A new transfer arrives: only it is appended.
        dataset.push_transfer(&transfer(nft, "a", "c", 3));
        graphs.sync(&dataset, &[key]);
        let grown = graphs.get(key).unwrap();
        assert_eq!(grown.graph.edge_count(), 3);

        // And the grown graph equals a from-scratch build.
        let batch = NftGraph::from_columns(key, &dataset.columns);
        assert_eq!(
            grown.suspicious_account_sets(&dataset.interner),
            batch.suspicious_account_sets(&dataset.interner)
        );
        assert_eq!(grown.graph.node_count(), batch.graph.node_count());
        assert_eq!(graphs.len(), 1);
        assert!(!graphs.is_empty());
    }
}
