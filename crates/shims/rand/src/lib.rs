//! Offline stand-in for the `rand` crate, covering exactly the surface this
//! workspace uses: `Rng::gen_range` over integer and float ranges,
//! `Rng::gen_bool`, and `SeedableRng::seed_from_u64`.
//!
//! The build environment has no access to crates.io. Generators implementing
//! [`RngCore`] (see the sibling `rand_chacha` shim) get the high-level
//! methods through the blanket [`Rng`] impl, mirroring the real crate's
//! design — including the generic shape of `gen_range`, so integer-literal
//! inference behaves as with the real crate. Sampling is fully deterministic
//! per seed, which is all the calibrated workload generator requires; the
//! exact stream differs from the real rand/ChaCha stack, so planted-world
//! layouts change if the real crates are ever swapped back in (tests assert
//! distributions, not exact layouts).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 uniformly distributed bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a bounded range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    fn sample_between<G: RngCore>(rng: &mut G, start: Self, end: Self, inclusive: bool) -> Self;
}

/// A range that can produce uniform samples of `T`; implemented for half-open
/// and inclusive ranges, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T: SampleUniform> {
    /// Draw one uniform sample.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T {
        let (start, end) = self.into_inner();
        T::sample_between(rng, start, end, true)
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → the full significand precision of an f64.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` without the worst of the modulo bias:
/// rejection sampling on the top of the range.
fn bounded_u128<G: RngCore>(rng: &mut G, span: u128) -> u128 {
    debug_assert!(span > 0);
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if draw <= zone {
            return draw % span;
        }
    }
}

macro_rules! int_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_between<G: RngCore>(rng: &mut G, start: Self, end: Self, inclusive: bool) -> Self {
                // Validate before computing the span: a reversed inclusive
                // range would wrap the subtraction and smuggle garbage out.
                if inclusive {
                    assert!(start <= end, "empty gen_range {start}..={end}");
                } else {
                    assert!(start < end, "empty gen_range {start}..{end}");
                }
                let span = (end as i128 - start as i128) as u128 + u128::from(inclusive);
                (start as i128 + bounded_u128(rng, span) as i128) as $ty
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_between<G: RngCore>(rng: &mut G, start: Self, end: Self, inclusive: bool) -> Self {
                assert!(if inclusive { start <= end } else { start < end }, "empty gen_range");
                let sampled = start + unit_f64(rng.next_u64()) as $ty * (end - start);
                // Rounding in `start + unit * width` can land exactly on the
                // upper bound; keep half-open ranges strictly exclusive.
                if !inclusive && sampled >= end {
                    end.next_down()
                } else {
                    sampled
                }
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(2u64..=3);
            assert!((2..=3).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn output_type_drives_literal_inference() {
        let mut rng = Counter(9);
        let table = [10u64, 20, 30];
        // Compiles only if the literal range infers to usize from the index.
        let picked = table[rng.gen_range(0..3)];
        assert!(table.contains(&picked));
    }

    #[test]
    #[should_panic(expected = "empty gen_range")]
    #[allow(clippy::reversed_empty_ranges)] // the reversed range is the point
    fn reversed_inclusive_range_panics() {
        let mut rng = Counter(3);
        let _ = rng.gen_range(5u64..=3);
    }

    #[test]
    fn half_open_float_range_excludes_upper_bound() {
        // A generator pinned to the maximal 53-bit sample, which is exactly
        // the draw whose rounding can reach the upper bound.
        struct MaxBits;
        impl RngCore for MaxBits {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = MaxBits;
        for _ in 0..4 {
            let v = rng.gen_range(0.10f64..0.28);
            assert!(v < 0.28, "half-open range returned its upper bound: {v}");
            let w = rng.gen_range(0.10f64..=0.28);
            assert!(w <= 0.28);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
