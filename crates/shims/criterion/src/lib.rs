//! Offline stand-in for `criterion`, implementing the subset of its API the
//! workspace's benches use: groups, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no access to crates.io. Instead of criterion's
//! statistical machinery this harness times `sample_size` samples per
//! benchmark (after one warm-up sample, auto-batching very fast closures) and
//! prints min / mean / max per iteration — enough to track the perf
//! trajectory PR over PR. Swapping the real criterion back in is a
//! manifest-only change.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness state: configuration plus a place to print results.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes (builder style, like
    /// the real crate's `Criterion::sample_size`).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one closure under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Time one closure that borrows a prepared input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value, e.g. a problem size.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Passed to each benchmark closure; collects iteration timings.
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, repeating it `batch` times per sample so that even
    /// nanosecond-scale closures produce measurable samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.batch {
            hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / self.batch as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up sample, also used to pick a batch size aiming at ≥ ~1 ms per
    // sample so the timer resolution does not dominate.
    let mut bencher = Bencher { batch: 1, samples: Vec::new() };
    f(&mut bencher);
    let warm = bencher.samples.first().copied().unwrap_or(Duration::ZERO);
    let batch = if warm < Duration::from_millis(1) {
        (Duration::from_millis(1).as_nanos() / warm.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    } else {
        1
    };

    let mut bencher = Bencher { batch, samples: Vec::with_capacity(sample_size) };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{label:<56} no samples (closure never called iter)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<56} time: [{} {} {}]  ({} samples x {batch})",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Define a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(0.5).0, "0.5");
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
    }
}
