//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes data yet — the `#[derive(Serialize,
//! Deserialize)]` annotations only keep the types ready for a real serde.
//! These derives therefore expand to nothing; they exist so the annotations
//! (including `#[serde(...)]` field attributes) parse and compile. Swapping
//! in the real crates later requires touching only the workspace manifest.

use proc_macro::TokenStream;

/// No-op replacement for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
