//! Offline stand-in for `rand_chacha`.
//!
//! Exposes a [`ChaCha8Rng`] type with the seeding API the workspace uses.
//! Internally it is xoshiro256++ (seeded through SplitMix64), not a ChaCha
//! stream: the workload generator and price oracle only need a deterministic,
//! statistically solid uniform source, not a cryptographic one. The name is
//! kept so swapping the real crate back in is a manifest-only change.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic pseudo-random generator (xoshiro256++ under the hood).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u64; 4],
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to fill xoshiro state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        ChaCha8Rng { state }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn roughly_uniform_unit_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
