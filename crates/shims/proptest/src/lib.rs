//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use: the `proptest!` macro with `pattern in strategy`
//! arguments, range and tuple strategies, `collection::vec`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! The build environment has no access to crates.io. Each property runs for
//! [`CASES`] deterministic cases (seeded from the test name), and failures
//! report the offending values through the normal assert panic — there is no
//! shrinking. Swapping the real proptest back in is a manifest-only change.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Cases generated per property (the real proptest defaults to 256; this
/// keeps `cargo test` fast while still exercising hundreds of random graphs
/// across the suite).
pub const CASES: usize = 96;

/// The deterministic generator driving each property's cases.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Seed a generator from the property's name, so every test has a stable
    /// stream independent of execution order.
    pub fn deterministic(name: &str) -> Self {
        let seed = name.bytes().fold(0xcbf29ce484222325u64, |hash, byte| {
            (hash ^ byte as u64).wrapping_mul(0x100000001b3)
        });
        TestRng(ChaCha8Rng::seed_from_u64(seed))
    }
}

/// A source of random values of one type, mirroring `proptest::strategy::Strategy`
/// in spirit (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors with random length and elements.
    pub struct VecStrategy<S> {
        element: S,
        length: Range<usize>,
    }

    /// A vector whose length is drawn from `length` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, length }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.length.is_empty() {
                self.length.start
            } else {
                rng.0.gen_range(self.length.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Define property tests: each function runs [`CASES`] times with fresh
/// random arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($(#[$attr:meta] fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            #[$attr]
            fn $name() {
                let mut proptest_rng = $crate::TestRng::deterministic(stringify!($name));
                for _ in 0..$crate::CASES {
                    $(let $pat = $crate::Strategy::sample(&$strategy, &mut proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under proptest's name (no shrinking, so a plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        #[test]
        fn generated_values_respect_strategies(
            n in 1usize..10,
            pairs in crate::collection::vec((0usize..10, 0u64..5), 0..20),
            mut x in 0.0f64..1.0,
        ) {
            crate::prop_assert!((1..10).contains(&n));
            crate::prop_assert!(pairs.len() < 20);
            for (a, b) in pairs {
                crate::prop_assert!(a < 10 && b < 5);
            }
            x += 1.0;
            crate::prop_assert!((1.0..2.0).contains(&x));
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        use crate::Strategy;
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let strategy = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(strategy.sample(&mut a), strategy.sample(&mut b));
        }
    }
}
