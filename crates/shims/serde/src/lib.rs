//! Offline stand-in for the `serde` facade crate.
//!
//! Exposes the `Serialize`/`Deserialize` trait names and their derive macros
//! so the workspace's annotations compile without network access. The traits
//! are empty markers: no code in this workspace serializes yet, and the
//! derives (see `serde_derive`) expand to nothing. Replacing this shim with
//! the real serde is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
