//! # tokens — simulated ERC-20 / ERC-721 / ERC-1155 contracts
//!
//! The paper's dataset is built from the transfer logs emitted by token
//! contracts on Ethereum. This crate provides simulated contracts that emit
//! exactly those logs (via [`ethsim::Log`] constructors with the genuine
//! Keccak event signatures), track balances/ownership so the simulation stays
//! internally consistent, and expose the ERC-165 compliance surface the paper
//! probes when filtering ERC-721 contracts.
//!
//! * [`Erc20Token`] — fungible tokens used for payments (WETH) and
//!   marketplace rewards (LOOKS, RARI);
//! * [`Erc721Collection`] — NFT collections, optionally ERC-165 compliant;
//! * [`Erc1155Collection`] — multi-tokens, present only as negative-control
//!   noise for the dataset builder's signature filtering;
//! * [`TokenRegistry`] — deploys contracts onto an [`ethsim::Chain`] and owns
//!   their state;
//! * [`compliance`] — the structural `supportsInterface` probe;
//! * [`NftId`] — the `(contract, token id)` tuple identifying an NFT.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compliance;
pub mod erc1155;
pub mod erc20;
pub mod erc721;
pub mod error;
pub mod nft;
pub mod registry;

pub use erc1155::Erc1155Collection;
pub use erc20::Erc20Token;
pub use erc721::Erc721Collection;
pub use error::TokenError;
pub use nft::NftId;
pub use registry::TokenRegistry;
