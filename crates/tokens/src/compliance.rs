//! ERC-165 compliance probing.
//!
//! The paper verifies that a contract emitting ERC-721-shaped transfer logs
//! actually implements the standard by calling ERC-165's
//! `supportsInterface(0x80ac58cd)`. The simulator cannot execute real EVM
//! bytecode, so the probe is reproduced structurally: compliant collections
//! deploy bytecode that embeds the `supportsInterface` selector and the
//! ERC-721 interface id, and [`supports_erc721_interface`] checks for that
//! marker — analogous to the ABI/bytecode-inspection approaches the paper
//! cites for token identification (Chen et al., Di Angelo & Salzer). This
//! substitution is recorded in DESIGN.md.

use ethsim::keccak::selector;

/// The ERC-165 interface id (`supportsInterface(bytes4)` selector).
pub const ERC165_INTERFACE_ID: [u8; 4] = [0x01, 0xff, 0xc9, 0xa7];

/// The ERC-721 interface id (XOR of the nine mandatory function selectors).
pub const ERC721_INTERFACE_ID: [u8; 4] = [0x80, 0xac, 0x58, 0xcd];

/// Bytecode deployed by compliant ERC-721 collections: a recognizable prefix
/// followed by the `supportsInterface` selector and the ERC-721 interface id.
pub fn compliant_erc721_bytecode() -> Vec<u8> {
    let mut code = vec![0x60, 0x80, 0x60, 0x40]; // conventional Solidity preamble
    code.extend_from_slice(&selector("supportsInterface(bytes4)"));
    code.extend_from_slice(&ERC721_INTERFACE_ID);
    code
}

/// Bytecode deployed by contracts that emit ERC-721-shaped logs but do not
/// implement ERC-165 (the paper's ~3% non-compliant contracts).
pub fn non_compliant_bytecode() -> Vec<u8> {
    vec![0x60, 0x80, 0x60, 0x40, 0x00, 0x00, 0x00, 0x00]
}

/// Bytecode for generic (non-token) contracts such as marketplaces, DeFi
/// pools or reward distributors.
pub fn generic_contract_bytecode(tag: u8) -> Vec<u8> {
    vec![0x60, 0x80, 0x60, 0x40, 0xfe, tag]
}

/// Probe a contract's bytecode for ERC-721 support: the structural equivalent
/// of calling `supportsInterface(0x80ac58cd)` and getting `true`.
pub fn supports_erc721_interface(code: &[u8]) -> bool {
    let marker: Vec<u8> = {
        let mut m = selector("supportsInterface(bytes4)").to_vec();
        m.extend_from_slice(&ERC721_INTERFACE_ID);
        m
    };
    code.windows(marker.len()).any(|window| window == marker.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliant_bytecode_passes_the_probe() {
        assert!(supports_erc721_interface(&compliant_erc721_bytecode()));
    }

    #[test]
    fn non_compliant_and_generic_bytecode_fail_the_probe() {
        assert!(!supports_erc721_interface(&non_compliant_bytecode()));
        assert!(!supports_erc721_interface(&generic_contract_bytecode(1)));
        assert!(!supports_erc721_interface(&[]));
    }

    #[test]
    fn interface_ids_match_the_standards() {
        assert_eq!(ERC165_INTERFACE_ID, selector("supportsInterface(bytes4)"));
        // 0x80ac58cd is specified by EIP-721.
        assert_eq!(ERC721_INTERFACE_ID, [0x80, 0xac, 0x58, 0xcd]);
    }
}
