//! Errors produced by the simulated token contracts.

use ethsim::Address;

/// Errors from ERC-20 / ERC-721 / ERC-1155 operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenError {
    /// The account does not hold enough fungible tokens.
    InsufficientTokenBalance {
        /// The token contract.
        contract: Address,
        /// The overdrawn account.
        account: Address,
        /// Amount requested.
        needed: u128,
        /// Amount held.
        available: u128,
    },
    /// The account is not the owner of the NFT being transferred.
    NotTokenOwner {
        /// The NFT contract.
        contract: Address,
        /// The token id.
        token_id: u64,
        /// The account that attempted the transfer.
        claimed_owner: Address,
        /// The actual owner, if the token exists.
        actual_owner: Option<Address>,
    },
    /// The token id does not exist in the collection.
    UnknownToken {
        /// The NFT contract.
        contract: Address,
        /// The missing token id.
        token_id: u64,
    },
    /// A contract with this address is already registered.
    ContractExists(Address),
    /// The contract address is not registered.
    UnknownContract(Address),
}

impl std::fmt::Display for TokenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenError::InsufficientTokenBalance { contract, account, needed, available } => {
                write!(
                    f,
                    "insufficient token balance on {contract} for {account}: needed {needed}, available {available}"
                )
            }
            TokenError::NotTokenOwner { contract, token_id, claimed_owner, actual_owner } => {
                write!(
                    f,
                    "{claimed_owner} is not the owner of token {token_id} on {contract} (owner: {actual_owner:?})"
                )
            }
            TokenError::UnknownToken { contract, token_id } => {
                write!(f, "token {token_id} does not exist on {contract}")
            }
            TokenError::ContractExists(address) => write!(f, "contract {address} already exists"),
            TokenError::UnknownContract(address) => {
                write!(f, "contract {address} is not registered")
            }
        }
    }
}

impl std::error::Error for TokenError {}
