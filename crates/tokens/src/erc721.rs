//! A simulated ERC-721 NFT collection contract.
//!
//! Each collection tracks token ownership, mints/burns/transfers tokens, and
//! emits the standard four-topic `Transfer` log for every movement — exactly
//! the signal the paper's dataset builder scans for. Collections can be
//! created as *non-compliant* (they emit ERC-721-shaped logs but do not
//! implement the ERC-165 `supportsInterface` probe), reproducing the 3.2% of
//! contracts the paper filters out in its compliance step.

use std::collections::HashMap;

use ethsim::{Address, Log, Timestamp};
use serde::{Deserialize, Serialize};

use crate::compliance;
use crate::error::TokenError;
use crate::nft::NftId;

/// A simulated ERC-721 collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Erc721Collection {
    /// Deployed contract address.
    pub address: Address,
    /// Collection name (e.g. "Meebits").
    pub name: String,
    /// Whether the contract implements ERC-165 `supportsInterface` correctly.
    pub erc165_compliant: bool,
    /// When the collection contract was created.
    pub created_at: Timestamp,
    owners: HashMap<u64, Address>,
    next_token_id: u64,
    minted: u64,
    burned: u64,
}

impl Erc721Collection {
    /// Create a collection bound to a deployed contract address.
    pub fn new(
        address: Address,
        name: impl Into<String>,
        erc165_compliant: bool,
        created_at: Timestamp,
    ) -> Self {
        Erc721Collection {
            address,
            name: name.into(),
            erc165_compliant,
            created_at,
            owners: HashMap::new(),
            next_token_id: 0,
            minted: 0,
            burned: 0,
        }
    }

    /// The bytecode this collection's contract account should hold on the
    /// chain; compliant collections embed the ERC-721 interface-id marker
    /// that the dataset builder probes for.
    pub fn bytecode(&self) -> Vec<u8> {
        if self.erc165_compliant {
            compliance::compliant_erc721_bytecode()
        } else {
            compliance::non_compliant_bytecode()
        }
    }

    /// Simulate the ERC-165 `supportsInterface(bytes4)` call.
    pub fn supports_interface(&self, interface_id: [u8; 4]) -> bool {
        self.erc165_compliant
            && (interface_id == compliance::ERC721_INTERFACE_ID
                || interface_id == compliance::ERC165_INTERFACE_ID)
    }

    /// The current owner of a token, if it exists and is not burned.
    pub fn owner_of(&self, token_id: u64) -> Option<Address> {
        self.owners.get(&token_id).copied()
    }

    /// Number of tokens minted so far (including burned ones).
    pub fn total_minted(&self) -> u64 {
        self.minted
    }

    /// Number of tokens currently existing (minted minus burned).
    pub fn total_supply(&self) -> u64 {
        self.minted - self.burned
    }

    /// Token ids currently owned by `account`.
    pub fn tokens_of(&self, account: Address) -> Vec<u64> {
        let mut tokens: Vec<u64> =
            self.owners.iter().filter(|(_, owner)| **owner == account).map(|(id, _)| *id).collect();
        tokens.sort_unstable();
        tokens
    }

    /// Mint a new token to `to`, returning its id and the mint transfer log
    /// (from the null address).
    pub fn mint(&mut self, to: Address) -> (NftId, Log) {
        let token_id = self.next_token_id;
        self.next_token_id += 1;
        self.minted += 1;
        self.owners.insert(token_id, to);
        (
            NftId::new(self.address, token_id),
            Log::erc721_transfer(self.address, Address::NULL, to, token_id),
        )
    }

    /// Transfer a token from its current owner to `to`, returning the log.
    ///
    /// # Errors
    ///
    /// Returns [`TokenError::UnknownToken`] if the token was never minted or
    /// has been burned, and [`TokenError::NotTokenOwner`] if `from` does not
    /// own it. Ownership is unchanged on error.
    pub fn transfer(
        &mut self,
        from: Address,
        to: Address,
        token_id: u64,
    ) -> Result<Log, TokenError> {
        match self.owners.get(&token_id) {
            None => Err(TokenError::UnknownToken { contract: self.address, token_id }),
            Some(owner) if *owner != from => Err(TokenError::NotTokenOwner {
                contract: self.address,
                token_id,
                claimed_owner: from,
                actual_owner: Some(*owner),
            }),
            Some(_) => {
                self.owners.insert(token_id, to);
                Ok(Log::erc721_transfer(self.address, from, to, token_id))
            }
        }
    }

    /// Burn a token (transfer to the null address), returning the log.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Erc721Collection::transfer`].
    pub fn burn(&mut self, from: Address, token_id: u64) -> Result<Log, TokenError> {
        match self.owners.get(&token_id) {
            None => Err(TokenError::UnknownToken { contract: self.address, token_id }),
            Some(owner) if *owner != from => Err(TokenError::NotTokenOwner {
                contract: self.address,
                token_id,
                claimed_owner: from,
                actual_owner: Some(*owner),
            }),
            Some(_) => {
                self.owners.remove(&token_id);
                self.burned += 1;
                Ok(Log::erc721_transfer(self.address, from, Address::NULL, token_id))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection(compliant: bool) -> Erc721Collection {
        Erc721Collection::new(
            Address::derived("meebits"),
            "Meebits",
            compliant,
            Timestamp::from_secs(1_620_000_000),
        )
    }

    #[test]
    fn mint_assigns_sequential_ids_and_ownership() {
        let mut c = collection(true);
        let alice = Address::derived("alice");
        let (id0, log0) = c.mint(alice);
        let (id1, _) = c.mint(alice);
        assert_eq!(id0.token_id, 0);
        assert_eq!(id1.token_id, 1);
        assert_eq!(c.owner_of(0), Some(alice));
        assert_eq!(c.total_minted(), 2);
        assert_eq!(c.total_supply(), 2);
        assert_eq!(c.tokens_of(alice), vec![0, 1]);
        let decoded = log0.decode_erc721_transfer().unwrap();
        assert_eq!(decoded.from, Address::NULL);
        assert_eq!(decoded.to, alice);
    }

    #[test]
    fn transfer_moves_ownership_and_validates_owner() {
        let mut c = collection(true);
        let alice = Address::derived("alice");
        let bob = Address::derived("bob");
        let (id, _) = c.mint(alice);
        let log = c.transfer(alice, bob, id.token_id).unwrap();
        assert_eq!(c.owner_of(id.token_id), Some(bob));
        assert_eq!(log.decode_erc721_transfer().unwrap().to, bob);

        // Alice no longer owns it.
        let err = c.transfer(alice, bob, id.token_id).unwrap_err();
        assert!(matches!(err, TokenError::NotTokenOwner { .. }));
        // Unknown token.
        assert!(matches!(c.transfer(bob, alice, 999), Err(TokenError::UnknownToken { .. })));
    }

    #[test]
    fn self_transfer_is_allowed() {
        // The paper's pattern 0 is an account trading with itself; the token
        // contract does not forbid it.
        let mut c = collection(true);
        let alice = Address::derived("alice");
        let (id, _) = c.mint(alice);
        let log = c.transfer(alice, alice, id.token_id).unwrap();
        let decoded = log.decode_erc721_transfer().unwrap();
        assert_eq!(decoded.from, decoded.to);
        assert_eq!(c.owner_of(id.token_id), Some(alice));
    }

    #[test]
    fn burn_removes_token() {
        let mut c = collection(true);
        let alice = Address::derived("alice");
        let (id, _) = c.mint(alice);
        let log = c.burn(alice, id.token_id).unwrap();
        assert!(log.decode_erc721_transfer().unwrap().to.is_null());
        assert_eq!(c.owner_of(id.token_id), None);
        assert_eq!(c.total_supply(), 0);
        assert_eq!(c.total_minted(), 1);
        assert!(matches!(c.burn(alice, id.token_id), Err(TokenError::UnknownToken { .. })));
    }

    #[test]
    fn compliance_probe() {
        let compliant = collection(true);
        let rogue = collection(false);
        assert!(compliant.supports_interface(compliance::ERC721_INTERFACE_ID));
        assert!(compliant.supports_interface(compliance::ERC165_INTERFACE_ID));
        assert!(!compliant.supports_interface([0xde, 0xad, 0xbe, 0xef]));
        assert!(!rogue.supports_interface(compliance::ERC721_INTERFACE_ID));
        assert!(compliance::supports_erc721_interface(&compliant.bytecode()));
        assert!(!compliance::supports_erc721_interface(&rogue.bytecode()));
    }
}
