//! A minimal simulated ERC-1155 multi-token contract.
//!
//! ERC-1155 transfers use a different event signature
//! (`TransferSingle(address,address,address,uint256,uint256)`), so they must
//! be *excluded* by the paper's ERC-721 collection step. The workload
//! generator deploys a few of these to verify the dataset builder's
//! signature-based filtering.

use std::collections::HashMap;

use ethsim::{Address, Log};
use serde::{Deserialize, Serialize};

use crate::error::TokenError;

/// A simulated ERC-1155 contract tracking `(token id, owner) → amount`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Erc1155Collection {
    /// Deployed contract address.
    pub address: Address,
    /// Collection name.
    pub name: String,
    balances: HashMap<(u64, Address), u128>,
}

impl Erc1155Collection {
    /// Create a collection bound to a deployed contract address.
    pub fn new(address: Address, name: impl Into<String>) -> Self {
        Erc1155Collection { address, name: name.into(), balances: HashMap::new() }
    }

    /// Balance of `account` for `token_id`.
    pub fn balance_of(&self, account: Address, token_id: u64) -> u128 {
        self.balances.get(&(token_id, account)).copied().unwrap_or(0)
    }

    /// Mint `amount` units of `token_id` to `to`.
    pub fn mint(&mut self, operator: Address, to: Address, token_id: u64, amount: u128) -> Log {
        *self.balances.entry((token_id, to)).or_insert(0) += amount;
        Log::erc1155_transfer_single(self.address, operator, Address::NULL, to, token_id, amount)
    }

    /// Transfer `amount` units of `token_id` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`TokenError::InsufficientTokenBalance`] if `from` holds fewer
    /// than `amount` units.
    pub fn transfer(
        &mut self,
        operator: Address,
        from: Address,
        to: Address,
        token_id: u64,
        amount: u128,
    ) -> Result<Log, TokenError> {
        let available = self.balance_of(from, token_id);
        if available < amount {
            return Err(TokenError::InsufficientTokenBalance {
                contract: self.address,
                account: from,
                needed: amount,
                available,
            });
        }
        *self.balances.get_mut(&(token_id, from)).expect("checked") -= amount;
        *self.balances.entry((token_id, to)).or_insert(0) += amount;
        Ok(Log::erc1155_transfer_single(self.address, operator, from, to, token_id, amount))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_and_transfer() {
        let mut c = Erc1155Collection::new(Address::derived("erc1155"), "GameItems");
        let op = Address::derived("operator");
        let alice = Address::derived("alice");
        let bob = Address::derived("bob");
        let log = c.mint(op, alice, 5, 10);
        assert!(log.is_erc1155_transfer());
        assert!(!log.is_erc721_transfer(), "must not look like an ERC-721 transfer");
        assert_eq!(c.balance_of(alice, 5), 10);
        c.transfer(op, alice, bob, 5, 4).unwrap();
        assert_eq!(c.balance_of(alice, 5), 6);
        assert_eq!(c.balance_of(bob, 5), 4);
        assert!(matches!(
            c.transfer(op, alice, bob, 5, 100),
            Err(TokenError::InsufficientTokenBalance { .. })
        ));
    }
}
