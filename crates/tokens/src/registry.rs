//! A registry of deployed token contracts.
//!
//! The registry owns the simulated contract state (ERC-20 balances, ERC-721
//! ownership) and keeps it in sync with the chain's account table: deploying
//! a token also deploys a contract account with the appropriate bytecode, so
//! the refinement step's "has bytecode" test and the compliance probe both
//! work against the chain alone.

use std::collections::HashMap;

use ethsim::{Address, Chain, Timestamp};
use serde::{Deserialize, Serialize};

use crate::erc1155::Erc1155Collection;
use crate::erc20::Erc20Token;
use crate::erc721::Erc721Collection;
use crate::error::TokenError;

/// All token contracts deployed in a simulation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TokenRegistry {
    erc20: HashMap<Address, Erc20Token>,
    erc721: HashMap<Address, Erc721Collection>,
    erc1155: HashMap<Address, Erc1155Collection>,
}

impl TokenRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TokenRegistry::default()
    }

    /// Deploy an ERC-20 token contract on the chain and register it.
    ///
    /// # Errors
    ///
    /// Returns [`TokenError::ContractExists`] if the derived address is
    /// already registered or taken on the chain.
    pub fn deploy_erc20(
        &mut self,
        chain: &mut Chain,
        seed: &str,
        symbol: &str,
        decimals: u32,
    ) -> Result<Address, TokenError> {
        let address = chain
            .deploy_contract(seed, crate::compliance::generic_contract_bytecode(0x20))
            .map_err(|_| TokenError::ContractExists(Address::derived(seed)))?;
        self.erc20.insert(address, Erc20Token::new(address, symbol, decimals));
        Ok(address)
    }

    /// Deploy an ERC-721 collection contract on the chain and register it.
    /// Compliant collections get bytecode embedding the ERC-721 interface
    /// marker; non-compliant ones do not.
    ///
    /// # Errors
    ///
    /// Returns [`TokenError::ContractExists`] on address collision.
    pub fn deploy_erc721(
        &mut self,
        chain: &mut Chain,
        seed: &str,
        name: &str,
        erc165_compliant: bool,
        created_at: Timestamp,
    ) -> Result<Address, TokenError> {
        let collection = Erc721Collection::new(Address::NULL, name, erc165_compliant, created_at);
        let code = collection.bytecode();
        let address = chain
            .deploy_contract(seed, code)
            .map_err(|_| TokenError::ContractExists(Address::derived(seed)))?;
        let mut collection = collection;
        collection.address = address;
        self.erc721.insert(address, collection);
        Ok(address)
    }

    /// Deploy an ERC-1155 contract on the chain and register it.
    ///
    /// # Errors
    ///
    /// Returns [`TokenError::ContractExists`] on address collision.
    pub fn deploy_erc1155(
        &mut self,
        chain: &mut Chain,
        seed: &str,
        name: &str,
    ) -> Result<Address, TokenError> {
        let address = chain
            .deploy_contract(seed, crate::compliance::generic_contract_bytecode(0x55))
            .map_err(|_| TokenError::ContractExists(Address::derived(seed)))?;
        self.erc1155.insert(address, Erc1155Collection::new(address, name));
        Ok(address)
    }

    /// Shared access to an ERC-20 token.
    pub fn erc20(&self, address: Address) -> Option<&Erc20Token> {
        self.erc20.get(&address)
    }

    /// Mutable access to an ERC-20 token.
    pub fn erc20_mut(&mut self, address: Address) -> Option<&mut Erc20Token> {
        self.erc20.get_mut(&address)
    }

    /// Shared access to an ERC-721 collection.
    pub fn erc721(&self, address: Address) -> Option<&Erc721Collection> {
        self.erc721.get(&address)
    }

    /// Mutable access to an ERC-721 collection.
    pub fn erc721_mut(&mut self, address: Address) -> Option<&mut Erc721Collection> {
        self.erc721.get_mut(&address)
    }

    /// Shared access to an ERC-1155 collection.
    pub fn erc1155(&self, address: Address) -> Option<&Erc1155Collection> {
        self.erc1155.get(&address)
    }

    /// Mutable access to an ERC-1155 collection.
    pub fn erc1155_mut(&mut self, address: Address) -> Option<&mut Erc1155Collection> {
        self.erc1155.get_mut(&address)
    }

    /// Iterate over all ERC-721 collections.
    pub fn erc721_collections(&self) -> impl Iterator<Item = &Erc721Collection> {
        self.erc721.values()
    }

    /// Iterate over all ERC-20 tokens.
    pub fn erc20_tokens(&self) -> impl Iterator<Item = &Erc20Token> {
        self.erc20.values()
    }

    /// Number of registered contracts of each kind `(erc20, erc721, erc1155)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.erc20.len(), self.erc721.len(), self.erc1155.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::Wei;

    #[test]
    fn deploying_registers_and_creates_chain_accounts() {
        let mut chain = Chain::new(Timestamp::from_secs(1_600_000_000));
        let mut registry = TokenRegistry::new();
        let weth = registry.deploy_erc20(&mut chain, "weth", "WETH", 18).unwrap();
        let now = chain.current_timestamp();
        let meebits = registry.deploy_erc721(&mut chain, "meebits", "Meebits", true, now).unwrap();
        let rogue = registry.deploy_erc721(&mut chain, "rogue", "Rogue", false, now).unwrap();
        let items = registry.deploy_erc1155(&mut chain, "items", "GameItems").unwrap();

        assert!(chain.is_contract(weth));
        assert!(chain.is_contract(meebits));
        assert!(chain.is_contract(items));
        assert_eq!(registry.counts(), (1, 2, 1));
        // Compliance is visible from the chain bytecode alone.
        assert!(crate::compliance::supports_erc721_interface(chain.code_at(meebits).unwrap()));
        assert!(!crate::compliance::supports_erc721_interface(chain.code_at(rogue).unwrap()));
        assert!(!crate::compliance::supports_erc721_interface(chain.code_at(weth).unwrap()));
    }

    #[test]
    fn duplicate_deploys_fail() {
        let mut chain = Chain::new(Timestamp::from_secs(1_600_000_000));
        let mut registry = TokenRegistry::new();
        registry.deploy_erc20(&mut chain, "weth", "WETH", 18).unwrap();
        assert!(matches!(
            registry.deploy_erc20(&mut chain, "weth", "WETH", 18),
            Err(TokenError::ContractExists(_))
        ));
    }

    #[test]
    fn registry_accessors_work() {
        let mut chain = Chain::new(Timestamp::from_secs(1_600_000_000));
        let mut registry = TokenRegistry::new();
        let weth = registry.deploy_erc20(&mut chain, "weth", "WETH", 18).unwrap();
        let now = chain.current_timestamp();
        let meebits = registry.deploy_erc721(&mut chain, "meebits", "Meebits", true, now).unwrap();
        let alice = chain.create_eoa("alice").unwrap();
        chain.fund(alice, Wei::from_eth(1.0));

        registry.erc20_mut(weth).unwrap().mint(alice, 100);
        assert_eq!(registry.erc20(weth).unwrap().balance_of(alice), 100);
        let (nft, _) = registry.erc721_mut(meebits).unwrap().mint(alice);
        assert_eq!(registry.erc721(meebits).unwrap().owner_of(nft.token_id), Some(alice));
        assert!(registry.erc20(Address::derived("missing")).is_none());
        assert_eq!(registry.erc721_collections().count(), 1);
        assert_eq!(registry.erc20_tokens().count(), 1);
    }
}
