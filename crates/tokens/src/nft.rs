//! NFT identity: the `(contract address, token id)` tuple the paper uses to
//! uniquely identify an NFT across the whole chain.

use ethsim::Address;
use serde::{Deserialize, Serialize};

/// A globally unique NFT identifier.
///
/// # Examples
///
/// ```
/// use ethsim::Address;
/// use tokens::NftId;
///
/// let id = NftId::new(Address::derived("meebits"), 42);
/// assert_eq!(id.token_id, 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NftId {
    /// The ERC-721 contract (collection) address.
    pub contract: Address,
    /// The token id within the collection.
    pub token_id: u64,
}

impl NftId {
    /// Create an NFT id from its collection address and token id.
    pub fn new(contract: Address, token_id: u64) -> Self {
        NftId { contract, token_id }
    }
}

impl std::fmt::Display for NftId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.contract, self.token_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nft_ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let contract = Address::derived("collection");
        let a = NftId::new(contract, 1);
        let b = NftId::new(contract, 2);
        assert!(a < b);
        let set: HashSet<NftId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_is_contract_hash_token() {
        let id = NftId::new(Address::derived("c"), 7);
        assert!(id.to_string().ends_with("#7"));
    }
}
