//! A simulated ERC-20 fungible token contract.
//!
//! The simulated contract tracks balances and produces the standard
//! `Transfer(address,address,uint256)` log (three topics, amount in data)
//! for every mint/transfer; higher layers attach those logs to the
//! [`ethsim::TxRequest`]s they submit to the chain.

use std::collections::HashMap;

use ethsim::{Address, Log};
use serde::{Deserialize, Serialize};

use crate::error::TokenError;

/// A simulated ERC-20 token.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Erc20Token {
    /// The deployed contract address.
    pub address: Address,
    /// Ticker symbol (e.g. "WETH", "LOOKS", "RARI").
    pub symbol: String,
    /// Number of decimal places of the base unit.
    pub decimals: u32,
    balances: HashMap<Address, u128>,
    total_supply: u128,
}

impl Erc20Token {
    /// Create a token bound to a deployed contract address.
    pub fn new(address: Address, symbol: impl Into<String>, decimals: u32) -> Self {
        Erc20Token {
            address,
            symbol: symbol.into(),
            decimals,
            balances: HashMap::new(),
            total_supply: 0,
        }
    }

    /// Convert a human amount (e.g. `2.5` tokens) into base units.
    pub fn units(&self, amount: f64) -> u128 {
        (amount * 10f64.powi(self.decimals as i32)).round() as u128
    }

    /// The balance of an account in base units.
    pub fn balance_of(&self, account: Address) -> u128 {
        self.balances.get(&account).copied().unwrap_or(0)
    }

    /// Total minted supply in base units.
    pub fn total_supply(&self) -> u128 {
        self.total_supply
    }

    /// Mint tokens to an account, producing the `Transfer(0x0 → to)` log.
    pub fn mint(&mut self, to: Address, amount: u128) -> Log {
        *self.balances.entry(to).or_insert(0) += amount;
        self.total_supply += amount;
        Log::erc20_transfer(self.address, Address::NULL, to, amount)
    }

    /// Transfer tokens between accounts, producing the standard transfer log.
    ///
    /// # Errors
    ///
    /// Returns [`TokenError::InsufficientTokenBalance`] if `from` does not
    /// hold `amount` base units; the balances are unchanged in that case.
    pub fn transfer(
        &mut self,
        from: Address,
        to: Address,
        amount: u128,
    ) -> Result<Log, TokenError> {
        let available = self.balance_of(from);
        if available < amount {
            return Err(TokenError::InsufficientTokenBalance {
                contract: self.address,
                account: from,
                needed: amount,
                available,
            });
        }
        *self.balances.get_mut(&from).expect("checked above") -= amount;
        *self.balances.entry(to).or_insert(0) += amount;
        Ok(Log::erc20_transfer(self.address, from, to, amount))
    }

    /// Number of accounts holding a non-zero balance.
    pub fn holder_count(&self) -> usize {
        self.balances.values().filter(|b| **b > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weth() -> Erc20Token {
        Erc20Token::new(Address::derived("weth-contract"), "WETH", 18)
    }

    #[test]
    fn mint_and_transfer_update_balances_and_emit_logs() {
        let mut token = weth();
        let alice = Address::derived("alice");
        let bob = Address::derived("bob");
        let mint_log = token.mint(alice, token.units(3.0));
        assert!(mint_log.is_erc20_transfer());
        assert_eq!(mint_log.decode_erc20_transfer().unwrap().from, Address::NULL);
        assert_eq!(token.balance_of(alice), token.units(3.0));
        assert_eq!(token.total_supply(), token.units(3.0));

        let log = token.transfer(alice, bob, token.units(1.0)).unwrap();
        let decoded = log.decode_erc20_transfer().unwrap();
        assert_eq!(decoded.from, alice);
        assert_eq!(decoded.to, bob);
        assert_eq!(decoded.amount, token.units(1.0));
        assert_eq!(token.balance_of(alice), token.units(2.0));
        assert_eq!(token.balance_of(bob), token.units(1.0));
        assert_eq!(token.holder_count(), 2);
    }

    #[test]
    fn transfer_more_than_balance_fails_without_change() {
        let mut token = weth();
        let alice = Address::derived("alice");
        let bob = Address::derived("bob");
        token.mint(alice, 100);
        let result = token.transfer(alice, bob, 200);
        assert!(matches!(result, Err(TokenError::InsufficientTokenBalance { .. })));
        assert_eq!(token.balance_of(alice), 100);
        assert_eq!(token.balance_of(bob), 0);
    }

    #[test]
    fn units_respect_decimals() {
        let token = Erc20Token::new(Address::derived("usdc"), "USDC", 6);
        assert_eq!(token.units(1.5), 1_500_000);
        assert_eq!(weth().units(0.5), 500_000_000_000_000_000);
    }

    #[test]
    fn unknown_account_has_zero_balance() {
        let token = weth();
        assert_eq!(token.balance_of(Address::derived("nobody")), 0);
        assert_eq!(token.holder_count(), 0);
    }
}
