//! Integration tests for the metrics registry: bucket boundaries, concurrent
//! recording, snapshot determinism, spans, and events.
//!
//! The registry is process-global and the test harness runs these in parallel
//! threads, so every test uses metric names unique to it and asserts on
//! deltas (or on metrics only it writes). The whole file also runs under the
//! `noop` feature (CI tests the workspace both ways); in that mode recording
//! is compiled out and every snapshot is empty, so assertions branch on
//! `obs::enabled()`.

use proptest::proptest;

#[test]
fn counter_accumulates_across_increments() {
    let counter = obs::counter("test.metrics.counter_accumulates");
    let before = obs::snapshot().counter("test.metrics.counter_accumulates").unwrap_or(0);
    counter.add(5);
    counter.incr();
    let after = obs::snapshot().counter("test.metrics.counter_accumulates").unwrap_or(0);
    if obs::enabled() {
        assert_eq!(after - before, 6);
    } else {
        assert!(obs::snapshot().metrics.is_empty());
    }
}

#[test]
fn gauge_is_last_write_wins() {
    let gauge = obs::gauge("test.metrics.gauge");
    gauge.set(41);
    gauge.add(2);
    gauge.add(-1);
    let value = obs::snapshot().gauge("test.metrics.gauge");
    if obs::enabled() {
        assert_eq!(value, Some(42));
        gauge.set(-7);
        assert_eq!(obs::snapshot().gauge("test.metrics.gauge"), Some(-7));
    } else {
        assert_eq!(value, None);
    }
}

/// Values landing exactly on bucket edges land in the documented buckets:
/// bucket 0 holds zeros, bucket `b` holds `[2^(b-1), 2^b - 1]`.
#[test]
fn histogram_bucket_boundaries_are_exact() {
    let hist = obs::histogram("test.metrics.bucket_boundaries");
    for value in [0u64, 1, 2, 3, 4, 7, 8] {
        hist.record(value);
    }
    let snap = obs::snapshot();
    if !obs::enabled() {
        assert!(snap.metrics.is_empty());
        return;
    }
    let summary = snap.histogram("test.metrics.bucket_boundaries").expect("histogram registered");
    assert_eq!(summary.count, 7);
    assert_eq!(summary.sum, 25);
    assert_eq!(summary.max, 8);
    // (inclusive upper bound, count): 0 | [1,1] | [2,3] | [4,7] | [8,15]
    assert_eq!(summary.buckets, vec![(0, 1), (1, 1), (3, 2), (7, 2), (15, 1)]);
}

/// Everything at or above 2^42 saturates into the single top bucket, whose
/// reported bound is `u64::MAX`; quantiles clamp to the observed max.
#[test]
fn histogram_top_bucket_saturates() {
    let hist = obs::histogram("test.metrics.top_bucket");
    hist.record(1u64 << 42);
    hist.record(1u64 << 50);
    hist.record(1u64 << 63);
    let snap = obs::snapshot();
    if !obs::enabled() {
        assert!(snap.metrics.is_empty());
        return;
    }
    let summary = snap.histogram("test.metrics.top_bucket").expect("histogram registered");
    assert_eq!(summary.count, 3);
    assert_eq!(summary.buckets, vec![(u64::MAX, 3)]);
    assert_eq!(summary.max, 1u64 << 63);
    assert_eq!(summary.sum, (1u64 << 42) + (1u64 << 50) + (1u64 << 63));
    // The top bucket's nominal bound is u64::MAX, but quantiles never report
    // beyond the observed maximum.
    assert_eq!(summary.quantile(0.5), 1u64 << 63);
    assert_eq!(summary.quantile(1.0), 1u64 << 63);
}

// N threads × M increments each ⇒ the counter total is exactly N·M and the
// histogram absorbed exactly N·M samples — nothing lost to shard merging or
// thread retirement (worker threads exit inside the case, so their shards go
// through the retire path every time).
proptest! {
    #[test]
    fn concurrent_recording_is_exact((threads, per_thread) in (2usize..6, 1u64..300)) {
        let counter_name = "test.metrics.concurrent_counter";
        let hist_name = "test.metrics.concurrent_hist";
        let before = obs::snapshot();
        let counter_before = before.counter(counter_name).unwrap_or(0);
        let (hist_count_before, hist_sum_before) = before
            .histogram(hist_name)
            .map(|h| (h.count, h.sum))
            .unwrap_or((0, 0));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let counter = obs::counter(counter_name);
                    let hist = obs::histogram(hist_name);
                    for _ in 0..per_thread {
                        counter.incr();
                        hist.record(3);
                    }
                });
            }
        });
        let after = obs::snapshot();
        if obs::enabled() {
            let expected = threads as u64 * per_thread;
            assert_eq!(after.counter(counter_name).unwrap_or(0) - counter_before, expected);
            let summary = after.histogram(hist_name).expect("histogram registered");
            assert_eq!(summary.count - hist_count_before, expected);
            assert_eq!(summary.sum - hist_sum_before, 3 * expected);
        } else {
            assert!(after.metrics.is_empty());
        }
    }
}

/// Two snapshots over unchanged state agree metric-for-metric, and snapshots
/// are always name-sorted with increasing versions.
#[test]
fn snapshots_are_deterministic_and_ordered() {
    // Register deliberately out of name order.
    obs::counter("test.determinism.zz").add(3);
    obs::counter("test.determinism.aa").add(1);
    obs::histogram("test.determinism.mm").record(9);
    obs::gauge("test.determinism.gg").set(-4);
    let first = obs::snapshot();
    let second = obs::snapshot();
    if !obs::enabled() {
        assert_eq!(first.metrics, second.metrics);
        assert!(first.metrics.is_empty());
        return;
    }
    assert!(second.version > first.version, "versions must increase");
    for snap in [&first, &second] {
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
    }
    // Other tests run concurrently and may touch their own metrics between
    // the two snapshots; this test's metrics are only written above, so they
    // must be bit-identical across the two runs.
    let ours = |snap: &obs::MetricsSnapshot| -> Vec<obs::Metric> {
        snap.metrics.iter().filter(|m| m.name.starts_with("test.determinism.")).cloned().collect()
    };
    assert_eq!(ours(&first), ours(&second));
    assert_eq!(ours(&first).len(), 4);
}

#[test]
fn span_guard_records_on_drop() {
    {
        let _span = obs::span("test.metrics.span_ns");
        std::hint::black_box(0u64);
    }
    let snap = obs::snapshot();
    if obs::enabled() {
        let summary = snap.histogram("test.metrics.span_ns").expect("span histogram");
        assert!(summary.count >= 1);
    } else {
        assert!(snap.metrics.is_empty());
    }
}

#[test]
fn macros_compile_and_record() {
    obs::counter!("test.metrics.macro_counter");
    obs::counter!("test.metrics.macro_counter", 4);
    obs::gauge!("test.metrics.macro_gauge", 17);
    obs::histogram!("test.metrics.macro_hist", 100);
    {
        let _span = obs::span!("test.metrics.macro_span_ns");
    }
    obs::event!("test.metrics.macro_event", "payload {}", 1);
    let snap = obs::snapshot();
    if obs::enabled() {
        assert_eq!(snap.counter("test.metrics.macro_counter"), Some(5));
        assert_eq!(snap.gauge("test.metrics.macro_gauge"), Some(17));
        assert_eq!(snap.histogram("test.metrics.macro_hist").map(|h| h.count), Some(1));
        assert!(snap.histogram("test.metrics.macro_span_ns").map(|h| h.count).unwrap_or(0) >= 1);
    } else {
        assert!(snap.metrics.is_empty());
    }
}

#[test]
fn events_are_sequenced_and_bounded() {
    obs::event!("test.metrics.event", "first");
    obs::event!("test.metrics.event", "second");
    obs::event!("test.metrics.event");
    let events: Vec<obs::Event> = obs::recent_events(usize::MAX)
        .into_iter()
        .filter(|event| event.name == "test.metrics.event")
        .collect();
    if !obs::enabled() {
        assert!(events.is_empty());
        return;
    }
    assert_eq!(events.len(), 3);
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    assert_eq!(events[0].detail, "first");
    assert_eq!(events[1].detail, "second");
    assert_eq!(events[2].detail, "");
    // A bounded request returns the most recent suffix.
    let limited = obs::recent_events(1);
    assert_eq!(limited.len(), 1);
}

#[test]
fn renderers_cover_every_metric_kind() {
    obs::counter("test.render.counter").add(2);
    obs::gauge("test.render.gauge").set(5);
    obs::histogram("test.render.hist_ns").record(1_500_000);
    let snap = obs::snapshot();
    let text = snap.render_text();
    let json = snap.render_json();
    if !obs::enabled() {
        assert!(json.starts_with("{\"version\":0,\"metrics\":["));
        return;
    }
    for name in ["test.render.counter", "test.render.gauge", "test.render.hist_ns"] {
        assert!(text.contains(name), "text render missing {name}");
        assert!(json.contains(&format!("\"name\":\"{name}\"")), "json render missing {name}");
    }
    // The `_ns` suffix switches the text renderer to duration formatting.
    assert!(text.contains("1.50ms"), "histogram mean should render as a duration:\n{text}");
    assert!(json.contains("\"kind\":\"histogram\",\"count\":1,\"sum\":1500000"));
}
