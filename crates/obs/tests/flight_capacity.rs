//! Flight-ring retention under concurrent writers, plus clear and incident
//! capture. Kept in its own integration-test binary — and therefore its own
//! process — because the ring is process-global and this test floods it; a
//! single test fn keeps the phases from racing each other.

#[test]
fn ring_keeps_exactly_the_last_capacity_records_under_concurrent_writers() {
    const WRITERS: usize = 8;
    // Two full laps of the ring, spread over the writers.
    let per_writer = 2 * obs::flight::FLIGHT_CAP / WRITERS;
    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            scope.spawn(move || {
                for i in 0..per_writer {
                    let mut span = obs::trace::span("flight.flood");
                    span.attr("writer", writer as u64);
                    span.attr("i", i as u64);
                }
            });
        }
    });

    let total = obs::flight::recorded_total();
    let dump = obs::flight::dump();
    if !obs::enabled() {
        assert_eq!(total, 0);
        assert!(dump.is_empty());
        assert!(obs::flight::last_incident().is_none());
        return;
    }
    assert_eq!(total, (WRITERS * per_writer) as u64);
    assert_eq!(dump.len(), obs::flight::FLIGHT_CAP);
    // After quiescence the ring holds exactly the last `FLIGHT_CAP` claims,
    // in claim order — no duplicates, no survivors from earlier laps.
    let seqs: Vec<u64> = dump.iter().map(|record| record.seq).collect();
    let expected: Vec<u64> = (total - obs::flight::FLIGHT_CAP as u64..total).collect();
    assert_eq!(seqs, expected);
    // Every thread's records made it in (the tail window spans all writers).
    for record in &dump {
        assert_eq!(record.name, "flight.flood");
        assert!(record.duration_ns < u64::MAX / 2, "durations are sane");
    }

    // Incident capture snapshots the ring with a reason.
    obs::flight::capture_incident("manual capture for test");
    let incident = obs::flight::last_incident().expect("incident stored");
    assert_eq!(incident.reason, "manual capture for test");
    assert_eq!(incident.spans.len(), obs::flight::FLIGHT_CAP);
    assert!(obs::flight::incident_count() >= 1);

    // Clear drops retained records but keeps sequence numbers monotonic.
    obs::flight::clear();
    assert!(obs::flight::dump().is_empty());
    assert_eq!(obs::flight::recorded_total(), total, "claim cursor keeps counting");
    {
        let _span = obs::trace::span("flight.after_clear");
    }
    let after = obs::flight::dump();
    assert_eq!(after.len(), 1);
    assert_eq!(after[0].name, "flight.after_clear");
    assert_eq!(after[0].seq, total, "first claim after the flood continues the sequence");
}
