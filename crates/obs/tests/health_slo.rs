//! The health/SLO watchdog: rule judgments against synthetic metrics, burn
//! counters across evaluations, incident capture on the healthy→unhealthy
//! edge, and the non-mutating report view. Own binary: the monitor (and
//! `set_slos`) is process-global, and a single test fn keeps the phases
//! ordered.

use obs::{SloRule, SloSpec};

fn spec(name: &str, rule: SloRule) -> SloSpec {
    SloSpec { name: name.to_string(), rule }
}

#[test]
fn slo_rules_burn_counters_and_incident_capture() {
    let lag = obs::gauge("health.test.lag");
    lag.set(10);
    obs::counter("health.test.hits").add(9);
    obs::counter("health.test.misses").add(1);
    obs::histogram("health.test.latency").record(100);

    obs::health::set_slos(vec![
        spec(
            "lag_ceiling",
            SloRule::GaugeAtMost { metric: "health.test.lag".to_string(), ceiling: 5 },
        ),
        spec(
            "hit_rate",
            SloRule::RatioAtLeast {
                part: "health.test.hits".to_string(),
                rest: "health.test.misses".to_string(),
                floor_bp: 5_000,
            },
        ),
        spec(
            "latency_p99",
            SloRule::HistogramQuantileAtMost {
                metric: "health.test.latency".to_string(),
                quantile: 0.99,
                ceiling: 1_000,
            },
        ),
        spec(
            "absent_metric",
            SloRule::GaugeAtLeast { metric: "health.test.never_recorded".to_string(), floor: 7 },
        ),
    ]);

    let incidents_before = obs::flight::incident_count();
    let report = obs::health::evaluate(&obs::snapshot());
    if !obs::enabled() {
        assert_eq!(report, obs::HealthReport::default());
        assert!(obs::health::report().verdicts.is_empty());
        return;
    }

    assert_eq!(report.evaluations, 1);
    assert_eq!(report.verdicts.len(), 4);
    assert!(!report.healthy(), "the lag objective is violated");
    let lag_verdict = &report.verdicts[0];
    assert_eq!(lag_verdict.slo, "lag_ceiling");
    assert!(!lag_verdict.healthy);
    assert_eq!((lag_verdict.observed, lag_verdict.threshold), (10, 5));
    assert_eq!((lag_verdict.burn, lag_verdict.total_burn), (1, 1));
    // 9 hits of 10 lookups = 9000 bp, above the 5000 bp floor.
    let hit_verdict = &report.verdicts[1];
    assert!(hit_verdict.healthy);
    assert_eq!(hit_verdict.observed, 9_000);
    assert!(report.verdicts[2].healthy, "p99 of one 100 ns sample is under 1 µs");
    let absent = &report.verdicts[3];
    assert!(absent.healthy, "an absent metric is no data, not a violation");
    assert_eq!(absent.observed, 0);

    // The healthy→unhealthy edge captured the flight ring once.
    assert_eq!(obs::flight::incident_count(), incidents_before + 1);
    let incident = obs::flight::last_incident().expect("captured on the edge");
    assert!(incident.reason.contains("lag_ceiling"), "reason names the objective");

    // Still violated: burn advances, but no new incident (no edge).
    let report = obs::health::evaluate(&obs::snapshot());
    assert_eq!((report.verdicts[0].burn, report.verdicts[0].total_burn), (2, 2));
    assert_eq!(obs::flight::incident_count(), incidents_before + 1);

    // Recovery: burn resets, total burn is retained.
    lag.set(0);
    let report = obs::health::evaluate(&obs::snapshot());
    assert!(report.verdicts[0].healthy);
    assert_eq!((report.verdicts[0].burn, report.verdicts[0].total_burn), (0, 2));
    assert!(report.healthy());

    // report() is a view: same verdicts, no burn advance.
    let view = obs::health::report();
    assert_eq!(view.verdicts, report.verdicts);
    assert_eq!(view.evaluations, 3);
    assert_eq!(obs::health::report().evaluations, 3, "reporting twice mutates nothing");

    // Re-violate, then relapse again: a fresh edge captures a fresh incident.
    lag.set(99);
    obs::health::evaluate(&obs::snapshot());
    assert_eq!(obs::flight::incident_count(), incidents_before + 2);

    // render_text carries the verdict table.
    let text = obs::health::report().render_text();
    assert!(text.contains("lag_ceiling"));
    assert!(text.contains("FAIL"));
}

#[test]
fn standard_catalog_names_the_pipeline_objectives() {
    let catalog = obs::health::standard_slos();
    let names: Vec<&str> = catalog.iter().map(|slo| slo.name.as_str()).collect();
    assert_eq!(names, ["epoch_latency", "watermark_lag", "cache_hit_rate", "chunk_reuse"]);
}
