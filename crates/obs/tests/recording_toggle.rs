//! The runtime recording switch. Kept in its own integration-test binary —
//! and therefore its own process — because `set_recording` is process-global
//! and flipping it would race with the other test binaries' recordings.

#[test]
fn set_recording_false_suppresses_all_record_paths() {
    let counter = obs::counter("toggle.counter");
    let hist = obs::histogram("toggle.hist");
    let gauge = obs::gauge("toggle.gauge");
    counter.add(2);
    hist.record(10);
    gauge.set(1);

    obs::set_recording(false);
    assert!(!obs::recording());
    counter.add(100);
    hist.record(100);
    gauge.set(100);
    obs::event!("toggle.event", "should not appear");
    {
        // A span opened while recording is off holds no timestamp.
        let _span = obs::span!("toggle.span_ns");
    }
    // Trace spans constructed while off are inert: no ids, no stack entry,
    // no flight record.
    let flight_before = obs::flight::recorded_total();
    {
        let mut trace_span = obs::trace::span("toggle.trace");
        trace_span.attr("ignored", 1);
        assert!(trace_span.context().is_none());
        assert!(obs::trace::current().is_none());
        let _adopted = obs::trace::adopt(trace_span.context());
    }
    assert_eq!(obs::flight::recorded_total(), flight_before);
    // Health evaluation while off is the empty report and mutates nothing.
    assert_eq!(obs::health::evaluate(&obs::snapshot()), obs::HealthReport::default());
    assert!(obs::health::report().verdicts.is_empty());
    obs::set_recording(true);

    counter.add(1);
    let snap = obs::snapshot();
    if obs::enabled() {
        assert_eq!(snap.counter("toggle.counter"), Some(3));
        let summary = snap.histogram("toggle.hist").expect("registered before toggle");
        assert_eq!((summary.count, summary.sum, summary.max), (1, 10, 10));
        assert_eq!(snap.gauge("toggle.gauge"), Some(1));
        assert_eq!(snap.histogram("toggle.span_ns").map(|h| h.count), Some(0));
        assert!(obs::recent_events(usize::MAX).is_empty());
    } else {
        assert!(snap.metrics.is_empty());
        assert!(!obs::recording(), "noop builds never record");
    }
}
