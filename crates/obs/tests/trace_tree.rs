//! Span-tree construction: parent links through the per-thread stack,
//! explicit cross-thread adoption, attributes, and the Chrome trace-event
//! export shape.
//!
//! The flight ring is process-global and the harness runs tests in parallel
//! threads, so every test uses span names unique to it and filters the dump
//! by name. The file also runs under the `noop` feature, where every dump is
//! empty; assertions branch on `obs::enabled()`.

use obs::SpanRecord;

fn by_name(records: &[SpanRecord], name: &str) -> Vec<SpanRecord> {
    records.iter().filter(|record| record.name == name).cloned().collect()
}

#[test]
fn nested_spans_link_parent_ids_on_one_thread() {
    {
        let root = obs::trace::span("tree.outer");
        assert_eq!(obs::trace::current(), root.context());
        {
            let mut child = obs::trace::span("tree.inner");
            child.attr("answer", 42);
            {
                let _leaf = obs::trace::span("tree.leaf");
            }
        }
    }
    let dump = obs::flight::dump();
    if !obs::enabled() {
        assert!(dump.is_empty(), "noop builds record no spans");
        assert_eq!(obs::flight::recorded_total(), 0);
        return;
    }
    let root = by_name(&dump, "tree.outer").pop().expect("root recorded");
    let child = by_name(&dump, "tree.inner").pop().expect("child recorded");
    let leaf = by_name(&dump, "tree.leaf").pop().expect("leaf recorded");
    assert_eq!(root.parent, None, "outermost span is a root");
    assert_eq!(child.parent, Some(root.span));
    assert_eq!(leaf.parent, Some(child.span));
    assert_eq!(child.trace, root.trace);
    assert_eq!(leaf.trace, root.trace);
    assert_eq!(child.attrs, vec![("answer", 42)]);
    // Children complete before their parent (guard drop order), and a child
    // never outlives its parent's window.
    assert!(leaf.seq < child.seq && child.seq < root.seq);
    for (inner, outer) in [(&leaf, &child), (&child, &root)] {
        assert!(inner.start_ns >= outer.start_ns);
        assert!(
            inner.start_ns + inner.duration_ns <= outer.start_ns + outer.duration_ns,
            "child window must nest inside the parent window"
        );
    }
}

#[test]
fn sibling_roots_get_distinct_traces() {
    {
        let _a = obs::trace::span("tree.sibling_a");
    }
    {
        let _b = obs::trace::span("tree.sibling_b");
    }
    let dump = obs::flight::dump();
    if !obs::enabled() {
        return;
    }
    let a = by_name(&dump, "tree.sibling_a").pop().expect("recorded");
    let b = by_name(&dump, "tree.sibling_b").pop().expect("recorded");
    assert_ne!(a.trace, b.trace, "consecutive roots are separate operations");
    assert_ne!(a.span, b.span);
}

#[test]
fn adopted_context_parents_spans_across_threads() {
    let root = obs::trace::span("tree.adopt_root");
    let ctx = root.context();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            assert_eq!(obs::trace::current(), None, "fresh thread starts with an empty stack");
            let _guard = obs::trace::adopt(ctx);
            assert_eq!(obs::trace::current(), ctx);
            let _child = obs::trace::span("tree.adopt_child");
        });
    });
    drop(root);
    let dump = obs::flight::dump();
    if !obs::enabled() {
        return;
    }
    let root = by_name(&dump, "tree.adopt_root").pop().expect("recorded");
    let child = by_name(&dump, "tree.adopt_child").pop().expect("recorded");
    assert_eq!(child.parent, Some(root.span), "worker span parents under the adopted span");
    assert_eq!(child.trace, root.trace);
    assert_ne!(child.thread, root.thread, "recorded on different timeline lanes");
}

#[test]
fn adopting_none_is_inert() {
    {
        let _guard = obs::trace::adopt(None);
        assert_eq!(obs::trace::current(), None);
        let root = obs::trace::span("tree.adopt_none_root");
        if obs::enabled() {
            assert!(root.context().is_some(), "span under an inert guard is a fresh root");
        }
    }
    if obs::enabled() {
        let dump = obs::flight::dump();
        let root = by_name(&dump, "tree.adopt_none_root").pop().expect("recorded");
        assert_eq!(root.parent, None);
    }
}

#[test]
fn chrome_export_is_well_formed_and_carries_span_args() {
    {
        let mut root = obs::trace::span("tree.export_root");
        root.attr("epoch", 3);
        let _child = obs::trace::span("tree.export \"quoted\\name\"");
    }
    let json = obs::trace::export_chrome_json();
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    if !obs::enabled() {
        assert_eq!(json, "{\"traceEvents\":[]}");
        return;
    }
    assert!(json.contains("\"name\":\"tree.export_root\""));
    assert!(json.contains("\"epoch\":3"));
    assert!(json.contains("\"ph\":\"X\""));
    // Names are JSON-escaped, not emitted raw.
    assert!(json.contains("tree.export \\\"quoted\\\\name\\\""));
}
