//! Deterministic point-in-time views of the registry.
//!
//! [`snapshot`] merges every live thread shard plus the retired shard into a
//! [`MetricsSnapshot`]: metrics sorted by name, stamped with a monotonically
//! increasing version. Two snapshots taken with no recording in between are
//! identical except for the version — the determinism test pins this.

use std::fmt::Write as _;
use std::sync::atomic::Ordering::Relaxed;

use crate::registry::{
    bucket_upper_bound, registry, MetricKind, Shard, BUCKETS, MAX_OFFSET, SUM_OFFSET,
};

/// A merged, name-sorted view of every registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonically increasing per-process snapshot version; two snapshots
    /// can be ordered by comparing versions.
    pub version: u64,
    /// All metrics, sorted by name.
    pub metrics: Vec<Metric>,
}

/// One named metric inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// The registered name, e.g. `ingest.decode_ns`.
    pub name: String,
    /// The merged value.
    pub value: MetricValue,
}

/// The merged value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Sum of all increments across threads.
    Counter(u64),
    /// Last value stored.
    Gauge(i64),
    /// Merged distribution.
    Histogram(HistogramSummary),
}

/// Merged histogram state: total count/sum/max plus the non-empty buckets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// `(inclusive upper bound, sample count)` for each non-empty bucket, in
    /// ascending bound order. The top bucket's bound is `u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSummary {
    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`0.0..=1.0`): the upper bound of the bucket in
    /// which the q-th sample falls, clamped to the observed max so the top
    /// bucket does not report `u64::MAX`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(bound, bucket_count) in &self.buckets {
            cumulative += bucket_count;
            if cumulative >= target {
                return bound.min(self.max);
            }
        }
        self.max
    }
}

impl MetricsSnapshot {
    /// Look up a metric by exact name (the metrics vec is sorted, so this is
    /// a binary search).
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|metric| metric.name.as_str().cmp(name))
            .ok()
            .map(|index| &self.metrics[index].value)
    }

    /// Counter value by name, if the name is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name, if the name is a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram summary by name, if the name is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Render as an aligned, human-readable table. Histogram metrics whose
    /// names end in `_ns` are formatted as durations.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== metrics snapshot v{} ({} metrics) ==",
            self.version,
            self.metrics.len()
        );
        let width = self.metrics.iter().map(|m| m.name.len()).max().unwrap_or(0).max(8);
        for metric in &self.metrics {
            match &metric.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "counter    {:<width$} {v}", metric.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "gauge      {:<width$} {v}", metric.name);
                }
                MetricValue::Histogram(h) => {
                    let as_time = metric.name.ends_with("_ns");
                    let fmt = |v: u64| {
                        if as_time {
                            fmt_ns(v)
                        } else {
                            v.to_string()
                        }
                    };
                    let mean =
                        if as_time { fmt_ns(h.mean() as u64) } else { format!("{:.1}", h.mean()) };
                    let _ = writeln!(
                        out,
                        "histogram  {:<width$} count {:<8} mean {:<10} p50 {:<10} p99 {:<10} max {}",
                        metric.name,
                        h.count,
                        mean,
                        fmt(h.quantile(0.50)),
                        fmt(h.quantile(0.99)),
                        fmt(h.max),
                    );
                }
            }
        }
        out
    }

    /// Render as a deterministic single-line JSON document (hand-rolled — the
    /// workspace builds offline, so there is no serde_json).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"version\":{},\"metrics\":[", self.version);
        for (index, metric) in self.metrics.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",", escape_json(&metric.name));
            match &metric.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"kind\":\"counter\",\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"kind\":\"gauge\",\"value\":{v}}}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
                        h.count,
                        h.sum,
                        h.max,
                        h.quantile(0.50),
                        h.quantile(0.99),
                    );
                    for (bucket_index, (bound, count)) in h.buckets.iter().enumerate() {
                        if bucket_index > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{bound},{count}]");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Take a deterministic snapshot of every registered metric: merge all live
/// thread shards plus the retired shard, sort by name, stamp a fresh version.
/// Under the `noop` feature this returns the empty snapshot (version 0).
pub fn snapshot() -> MetricsSnapshot {
    if !crate::enabled() {
        return MetricsSnapshot { version: 0, metrics: Vec::new() };
    }
    let reg = registry();
    let version = reg.version.fetch_add(1, Relaxed) + 1;
    let inner = reg.lock();
    let mut shards: Vec<&Shard> = inner.shards.iter().map(|s| s.as_ref()).collect();
    shards.push(&reg.retired);
    let sum_cell =
        |slot: usize| -> u64 { shards.iter().map(|shard| shard.cells[slot].load(Relaxed)).sum() };
    let max_cell = |slot: usize| -> u64 {
        shards.iter().map(|shard| shard.cells[slot].load(Relaxed)).max().unwrap_or(0)
    };
    let mut metrics: Vec<Metric> = inner
        .defs
        .iter()
        .map(|def| {
            let value = match def.kind {
                MetricKind::Counter => MetricValue::Counter(sum_cell(def.slot)),
                MetricKind::Gauge => MetricValue::Gauge(inner.gauges[def.slot].load(Relaxed)),
                MetricKind::Histogram => {
                    let mut summary = HistogramSummary {
                        count: 0,
                        sum: sum_cell(def.slot + SUM_OFFSET),
                        max: max_cell(def.slot + MAX_OFFSET),
                        buckets: Vec::new(),
                    };
                    for bucket in 0..BUCKETS {
                        let count = sum_cell(def.slot + bucket);
                        if count > 0 {
                            summary.count += count;
                            summary.buckets.push((bucket_upper_bound(bucket), count));
                        }
                    }
                    MetricValue::Histogram(summary)
                }
            };
            Metric { name: def.name.clone(), value }
        })
        .collect();
    drop(inner);
    metrics.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot { version, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_walk_cumulative_bucket_counts() {
        let summary = HistogramSummary {
            count: 10,
            sum: 100,
            max: 60,
            buckets: vec![(7, 4), (15, 3), (63, 3)],
        };
        assert_eq!(summary.quantile(0.0), 7);
        assert_eq!(summary.quantile(0.4), 7);
        assert_eq!(summary.quantile(0.5), 15);
        assert_eq!(summary.quantile(0.7), 15);
        assert_eq!(summary.quantile(0.71), 60); // clamped from bound 63 to max
        assert_eq!(summary.quantile(1.0), 60);
        assert!((summary.mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let summary = HistogramSummary::default();
        assert_eq!(summary.quantile(0.5), 0);
        assert_eq!(summary.mean(), 0.0);
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn ns_formatting_picks_the_right_unit() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_250_000), "2.25ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
