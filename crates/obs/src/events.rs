//! Bounded recent-event log: each thread owns a small ring buffer; exited
//! threads fold their ring into a shared retired ring. Intended for coarse
//! milestones (an epoch ingested, a snapshot published) — never per-query.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// Capacity of each per-thread ring.
const THREAD_CAP: usize = 128;
/// Capacity of the shared ring that absorbs exited threads' events.
const RETIRED_CAP: usize = 512;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Process-wide sequence number; totally orders events across threads.
    pub seq: u64,
    /// Event name, e.g. `stream.epoch`. Usually a static literal via
    /// [`crate::event!`]; dynamically built via [`crate::event_dynamic`].
    pub name: String,
    /// Free-form detail string (may be empty).
    pub detail: String,
}

struct Ring {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring { cap, buf: Mutex::new(VecDeque::with_capacity(cap)) }
    }

    fn push(&self, event: Event) {
        let mut buf = self.buf.lock().expect("obs event ring poisoned");
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(event);
    }

    fn entries(&self) -> Vec<Event> {
        self.buf.lock().expect("obs event ring poisoned").iter().cloned().collect()
    }
}

struct Hub {
    rings: Mutex<Vec<Arc<Ring>>>,
    retired: Ring,
    seq: AtomicU64,
}

fn hub() -> &'static Hub {
    static HUB: OnceLock<Hub> = OnceLock::new();
    HUB.get_or_init(|| Hub {
        rings: Mutex::new(Vec::new()),
        retired: Ring::new(RETIRED_CAP),
        seq: AtomicU64::new(0),
    })
}

struct LocalRing {
    ring: Arc<Ring>,
}

impl Drop for LocalRing {
    fn drop(&mut self) {
        let hub = hub();
        hub.rings
            .lock()
            .expect("obs event hub poisoned")
            .retain(|live| !Arc::ptr_eq(live, &self.ring));
        for event in self.ring.entries() {
            hub.retired.push(event);
        }
    }
}

thread_local! {
    static LOCAL: LocalRing = {
        let ring = Arc::new(Ring::new(THREAD_CAP));
        hub().rings.lock().expect("obs event hub poisoned").push(Arc::clone(&ring));
        LocalRing { ring }
    };
}

pub(crate) fn record(name: String, detail: String) {
    if !crate::recording() {
        return;
    }
    let hub = hub();
    let event = Event { seq: hub.seq.fetch_add(1, Relaxed), name, detail };
    match LOCAL.try_with(|local| Arc::clone(&local.ring)) {
        Ok(ring) => ring.push(event),
        // Thread-local teardown already ran: record into the retired ring.
        Err(_) => hub.retired.push(event),
    }
}

/// The most recent `limit` events across all threads, ordered by sequence
/// number (oldest first).
pub fn recent_events(limit: usize) -> Vec<Event> {
    if !crate::enabled() {
        return Vec::new();
    }
    let hub = hub();
    let mut events: Vec<Event> = hub
        .rings
        .lock()
        .expect("obs event hub poisoned")
        .iter()
        .flat_map(|ring| ring.entries())
        .collect();
    events.extend(hub.retired.entries());
    events.sort_by_key(|event| event.seq);
    if events.len() > limit {
        events.drain(..events.len() - limit);
    }
    events
}
