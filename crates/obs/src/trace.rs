//! Causal tracing: span trees with parent links, per-thread span stacks, and
//! cross-thread context propagation, exported as Chrome trace-event JSON.
//!
//! Unlike [`crate::span!`] (which feeds an aggregate latency histogram), a
//! trace span is an *individual* record: it carries a [`TraceId`] shared by
//! every span of one logical operation (one ingested epoch), its own
//! [`SpanId`], a link to its parent span, wall-clock start/duration, and a
//! handful of cheap integer attributes. Completed spans land in the
//! [`crate::flight`] ring, from which [`export_chrome_json`] renders a
//! Perfetto-loadable timeline.
//!
//! Parenting is implicit through a per-thread stack: the innermost open span
//! on the current thread is the parent of the next one opened. Fan-out
//! boundaries (thread pools) propagate context explicitly — capture
//! [`current`] before spawning and [`adopt`] it inside the worker, and spans
//! opened by the worker become children of the fan-out span.
//!
//! Both escape hatches hold: under the `noop` feature every function here is
//! inert, and with [`crate::set_recording`] off, guards are constructed empty
//! and record nothing.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;
use std::time::Instant;

use crate::flight;

/// Identifies one logical operation (e.g. one ingested epoch); shared by
/// every span in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within the process; never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The propagation unit: which trace we are in and which span is innermost.
/// `Copy`, so it crosses thread boundaries by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The operation this context belongs to.
    pub trace: TraceId,
    /// The innermost open span — parent of any span opened under this context.
    pub span: SpanId,
}

/// A completed span, as stored in the flight ring and exported to Chrome
/// trace JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Claim index in the flight ring; totally orders completions.
    pub seq: u64,
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span id, `None` for a root span.
    pub parent: Option<SpanId>,
    /// Span name, e.g. `stream.epoch`.
    pub name: String,
    /// Dense per-process thread index (first trace-active thread is 0).
    pub thread: u64,
    /// Nanoseconds since the process trace epoch at span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// Cheap structured attributes (epoch, dirty-set size, shard id, ...).
    pub attrs: Vec<(&'static str, u64)>,
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

impl TraceId {
    fn next() -> TraceId {
        TraceId(NEXT_TRACE.fetch_add(1, Relaxed))
    }
}

impl SpanId {
    fn next() -> SpanId {
        SpanId(NEXT_SPAN.fetch_add(1, Relaxed))
    }
}

/// Nanoseconds since the process-wide trace epoch (first use). A single
/// shared `Instant` origin keeps timestamps comparable across threads, so
/// parent/child containment holds in the exported timeline.
pub(crate) fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Dense thread index for timeline lanes (stable for the thread's lifetime).
fn thread_index() -> u64 {
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Relaxed);
    }
    TID.try_with(|t| *t).unwrap_or(u64::MAX)
}

thread_local! {
    /// Innermost-last stack of open contexts on this thread.
    static STACK: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

fn stack_push(ctx: TraceContext) {
    let _ = STACK.try_with(|stack| stack.borrow_mut().push(ctx));
}

/// Remove `span` from this thread's stack, searching from the top so
/// out-of-order guard drops degrade gracefully instead of corrupting the
/// stack.
fn stack_remove(span: SpanId) {
    let _ = STACK.try_with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|ctx| ctx.span == span) {
            stack.remove(pos);
        }
    });
}

/// The current trace context on this thread, if a span is open (or adopted).
/// Capture this before a fan-out and [`adopt`] it in each worker.
pub fn current() -> Option<TraceContext> {
    if !crate::recording() {
        return None;
    }
    STACK.try_with(|stack| stack.borrow().last().copied()).unwrap_or(None)
}

/// An open trace span; completes (into the flight ring) on drop.
///
/// While recording is off at construction the guard is inert: no ids are
/// allocated, nothing is pushed on the stack, drop is free.
#[must_use = "a trace span completes on drop; binding it to `_` drops it immediately"]
pub struct TraceSpan {
    inner: Option<SpanInner>,
}

struct SpanInner {
    ctx: TraceContext,
    parent: Option<SpanId>,
    name: String,
    start_ns: u64,
    attrs: Vec<(&'static str, u64)>,
}

impl TraceSpan {
    fn open(name: String) -> TraceSpan {
        if !crate::recording() {
            return TraceSpan { inner: None };
        }
        let parent = STACK.try_with(|stack| stack.borrow().last().copied()).unwrap_or(None);
        let trace = parent.map(|ctx| ctx.trace).unwrap_or_else(TraceId::next);
        let ctx = TraceContext { trace, span: SpanId::next() };
        stack_push(ctx);
        TraceSpan {
            inner: Some(SpanInner {
                ctx,
                parent: parent.map(|ctx| ctx.span),
                name,
                start_ns: now_ns(),
                attrs: Vec::new(),
            }),
        }
    }

    /// Attach a structured attribute. Cheap (`&'static str` key, integer
    /// value); a no-op on an inert guard.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.attrs.push((key, value));
        }
    }

    /// This span's context, for explicit propagation into workers.
    pub fn context(&self) -> Option<TraceContext> {
        self.inner.as_ref().map(|inner| inner.ctx)
    }

    /// Close the span early, before scope end.
    pub fn finish(self) {}
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            stack_remove(inner.ctx.span);
            let end_ns = now_ns();
            flight::record(SpanRecord {
                seq: 0, // assigned by the flight ring
                trace: inner.ctx.trace,
                span: inner.ctx.span,
                parent: inner.parent,
                name: inner.name,
                thread: thread_index(),
                start_ns: inner.start_ns,
                duration_ns: end_ns.saturating_sub(inner.start_ns),
                attrs: inner.attrs,
            });
        }
    }
}

/// Open a trace span with a static name: `let mut s = trace::span("stream.epoch");`.
/// A root span (empty stack) starts a fresh [`TraceId`]; otherwise the span
/// becomes a child of the innermost open span on this thread.
pub fn span(name: &'static str) -> TraceSpan {
    if !crate::recording() {
        return TraceSpan { inner: None };
    }
    TraceSpan::open(name.to_string())
}

/// Open a trace span with a dynamically built name, e.g.
/// `trace::span_dynamic(&format!("stage.{name}"))`.
pub fn span_dynamic(name: &str) -> TraceSpan {
    if !crate::recording() {
        return TraceSpan { inner: None };
    }
    TraceSpan::open(name.to_string())
}

/// A guard that makes an inherited [`TraceContext`] current on this thread
/// for its lifetime — the worker half of cross-thread propagation.
#[must_use = "an adopted context is only current while the guard lives"]
pub struct ContextGuard {
    ctx: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            stack_remove(ctx.span);
        }
    }
}

/// Adopt a context captured (via [`current`]) on another thread: spans opened
/// while the guard lives become children of `ctx.span` and share its trace.
/// `None` (or recording off) yields an inert guard, so call sites don't
/// branch.
pub fn adopt(ctx: Option<TraceContext>) -> ContextGuard {
    if !crate::recording() {
        return ContextGuard { ctx: None };
    }
    if let Some(ctx) = ctx {
        stack_push(ctx);
        ContextGuard { ctx: Some(ctx) }
    } else {
        ContextGuard { ctx: None }
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Microseconds with nanosecond precision, formatted without going through
/// floating point so the output is deterministic.
fn push_micros(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

/// Render the flight ring as Chrome trace-event JSON (the
/// `{"traceEvents": [...]}` envelope with `ph:"X"` complete events), loadable
/// in Perfetto or `chrome://tracing`. Each event's `args` carries the trace,
/// span, and parent ids plus the span's attributes. Empty (but well-formed)
/// under `noop` or when nothing has been recorded.
pub fn export_chrome_json() -> String {
    let records = flight::dump();
    let mut out = String::with_capacity(records.len() * 192 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_string(&mut out, &record.name);
        out.push_str(",\"cat\":\"washtrade\",\"ph\":\"X\",\"ts\":");
        push_micros(&mut out, record.start_ns);
        out.push_str(",\"dur\":");
        push_micros(&mut out, record.duration_ns);
        out.push_str(&format!(",\"pid\":1,\"tid\":{}", record.thread));
        out.push_str(",\"args\":{");
        out.push_str(&format!(
            "\"trace\":{},\"span\":{},\"parent\":{},\"seq\":{}",
            record.trace.0,
            record.span.0,
            record.parent.map(|p| p.0).unwrap_or(0),
            record.seq,
        ));
        for (key, value) in &record.attrs {
            out.push(',');
            push_json_string(&mut out, key);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}
