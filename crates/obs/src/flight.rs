//! Flight recorder: an always-on bounded ring of completed trace spans — the
//! "what happened in the last few seconds" answer, dumped on demand, on
//! panic, or when a health rule fires.
//!
//! The ring generalizes the event ring in [`crate::events`]: writers claim a
//! monotonically increasing index with one atomic `fetch_add`, then store the
//! record into slot `index % capacity` behind a per-slot mutex (uncontended
//! except when two writers race a full lap apart). A slot only accepts a
//! record newer than the one it holds, so after writers quiesce the ring
//! contains exactly the last `capacity` completions in claim order.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

use crate::trace::SpanRecord;

/// Number of completed spans the ring retains.
pub const FLIGHT_CAP: usize = 4096;

struct Recorder {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    cursor: AtomicU64,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        slots: (0..FLIGHT_CAP).map(|_| Mutex::new(None)).collect(),
        cursor: AtomicU64::new(0),
    })
}

/// Append a completed span. Called from [`crate::trace`] guard drops.
pub(crate) fn record(mut record: SpanRecord) {
    if !crate::recording() {
        return;
    }
    let recorder = recorder();
    let seq = recorder.cursor.fetch_add(1, Relaxed);
    record.seq = seq;
    let mut slot =
        recorder.slots[(seq % FLIGHT_CAP as u64) as usize].lock().expect("flight slot poisoned");
    // A writer that stalled between claim and store must not clobber a record
    // from a later lap; newest claim wins.
    match slot.as_ref() {
        Some(existing) if existing.seq > seq => {}
        _ => *slot = Some(record),
    }
}

/// Total spans ever recorded (including ones the ring has since evicted).
pub fn recorded_total() -> u64 {
    if !crate::enabled() {
        return 0;
    }
    recorder().cursor.load(Relaxed)
}

/// The retained spans, oldest first (by claim order). After writers quiesce
/// this is exactly the last [`FLIGHT_CAP`] completions.
pub fn dump() -> Vec<SpanRecord> {
    if !crate::enabled() {
        return Vec::new();
    }
    let recorder = recorder();
    let mut records: Vec<SpanRecord> = recorder
        .slots
        .iter()
        .filter_map(|slot| slot.lock().expect("flight slot poisoned").clone())
        .collect();
    records.sort_by_key(|record| record.seq);
    records
}

/// Drop every retained span (the claim cursor keeps counting, so sequence
/// numbers stay process-unique). Useful for scoping a dump to one run.
pub fn clear() {
    if !crate::enabled() {
        return;
    }
    for slot in &recorder().slots {
        *slot.lock().expect("flight slot poisoned") = None;
    }
}

/// A flight-ring capture taken when a health rule fired (or on explicit
/// request): the violation that tripped it plus the spans in flight.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Monotonic incident number (1-based).
    pub number: u64,
    /// Why the capture was taken, e.g. `slo epoch_latency violated`.
    pub reason: String,
    /// The flight ring at capture time, oldest span first.
    pub spans: Vec<SpanRecord>,
}

struct IncidentStore {
    last: Mutex<Option<Incident>>,
    count: AtomicU64,
}

fn incidents() -> &'static IncidentStore {
    static STORE: OnceLock<IncidentStore> = OnceLock::new();
    STORE.get_or_init(|| IncidentStore { last: Mutex::new(None), count: AtomicU64::new(0) })
}

/// Capture the flight ring as an [`Incident`]. Called by the health monitor
/// when a rule newly fires; callable directly for manual captures.
pub fn capture_incident(reason: &str) {
    if !crate::recording() {
        return;
    }
    let store = incidents();
    let number = store.count.fetch_add(1, Relaxed) + 1;
    let incident = Incident { number, reason: reason.to_string(), spans: dump() };
    *store.last.lock().expect("incident store poisoned") = Some(incident);
}

/// The most recent incident capture, if any.
pub fn last_incident() -> Option<Incident> {
    if !crate::enabled() {
        return None;
    }
    incidents().last.lock().expect("incident store poisoned").clone()
}

/// How many incidents have been captured since process start.
pub fn incident_count() -> u64 {
    if !crate::enabled() {
        return 0;
    }
    incidents().count.load(Relaxed)
}

/// Install a panic hook (once; idempotent) that dumps the tail of the flight
/// ring to stderr before delegating to the previous hook, so a crashing run
/// leaves its last spans on the console.
pub fn install_panic_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    if !crate::enabled() {
        return;
    }
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let records = dump();
            let tail = records.len().saturating_sub(24);
            eprintln!("--- obs flight recorder: last {} span(s) ---", records.len() - tail);
            for record in &records[tail..] {
                eprintln!(
                    "  #{seq} {name} trace={trace} span={span} parent={parent} \
                     thread={thread} dur={dur}ns",
                    seq = record.seq,
                    name = record.name,
                    trace = record.trace.0,
                    span = record.span.0,
                    parent = record.parent.map(|p| p.0).unwrap_or(0),
                    thread = record.thread,
                    dur = record.duration_ns,
                );
            }
            previous(info);
        }));
    });
}
