//! The process-wide metric registry and its lock-free recording path.
//!
//! Layout: every counter and histogram is assigned a fixed *slot range* in a
//! flat cell array at registration time. Each thread owns a private `Shard`
//! (one `AtomicU64` per cell) reached through a `thread_local!`; records are
//! relaxed atomics on that private shard, so threads never contend. Snapshots
//! sum the live shards plus a `retired` shard that absorbs the cells of
//! exited threads (merged by the thread-local's `Drop`). Gauges are
//! last-write-wins and low-frequency, so they live in single shared cells
//! instead of shards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Total cells available per shard. 4096 cells ≈ 32 KiB per thread; a
/// histogram costs [`BUCKETS`]` + 2` cells, so this comfortably fits hundreds
/// of counters plus dozens of histograms. Registration panics on exhaustion
/// rather than silently dropping metrics.
pub const MAX_SLOTS: usize = 4096;

/// Number of log₂ buckets per histogram. Bucket 0 holds exact zeros, bucket
/// `b` holds values in `[2^(b-1), 2^b)`, and the top bucket saturates: with 44
/// buckets the top bucket opens at 2⁴² ns ≈ 73 minutes, far beyond any
/// latency this system records.
pub const BUCKETS: usize = 44;

/// Cells per histogram: bucket counts, then a sum cell, then a max cell.
pub(crate) const HIST_CELLS: usize = BUCKETS + 2;
pub(crate) const SUM_OFFSET: usize = BUCKETS;
pub(crate) const MAX_OFFSET: usize = BUCKETS + 1;

/// Bucket index for a recorded value.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Largest value the bucket holds (inclusive); the top bucket is unbounded.
pub(crate) fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket < BUCKETS - 1 {
        (1u64 << bucket) - 1
    } else {
        u64::MAX
    }
}

/// What a registered metric is; re-registering a name under a different kind
/// is a programming error and panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic sum of increments.
    Counter,
    /// Last-write-wins signed value.
    Gauge,
    /// Log₂-bucketed distribution with sum and max.
    Histogram,
}

/// How shard cells combine across threads when merged.
#[derive(Debug, Clone, Copy)]
enum CellKind {
    /// Sum across shards (counter values, bucket counts, histogram sums).
    Add,
    /// Take the maximum across shards (histogram max cells).
    Max,
}

pub(crate) struct Shard {
    pub(crate) cells: Box<[AtomicU64]>,
}

impl Shard {
    fn new() -> Self {
        Shard { cells: (0..MAX_SLOTS).map(|_| AtomicU64::new(0)).collect() }
    }
}

pub(crate) struct Def {
    pub(crate) name: String,
    pub(crate) kind: MetricKind,
    /// First cell index for counters/histograms; index into `gauges` for
    /// gauges.
    pub(crate) slot: usize,
}

pub(crate) struct Inner {
    pub(crate) defs: Vec<Def>,
    by_name: HashMap<String, usize>,
    cell_kinds: Vec<CellKind>,
    pub(crate) gauges: Vec<Arc<AtomicI64>>,
    pub(crate) shards: Vec<Arc<Shard>>,
}

pub(crate) struct Registry {
    inner: Mutex<Inner>,
    /// Accumulates the cells of threads that have exited, plus any records
    /// that race with thread-local teardown.
    pub(crate) retired: Shard,
    pub(crate) version: AtomicU64,
}

impl Registry {
    pub(crate) fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("obs registry poisoned")
    }

    fn new_shard(&self) -> Arc<Shard> {
        let shard = Arc::new(Shard::new());
        self.lock().shards.push(Arc::clone(&shard));
        shard
    }

    /// Unregister an exiting thread's shard and fold its cells into
    /// `retired`, preserving per-cell merge semantics.
    fn retire(&self, shard: &Arc<Shard>) {
        let mut inner = self.lock();
        inner.shards.retain(|live| !Arc::ptr_eq(live, shard));
        for (index, kind) in inner.cell_kinds.iter().enumerate() {
            let value = shard.cells[index].load(Relaxed);
            if value == 0 {
                continue;
            }
            match kind {
                CellKind::Add => self.retired.cells[index].fetch_add(value, Relaxed),
                CellKind::Max => self.retired.cells[index].fetch_max(value, Relaxed),
            };
        }
    }
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(Inner {
            defs: Vec::new(),
            by_name: HashMap::new(),
            cell_kinds: Vec::new(),
            gauges: Vec::new(),
            shards: Vec::new(),
        }),
        retired: Shard::new(),
        version: AtomicU64::new(0),
    })
}

/// The thread's private shard; `Drop` runs at thread exit and folds the
/// shard's contents into the registry's retired shard so no samples are lost.
struct LocalShard {
    shard: Arc<Shard>,
}

impl Drop for LocalShard {
    fn drop(&mut self) {
        registry().retire(&self.shard);
    }
}

thread_local! {
    static LOCAL: LocalShard = LocalShard { shard: registry().new_shard() };
}

fn register(name: &str, kind: MetricKind, cells: usize) -> usize {
    let mut inner = registry().lock();
    if let Some(&index) = inner.by_name.get(name) {
        let def = &inner.defs[index];
        assert_eq!(
            def.kind, kind,
            "metric `{name}` already registered as {:?}, requested {:?}",
            def.kind, kind
        );
        return def.slot;
    }
    let slot = inner.cell_kinds.len();
    assert!(
        slot + cells <= MAX_SLOTS,
        "obs metric slot space exhausted registering `{name}` (MAX_SLOTS = {MAX_SLOTS})"
    );
    match kind {
        MetricKind::Counter => inner.cell_kinds.push(CellKind::Add),
        MetricKind::Histogram => {
            inner.cell_kinds.extend(std::iter::repeat_n(CellKind::Add, BUCKETS + 1));
            inner.cell_kinds.push(CellKind::Max);
        }
        MetricKind::Gauge => unreachable!("gauges are registered via register_gauge"),
    }
    let index = inner.defs.len();
    inner.by_name.insert(name.to_string(), index);
    inner.defs.push(Def { name: name.to_string(), kind, slot });
    slot
}

fn register_gauge(name: &str) -> Arc<AtomicI64> {
    let mut inner = registry().lock();
    if let Some(&index) = inner.by_name.get(name) {
        let def = &inner.defs[index];
        assert_eq!(
            def.kind,
            MetricKind::Gauge,
            "metric `{name}` already registered as {:?}, requested Gauge",
            def.kind
        );
        return Arc::clone(&inner.gauges[def.slot]);
    }
    let cell = Arc::new(AtomicI64::new(0));
    let slot = inner.gauges.len();
    inner.gauges.push(Arc::clone(&cell));
    let index = inner.defs.len();
    inner.by_name.insert(name.to_string(), index);
    inner.defs.push(Def { name: name.to_string(), kind: MetricKind::Gauge, slot });
    cell
}

/// Register (or look up) a counter by name. Cheap after the first call for a
/// given name, but still a lock + hash lookup — prefer [`crate::counter!`]
/// (which caches the handle in a `static`) on hot paths.
pub fn counter(name: &str) -> Counter {
    if !crate::enabled() {
        return Counter { slot: usize::MAX };
    }
    Counter { slot: register(name, MetricKind::Counter, 1) }
}

/// Register (or look up) a gauge by name.
pub fn gauge(name: &str) -> Gauge {
    if !crate::enabled() {
        return Gauge { cell: Arc::new(AtomicI64::new(0)) };
    }
    Gauge { cell: register_gauge(name) }
}

/// Register (or look up) a histogram by name.
pub fn histogram(name: &str) -> Histogram {
    if !crate::enabled() {
        return Histogram { slot: usize::MAX };
    }
    Histogram { slot: register(name, MetricKind::Histogram, HIST_CELLS) }
}

/// Handle to a registered counter. Copyable; `add` is one relaxed `fetch_add`
/// on the calling thread's private shard.
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    slot: usize,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::recording() || self.slot == usize::MAX {
            return;
        }
        let slot = self.slot;
        if LOCAL.try_with(|local| local.shard.cells[slot].fetch_add(n, Relaxed)).is_err() {
            // Thread-local storage is already torn down (thread exit path):
            // fold straight into the retired shard instead of losing the
            // sample.
            registry().retired.cells[slot].fetch_add(n, Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// Handle to a registered gauge: a single shared cell, last write wins.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Set the gauge to an absolute value.
    #[inline]
    pub fn set(&self, value: i64) {
        if crate::recording() {
            self.cell.store(value, Relaxed);
        }
    }

    /// Adjust the gauge by a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::recording() {
            self.cell.fetch_add(delta, Relaxed);
        }
    }
}

/// Handle to a registered histogram. `record` is three relaxed atomics
/// (bucket count, sum, max) on the calling thread's private shard.
#[derive(Debug, Clone, Copy)]
pub struct Histogram {
    slot: usize,
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::recording() || self.slot == usize::MAX {
            return;
        }
        let slot = self.slot;
        let bucket = bucket_index(value);
        let write = |cells: &[AtomicU64]| {
            cells[slot + bucket].fetch_add(1, Relaxed);
            cells[slot + SUM_OFFSET].fetch_add(value, Relaxed);
            cells[slot + MAX_OFFSET].fetch_max(value, Relaxed);
        };
        if LOCAL.try_with(|local| write(&local.shard.cells)).is_err() {
            write(&registry().retired.cells);
        }
    }

    /// Record a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// A counter handle resolved lazily from a `static`; what [`crate::counter!`]
/// expands to. Registration happens once, on first use.
pub struct LazyCounter {
    name: &'static str,
    handle: OnceLock<Counter>,
}

impl LazyCounter {
    /// Const-construct around a static name.
    pub const fn new(name: &'static str) -> Self {
        LazyCounter { name, handle: OnceLock::new() }
    }

    /// Resolve the underlying handle, registering on first call.
    #[inline]
    pub fn get(&self) -> Counter {
        *self.handle.get_or_init(|| counter(self.name))
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.get().add(n);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A gauge handle resolved lazily from a `static`; what [`crate::gauge!`]
/// expands to.
pub struct LazyGauge {
    name: &'static str,
    handle: OnceLock<Gauge>,
}

impl LazyGauge {
    /// Const-construct around a static name.
    pub const fn new(name: &'static str) -> Self {
        LazyGauge { name, handle: OnceLock::new() }
    }

    /// Resolve the underlying handle, registering on first call.
    #[inline]
    pub fn get(&self) -> &Gauge {
        self.handle.get_or_init(|| gauge(self.name))
    }

    /// Set the gauge to an absolute value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.get().set(value);
    }

    /// Adjust the gauge by a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.get().add(delta);
    }
}

/// A histogram handle resolved lazily from a `static`; what
/// [`crate::histogram!`] and [`crate::span!`] expand to.
pub struct LazyHistogram {
    name: &'static str,
    handle: OnceLock<Histogram>,
}

impl LazyHistogram {
    /// Const-construct around a static name.
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram { name, handle: OnceLock::new() }
    }

    /// Resolve the underlying handle, registering on first call.
    #[inline]
    pub fn get(&self) -> Histogram {
        *self.handle.get_or_init(|| histogram(self.name))
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.get().record(value);
    }

    /// Record a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, elapsed: Duration) {
        self.get().record_duration(elapsed);
    }
}
