//! Process-wide runtime observability: lock-free counters, gauges, and
//! log-bucketed latency histograms, plus a lightweight span API and a bounded
//! per-thread event ring.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path must cost a few nanoseconds.** Counter increments and
//!    histogram records touch one thread-local shard with relaxed atomics —
//!    no locks, no allocation, no shared cache-line contention. Registration
//!    (name → slot) happens once per call site through a `OnceLock`-backed
//!    lazy handle baked into the recording macros.
//! 2. **Telemetry must never perturb results.** Recording is purely
//!    observational; nothing in the analysis pipeline reads a metric back.
//!    The `noop` cargo feature compiles every record path to nothing and every
//!    snapshot to the empty snapshot, and `set_recording(false)` provides the
//!    same switch at runtime, so determinism gates run both ways.
//! 3. **Snapshots are deterministic.** [`snapshot`] merges all thread shards
//!    (including shards retired by exited threads) and emits metrics sorted
//!    by name, with a monotonically increasing version stamp.
//!
//! The recording surface is the five macros — [`counter!`], [`gauge!`],
//! [`histogram!`], [`span!`], [`event!`] — plus same-named free functions for
//! dynamically built metric names.
//!
//! On top of the flat metrics sit three attribution layers, all honoring the
//! same two escape hatches: [`trace`] (causal span trees with cross-thread
//! context propagation and Chrome trace-event export), [`flight`] (an
//! always-on bounded ring of completed spans, dumped on demand, on panic, or
//! when a health rule fires), and [`health`] (declarative SLOs judged from
//! the metrics snapshot into a [`HealthReport`] with burn counters).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
pub mod flight;
pub mod health;
mod registry;
mod snapshot;
mod span;
pub mod trace;

pub use events::{recent_events, Event};
pub use health::{HealthReport, SloRule, SloSpec, SloVerdict};
pub use registry::{
    counter, gauge, histogram, Counter, Gauge, Histogram, LazyCounter, LazyGauge, LazyHistogram,
    MetricKind, BUCKETS, MAX_SLOTS,
};
pub use snapshot::{snapshot, HistogramSummary, Metric, MetricValue, MetricsSnapshot};
pub use span::{span, SpanGuard};
pub use trace::{SpanId, SpanRecord, TraceContext, TraceId, TraceSpan};

use std::sync::atomic::{AtomicBool, Ordering};

/// Whether this build was compiled with observability support at all.
///
/// `false` only under the `noop` cargo feature; a constant either way, so
/// `if !enabled() { ... }` folds away at compile time.
pub const fn enabled() -> bool {
    cfg!(not(feature = "noop"))
}

/// Runtime recording switch, on by default. Only consulted when [`enabled`];
/// lets one binary measure instrumented-vs-off overhead without a rebuild.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Turn recording on or off at runtime. Registration still works while off —
/// metrics reappear in snapshots (with their accumulated values) when
/// recording is re-enabled.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// True when a record call will actually write: the build is instrumented
/// *and* the runtime switch is on. Under the `noop` feature this is a
/// compile-time `false`.
#[inline(always)]
pub fn recording() -> bool {
    enabled() && RECORDING.load(Ordering::Relaxed)
}

/// Record an event with a statically named ring entry, e.g.
/// `obs::event("stream.epoch", format!("epoch {epoch}"))`. Prefer the
/// [`event!`] macro, which skips the `format!` cost while recording is off.
pub fn event(name: &'static str, detail: String) {
    events::record(name.to_string(), detail);
}

/// Record an event with a dynamically built name, mirroring [`span`] and
/// [`histogram`]: `obs::event_dynamic(&format!("workload.scenario.{kind}"),
/// detail)`. Pays one extra allocation per call; events are coarse
/// milestones, never per-query.
pub fn event_dynamic(name: &str, detail: String) {
    events::record(name.to_string(), detail);
}

/// Increment a statically named counter: `counter!("ingest.calls")` or
/// `counter!("ingest.raw_events", n)`. The handle is registered once per call
/// site and cached in a hidden `static`.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {
        $crate::counter!($name, 1u64)
    };
    ($name:literal, $n:expr) => {{
        static __OBS_COUNTER: $crate::LazyCounter = $crate::LazyCounter::new($name);
        __OBS_COUNTER.add($n);
    }};
}

/// Set a statically named gauge to an absolute value:
/// `gauge!("stream.watermark", w as i64)`.
#[macro_export]
macro_rules! gauge {
    ($name:literal, $v:expr) => {{
        static __OBS_GAUGE: $crate::LazyGauge = $crate::LazyGauge::new($name);
        __OBS_GAUGE.set($v);
    }};
}

/// Record one sample into a statically named histogram:
/// `histogram!("serve.snapshot.build_ns", elapsed_ns)`.
#[macro_export]
macro_rules! histogram {
    ($name:literal, $v:expr) => {{
        static __OBS_HISTOGRAM: $crate::LazyHistogram = $crate::LazyHistogram::new($name);
        __OBS_HISTOGRAM.record($v);
    }};
}

/// Open a span guard that records its lifetime (in nanoseconds) into the named
/// histogram when dropped: `let _span = span!("stage.refine");`.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __OBS_SPAN_HIST: $crate::LazyHistogram = $crate::LazyHistogram::new($name);
        $crate::SpanGuard::new(__OBS_SPAN_HIST.get())
    }};
}

/// Push an entry into the bounded recent-event ring. The detail arguments are
/// `format!`-style and are only evaluated while recording is on:
/// `event!("serve.publish", "epoch {epoch}")`.
#[macro_export]
macro_rules! event {
    ($name:literal) => {
        if $crate::recording() {
            $crate::event($name, ::std::string::String::new());
        }
    };
    ($name:literal, $($arg:tt)+) => {
        if $crate::recording() {
            $crate::event($name, ::std::format!($($arg)+));
        }
    };
}
