//! Span guards: scope-based timing that feeds latency histograms.

use std::time::Instant;

use crate::registry::{histogram, Histogram};

/// A guard that measures its own lifetime and records the elapsed nanoseconds
/// into a histogram when dropped. Created by [`crate::span!`] (static name)
/// or [`span`] (dynamic name).
///
/// When recording is off at construction time the guard holds no timestamp
/// and its drop is free — spans cost nothing in a `noop` build.
#[must_use = "a span guard records on drop; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    hist: Histogram,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Open a span feeding the given histogram.
    #[inline]
    pub fn new(hist: Histogram) -> Self {
        let start = if crate::recording() { Some(Instant::now()) } else { None };
        SpanGuard { hist, start }
    }

    /// Close the span early, before scope end.
    #[inline]
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record_duration(start.elapsed());
        }
    }
}

/// Open a span against a dynamically built histogram name, e.g.
/// `obs::span(&format!("stage.{name}_ns"))`. Pays a registry lookup per call;
/// prefer [`crate::span!`] when the name is a literal.
pub fn span(name: &str) -> SpanGuard {
    SpanGuard::new(histogram(name))
}
