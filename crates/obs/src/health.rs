//! Health/SLO watchdog: declarative service-level objectives evaluated
//! against the current metrics snapshot, with burn counters and flight-ring
//! incident capture on the healthy→unhealthy edge.
//!
//! The monitor is deliberately dumb: each [`SloSpec`] names a metric (or a
//! counter pair) and a threshold; [`evaluate`] reads them from a
//! [`MetricsSnapshot`] and produces a [`HealthReport`]. It never reads
//! analysis state, so — like every other obs surface — it cannot perturb
//! results, and the whole module is inert under the `noop` feature or while
//! recording is off.

use std::sync::{Mutex, OnceLock};

use crate::snapshot::MetricsSnapshot;

/// How one objective is judged from a metrics snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum SloRule {
    /// A histogram quantile must not exceed a ceiling (e.g. epoch publish
    /// latency p99 below budget).
    HistogramQuantileAtMost {
        /// Histogram metric name, e.g. `stream.epoch_ns`.
        metric: String,
        /// Quantile in `[0, 1]`, e.g. `0.99`.
        quantile: f64,
        /// Inclusive ceiling on the quantile value.
        ceiling: i64,
    },
    /// A gauge must not exceed a ceiling (e.g. watermark lag).
    GaugeAtMost {
        /// Gauge metric name.
        metric: String,
        /// Inclusive ceiling.
        ceiling: i64,
    },
    /// A gauge must not fall below a floor (e.g. snapshot chunk-reuse ratio).
    GaugeAtLeast {
        /// Gauge metric name.
        metric: String,
        /// Inclusive floor.
        floor: i64,
    },
    /// `part / (part + rest)` (two counters) must stay at or above a floor,
    /// in basis points (e.g. cache hit rate).
    RatioAtLeast {
        /// Numerator counter, e.g. `serve.cache.hits`.
        part: String,
        /// The complement counter, e.g. `serve.cache.misses`.
        rest: String,
        /// Inclusive floor on the ratio, in basis points of the total.
        floor_bp: i64,
    },
}

/// One named objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Stable short name, e.g. `epoch_latency`.
    pub name: String,
    /// The rule that judges it.
    pub rule: SloRule,
}

/// The outcome of judging one objective at one evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    /// The objective's name.
    pub slo: String,
    /// Whether the objective held at this evaluation. An objective whose
    /// metric is absent from the snapshot is healthy (no data is not a
    /// violation).
    pub healthy: bool,
    /// The observed value (quantile, gauge, or ratio in basis points); 0
    /// when the metric is absent.
    pub observed: i64,
    /// The configured ceiling or floor.
    pub threshold: i64,
    /// Consecutive unhealthy evaluations ending at this one (0 if healthy).
    pub burn: u64,
    /// Total unhealthy evaluations since the spec was installed.
    pub total_burn: u64,
}

/// A point-in-time health summary: every objective's verdict plus how often
/// the monitor has run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthReport {
    /// Monotonic report version (equals the evaluation count).
    pub version: u64,
    /// How many times [`evaluate`] has run against the current specs.
    pub evaluations: u64,
    /// Per-objective verdicts, in spec order.
    pub verdicts: Vec<SloVerdict>,
}

impl HealthReport {
    /// True when every objective held at the last evaluation (vacuously true
    /// for an empty report).
    pub fn healthy(&self) -> bool {
        self.verdicts.iter().all(|verdict| verdict.healthy)
    }

    /// Plain-text rendering for dashboards and consoles.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let ok = self.verdicts.iter().filter(|verdict| verdict.healthy).count();
        out.push_str(&format!(
            "health: {ok}/{total} objectives met after {evals} evaluation(s)\n",
            total = self.verdicts.len(),
            evals = self.evaluations,
        ));
        for verdict in &self.verdicts {
            out.push_str(&format!(
                "  [{state}] {slo:<24} observed {observed:>12}  threshold {threshold:>12}  \
                 burn {burn} (total {total_burn})\n",
                state = if verdict.healthy { " ok " } else { "FAIL" },
                slo = verdict.slo,
                observed = verdict.observed,
                threshold = verdict.threshold,
                burn = verdict.burn,
                total_burn = verdict.total_burn,
            ));
        }
        out
    }
}

struct SloState {
    spec: SloSpec,
    burn: u64,
    total_burn: u64,
}

#[derive(Default)]
struct Monitor {
    slos: Vec<SloState>,
    installed: bool,
    evaluations: u64,
    last: Vec<SloVerdict>,
}

fn monitor() -> &'static Mutex<Monitor> {
    static MONITOR: OnceLock<Mutex<Monitor>> = OnceLock::new();
    MONITOR.get_or_init(|| Mutex::new(Monitor::default()))
}

/// The default objective catalog for the live pipeline:
///
/// | objective       | rule                                                  |
/// |-----------------|-------------------------------------------------------|
/// | `epoch_latency` | `stream.epoch_ns` p99 ≤ 250 ms                        |
/// | `watermark_lag` | `stream.watermark_lag` gauge ≤ 1024 blocks            |
/// | `cache_hit_rate`| `serve.cache.hits` ratio ≥ 25 % (2500 bp)             |
/// | `chunk_reuse`   | `serve.publish.reuse_ratio` gauge ≥ 2500 bp           |
pub fn standard_slos() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "epoch_latency".to_string(),
            rule: SloRule::HistogramQuantileAtMost {
                metric: "stream.epoch_ns".to_string(),
                quantile: 0.99,
                ceiling: 250_000_000,
            },
        },
        SloSpec {
            name: "watermark_lag".to_string(),
            rule: SloRule::GaugeAtMost {
                metric: "stream.watermark_lag".to_string(),
                ceiling: 1024,
            },
        },
        SloSpec {
            name: "cache_hit_rate".to_string(),
            rule: SloRule::RatioAtLeast {
                part: "serve.cache.hits".to_string(),
                rest: "serve.cache.misses".to_string(),
                floor_bp: 2_500,
            },
        },
        SloSpec {
            name: "chunk_reuse".to_string(),
            rule: SloRule::GaugeAtLeast {
                metric: "serve.publish.reuse_ratio".to_string(),
                floor: 2_500,
            },
        },
    ]
}

/// Install (or replace) the objective set. Burn counters and the evaluation
/// count reset. An empty slice clears the monitor.
pub fn set_slos(specs: Vec<SloSpec>) {
    if !crate::enabled() {
        return;
    }
    let mut monitor = monitor().lock().expect("health monitor poisoned");
    monitor.slos =
        specs.into_iter().map(|spec| SloState { spec, burn: 0, total_burn: 0 }).collect();
    monitor.installed = true;
    monitor.evaluations = 0;
    monitor.last = Vec::new();
}

fn judge(rule: &SloRule, snapshot: &MetricsSnapshot) -> (bool, i64, i64) {
    match rule {
        SloRule::HistogramQuantileAtMost { metric, quantile, ceiling } => {
            match snapshot.histogram(metric) {
                Some(summary) => {
                    let observed = summary.quantile(*quantile) as i64;
                    (observed <= *ceiling, observed, *ceiling)
                }
                None => (true, 0, *ceiling),
            }
        }
        SloRule::GaugeAtMost { metric, ceiling } => match snapshot.gauge(metric) {
            Some(observed) => (observed <= *ceiling, observed, *ceiling),
            None => (true, 0, *ceiling),
        },
        SloRule::GaugeAtLeast { metric, floor } => match snapshot.gauge(metric) {
            Some(observed) => (observed >= *floor, observed, *floor),
            None => (true, 0, *floor),
        },
        SloRule::RatioAtLeast { part, rest, floor_bp } => {
            let hits = snapshot.counter(part).unwrap_or(0);
            let misses = snapshot.counter(rest).unwrap_or(0);
            let total = hits + misses;
            match hits.saturating_mul(10_000).checked_div(total) {
                // No traffic yet: nothing has violated the floor.
                None => (true, 0, *floor_bp),
                Some(observed) => (observed as i64 >= *floor_bp, observed as i64, *floor_bp),
            }
        }
    }
}

/// Judge every installed objective against `snapshot`, advancing burn
/// counters. On an objective's healthy→unhealthy edge the flight ring is
/// captured as an incident ([`crate::flight::last_incident`]). Installs
/// [`standard_slos`] on first use if [`set_slos`] was never called. Returns
/// the empty report (and mutates nothing) while recording is off.
pub fn evaluate(snapshot: &MetricsSnapshot) -> HealthReport {
    if !crate::recording() {
        return HealthReport::default();
    }
    let mut monitor = monitor().lock().expect("health monitor poisoned");
    if !monitor.installed {
        monitor.slos = standard_slos()
            .into_iter()
            .map(|spec| SloState { spec, burn: 0, total_burn: 0 })
            .collect();
        monitor.installed = true;
    }
    monitor.evaluations += 1;
    let evaluations = monitor.evaluations;
    let mut verdicts = Vec::with_capacity(monitor.slos.len());
    let mut newly_unhealthy: Vec<String> = Vec::new();
    for state in &mut monitor.slos {
        let (healthy, observed, threshold) = judge(&state.spec.rule, snapshot);
        if healthy {
            state.burn = 0;
        } else {
            if state.burn == 0 {
                newly_unhealthy.push(state.spec.name.clone());
            }
            state.burn += 1;
            state.total_burn += 1;
        }
        verdicts.push(SloVerdict {
            slo: state.spec.name.clone(),
            healthy,
            observed,
            threshold,
            burn: state.burn,
            total_burn: state.total_burn,
        });
    }
    monitor.last = verdicts.clone();
    drop(monitor);
    for slo in newly_unhealthy {
        crate::flight::capture_incident(&format!("slo {slo} violated"));
    }
    HealthReport { version: evaluations, evaluations, verdicts }
}

/// The verdicts from the most recent [`evaluate`] call, without mutating any
/// burn state — the read path behind `Query::Health`. Empty before the first
/// evaluation and while recording is off.
pub fn report() -> HealthReport {
    if !crate::recording() {
        return HealthReport::default();
    }
    let monitor = monitor().lock().expect("health monitor poisoned");
    HealthReport {
        version: monitor.evaluations,
        evaluations: monitor.evaluations,
        verdicts: monitor.last.clone(),
    }
}
