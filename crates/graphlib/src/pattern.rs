//! Canonical forms for small directed graphs and the paper's wash-trading
//! pattern catalogue (Fig. 7).
//!
//! The paper classifies every confirmed wash-trading component by the *shape*
//! of its transaction graph — the set of distinct directed edges among the
//! participating accounts, ignoring how many parallel trades each edge
//! carries. Twelve shapes cover more than 90% of all activities; the text
//! explicitly identifies pattern 0 (a single self-trading account), pattern 1
//! (two accounts trading back and forth) and the "circular" patterns 2, 5 and
//! 10 (pure 3-, 4- and 5-cycles). The remaining shapes are not drawn in the
//! text; this catalogue reconstructs them as the natural composites of round
//! trips and cycles, and classification is by graph isomorphism so any
//! component matching one of the catalogued shapes — under any relabelling of
//! accounts — is assigned the same pattern id.

use serde::{Deserialize, Serialize};

/// Maximum number of nodes for which canonicalization is attempted.
/// Components larger than this are reported as unclassified ("other"),
/// matching the paper's long tail of rare large patterns.
pub const MAX_CANONICAL_NODES: usize = 8;

/// A canonical form of a directed graph on at most [`MAX_CANONICAL_NODES`]
/// nodes: the lexicographically smallest adjacency bitmask over all node
/// permutations. Two digraphs are isomorphic iff their canonical forms are
/// equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CanonicalDigraph {
    /// Number of nodes.
    pub nodes: u8,
    /// Adjacency bitmask under the canonical labelling: bit `i * nodes + j`
    /// is set iff there is an edge from node `i` to node `j`.
    pub bits: u64,
}

impl CanonicalDigraph {
    /// Compute the canonical form of the digraph on `nodes` nodes with the
    /// given directed `edges` (node labels must lie in `0..nodes`; duplicate
    /// edges are collapsed; self-loops are allowed).
    ///
    /// Returns `None` when `nodes` is zero or larger than
    /// [`MAX_CANONICAL_NODES`], or when an edge endpoint is out of range.
    pub fn from_edges(nodes: usize, edges: &[(usize, usize)]) -> Option<Self> {
        let base = validated_adjacency_bits(nodes, edges)?;
        Some(CanonicalDigraph { nodes: nodes as u8, bits: canonical_bits(nodes, base) })
    }

    /// Number of distinct directed edges in the canonical graph.
    pub fn edge_count(&self) -> u32 {
        self.bits.count_ones()
    }
}

/// Validate a shape (node count within canonicalization range, endpoints in
/// bounds) and collapse it into its adjacency bitmask. The single
/// construction path shared by [`CanonicalDigraph::from_edges`] and
/// [`PatternCatalogue::classify`], so both accept exactly the same inputs.
fn validated_adjacency_bits(nodes: usize, edges: &[(usize, usize)]) -> Option<u64> {
    if nodes == 0 || nodes > MAX_CANONICAL_NODES {
        return None;
    }
    if edges.iter().any(|&(s, t)| s >= nodes || t >= nodes) {
        return None;
    }
    let mut bits = 0u64;
    for &(s, t) in edges {
        bits |= 1u64 << (s * nodes + t);
    }
    Some(bits)
}

/// The lexicographically smallest relabelling of an adjacency bitmask over
/// all node permutations. Works on the set bits directly — the previous
/// implementation materialized an edge `Vec` per permutation, which made the
/// `n!` search allocation-bound for the larger components.
fn canonical_bits(nodes: usize, base: u64) -> u64 {
    let mut best = u64::MAX;
    let mut permutation: Vec<usize> = (0..nodes).collect();
    permute(&mut permutation, 0, &mut |perm| {
        let mut candidate = 0u64;
        let mut bits = base;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            candidate |= 1u64 << (perm[bit / nodes] * nodes + perm[bit % nodes]);
        }
        if candidate < best {
            best = candidate;
        }
    });
    best
}

fn permute(items: &mut Vec<usize>, start: usize, visit: &mut impl FnMut(&[usize])) {
    if start == items.len() {
        visit(items);
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute(items, start + 1, visit);
        items.swap(start, i);
    }
}

/// Identifier of a pattern in the catalogue (0–11 for the paper's Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PatternId(pub usize);

impl std::fmt::Display for PatternId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pattern {}", self.0)
    }
}

/// A catalogued pattern: its shape and the occurrence count the paper reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternSpec {
    /// Pattern identifier (index in Fig. 7).
    pub id: PatternId,
    /// Human-readable name.
    pub name: String,
    /// Number of participating accounts.
    pub participants: usize,
    /// The shape as a list of directed edges over nodes `0..participants`.
    pub edges: Vec<(usize, usize)>,
    /// Occurrences reported in the paper's Fig. 7.
    pub paper_occurrences: usize,
}

/// The catalogue of Fig. 7 patterns, with an isomorphism-based classifier.
#[derive(Debug, Clone)]
pub struct PatternCatalogue {
    specs: Vec<PatternSpec>,
    canonical: Vec<(CanonicalDigraph, PatternId)>,
}

/// Bidirectional pair helper: edges u→v and v→u.
fn round_trip(u: usize, v: usize) -> Vec<(usize, usize)> {
    vec![(u, v), (v, u)]
}

/// Directed cycle 0→1→…→(n-1)→0.
fn cycle(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

impl PatternCatalogue {
    /// The 12-pattern catalogue of the paper's Fig. 7.
    pub fn paper() -> Self {
        let mut specs = Vec::new();
        let mut push = |id: usize,
                        name: &str,
                        participants: usize,
                        edges: Vec<(usize, usize)>,
                        occurrences: usize| {
            specs.push(PatternSpec {
                id: PatternId(id),
                name: name.to_string(),
                participants,
                edges,
                paper_occurrences: occurrences,
            });
        };

        // Pattern 0: a single account trading with itself (self-trade).
        push(0, "self-trade", 1, vec![(0, 0)], 942);
        // Pattern 1: two accounts doing round-trip trading.
        push(1, "round trip (2 accounts)", 2, round_trip(0, 1), 7431);
        // Pattern 2: three accounts moving the NFT circularly.
        push(2, "3-cycle", 3, cycle(3), 1592);
        // Pattern 3: chain of round trips over three accounts.
        push(
            3,
            "round-trip chain (3 accounts)",
            3,
            {
                let mut e = round_trip(0, 1);
                e.extend(round_trip(1, 2));
                e
            },
            786,
        );
        // Pattern 4: fully bidirectional triangle.
        push(
            4,
            "bidirectional triangle",
            3,
            {
                let mut e = round_trip(0, 1);
                e.extend(round_trip(1, 2));
                e.extend(round_trip(0, 2));
                e
            },
            17,
        );
        // Pattern 5: four accounts moving the NFT circularly.
        push(5, "4-cycle", 4, cycle(4), 450);
        // Pattern 6: chain of round trips over four accounts.
        push(
            6,
            "round-trip chain (4 accounts)",
            4,
            {
                let mut e = round_trip(0, 1);
                e.extend(round_trip(1, 2));
                e.extend(round_trip(2, 3));
                e
            },
            146,
        );
        // Pattern 7: hub account round-tripping with three spokes.
        push(
            7,
            "round-trip star (4 accounts)",
            4,
            {
                let mut e = round_trip(0, 1);
                e.extend(round_trip(0, 2));
                e.extend(round_trip(0, 3));
                e
            },
            134,
        );
        // Pattern 8: bidirectional 4-cycle.
        push(
            8,
            "bidirectional 4-cycle",
            4,
            {
                let mut e = Vec::new();
                for i in 0..4 {
                    e.extend(round_trip(i, (i + 1) % 4));
                }
                e
            },
            9,
        );
        // Pattern 9: 4-cycle with an extra chord closing a second cycle.
        push(
            9,
            "4-cycle with chord",
            4,
            {
                let mut e = cycle(4);
                e.push((2, 0));
                e
            },
            4,
        );
        // Pattern 10: five accounts moving the NFT circularly.
        push(10, "5-cycle", 5, cycle(5), 115);
        // Pattern 11: hub account round-tripping with four spokes.
        push(
            11,
            "round-trip star (5 accounts)",
            5,
            {
                let mut e = round_trip(0, 1);
                e.extend(round_trip(0, 2));
                e.extend(round_trip(0, 3));
                e.extend(round_trip(0, 4));
                e
            },
            22,
        );

        let canonical = specs
            .iter()
            .map(|spec| {
                let canonical = CanonicalDigraph::from_edges(spec.participants, &spec.edges)
                    .expect("catalogue patterns are small");
                (canonical, spec.id)
            })
            .collect();
        PatternCatalogue { specs, canonical }
    }

    /// All catalogued patterns, in id order.
    pub fn specs(&self) -> &[PatternSpec] {
        &self.specs
    }

    /// Look up a pattern spec by id.
    pub fn spec(&self, id: PatternId) -> Option<&PatternSpec> {
        self.specs.iter().find(|s| s.id == id)
    }

    /// Classify a component shape (given as its distinct directed edges over
    /// nodes `0..nodes`) against the catalogue. Returns `None` when the shape
    /// is not one of the 12 catalogued patterns, or when it is too large to
    /// canonicalize.
    pub fn classify(&self, nodes: usize, edges: &[(usize, usize)]) -> Option<PatternId> {
        // Canonicalization preserves node and distinct-edge counts, so a
        // shape can only match a catalogue entry with the same counts. This
        // skips the `n!` canonical search entirely for the long tail of
        // shapes (everything over 5 nodes, and most shapes below) that the
        // catalogue cannot contain.
        let base = validated_adjacency_bits(nodes, edges)?;
        let distinct_edges = base.count_ones();
        if !self
            .canonical
            .iter()
            .any(|(c, _)| c.nodes as usize == nodes && c.edge_count() == distinct_edges)
        {
            return None;
        }
        let canonical = CanonicalDigraph { nodes: nodes as u8, bits: canonical_bits(nodes, base) };
        self.canonical.iter().find(|(c, _)| *c == canonical).map(|(_, id)| *id)
    }
}

impl Default for PatternCatalogue {
    fn default() -> Self {
        PatternCatalogue::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_is_permutation_invariant() {
        // 3-cycle labelled two different ways.
        let a = CanonicalDigraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let b = CanonicalDigraph::from_edges(3, &[(2, 1), (1, 0), (0, 2)]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.edge_count(), 3);
    }

    #[test]
    fn canonical_form_distinguishes_non_isomorphic_graphs() {
        let cycle3 = CanonicalDigraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let path3 = CanonicalDigraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let chain_rt = CanonicalDigraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        assert_ne!(cycle3, path3);
        assert_ne!(cycle3, chain_rt);
    }

    #[test]
    fn oversized_and_invalid_graphs_are_rejected() {
        assert!(CanonicalDigraph::from_edges(0, &[]).is_none());
        assert!(CanonicalDigraph::from_edges(9, &[]).is_none());
        assert!(CanonicalDigraph::from_edges(2, &[(0, 5)]).is_none());
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let a = CanonicalDigraph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]).unwrap();
        let b = CanonicalDigraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn catalogue_has_twelve_distinct_patterns() {
        let catalogue = PatternCatalogue::paper();
        assert_eq!(catalogue.specs().len(), 12);
        let mut canonicals: Vec<CanonicalDigraph> = catalogue
            .specs()
            .iter()
            .map(|s| CanonicalDigraph::from_edges(s.participants, &s.edges).unwrap())
            .collect();
        canonicals.sort();
        canonicals.dedup();
        assert_eq!(canonicals.len(), 12, "patterns must be pairwise non-isomorphic");
        // Paper totals: the catalogue covers 11,588 of the 12,413 activities (93.83%).
        let total: usize = catalogue.specs().iter().map(|s| s.paper_occurrences).sum();
        assert_eq!(total, 942 + 7431 + 1592 + 786 + 17 + 450 + 146 + 134 + 9 + 4 + 115 + 22);
    }

    #[test]
    fn classify_recognizes_relabelled_patterns() {
        let catalogue = PatternCatalogue::paper();
        // Round trip with swapped labels.
        assert_eq!(catalogue.classify(2, &[(1, 0), (0, 1)]), Some(PatternId(1)));
        // 3-cycle in reverse orientation is still a 3-cycle.
        assert_eq!(catalogue.classify(3, &[(0, 2), (2, 1), (1, 0)]), Some(PatternId(2)));
        // Self-loop.
        assert_eq!(catalogue.classify(1, &[(0, 0)]), Some(PatternId(0)));
        // Star with hub at node 2 instead of node 0.
        assert_eq!(
            catalogue.classify(4, &[(2, 0), (0, 2), (2, 1), (1, 2), (2, 3), (3, 2)]),
            Some(PatternId(7))
        );
    }

    #[test]
    fn classify_rejects_uncatalogued_shapes() {
        let catalogue = PatternCatalogue::paper();
        // A directed path is not an SCC shape in the catalogue.
        assert_eq!(catalogue.classify(3, &[(0, 1), (1, 2)]), None);
        // A 6-cycle is a valid SCC but not one of the 12 patterns.
        let cycle6: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        assert_eq!(catalogue.classify(6, &cycle6), None);
        // Too large to canonicalize.
        let cycle9: Vec<(usize, usize)> = (0..9).map(|i| (i, (i + 1) % 9)).collect();
        assert_eq!(catalogue.classify(9, &cycle9), None);
    }

    #[test]
    fn spec_lookup() {
        let catalogue = PatternCatalogue::paper();
        let spec = catalogue.spec(PatternId(1)).unwrap();
        assert_eq!(spec.participants, 2);
        assert_eq!(spec.paper_occurrences, 7431);
        assert!(catalogue.spec(PatternId(99)).is_none());
    }

    proptest::proptest! {
        #[test]
        fn canonicalization_is_invariant_under_random_relabelling(
            edges in proptest::collection::vec((0usize..5, 0usize..5), 1..12),
            seed in 0usize..120,
        ) {
            let n = 5;
            let base = CanonicalDigraph::from_edges(n, &edges).unwrap();
            // Build the `seed`-th permutation of 0..5 (Lehmer-code style).
            let mut available: Vec<usize> = (0..n).collect();
            let mut permutation = Vec::with_capacity(n);
            let mut remainder = seed;
            for radix in (1..=n).rev() {
                let index = remainder % radix;
                remainder /= radix;
                permutation.push(available.remove(index));
            }
            let relabelled: Vec<(usize, usize)> =
                edges.iter().map(|&(s, t)| (permutation[s], permutation[t])).collect();
            let relabelled_canonical = CanonicalDigraph::from_edges(n, &relabelled).unwrap();
            proptest::prop_assert_eq!(base, relabelled_canonical);
        }
    }
}
