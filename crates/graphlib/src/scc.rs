//! Strongly connected components.
//!
//! The paper finds wash-trading candidates by computing, for each NFT's
//! transaction graph, the strongly connected components "consisting of at
//! least two nodes and including single nodes with a self-loop" using
//! Tarjan's algorithm with Nuutila's modifications (the variant implemented
//! by NetworkX). This module provides:
//!
//! * [`strongly_connected_components`] — an **iterative** Tarjan/Nuutila SCC
//!   over a [`DiMultiGraph`] (iterative so that long trading chains cannot
//!   overflow the call stack),
//! * [`suspicious_components`] — the paper's filtered view (≥ 2 nodes, or a
//!   single node with a self-loop),
//! * [`suspicious_components_masked`] — the same filtered view restricted to
//!   a node subset *without materializing the subgraph*: ring refinement
//!   drops service accounts and contracts and re-runs SCC, and the masked
//!   variant answers that query on the original graph directly,
//! * [`SccScratch`] — reusable traversal buffers, so a caller sweeping many
//!   graphs (one per NFT) pays for allocation once per thread instead of
//!   once per graph; the convenience entry points reuse a thread-local
//!   scratch automatically,
//! * [`kosaraju_scc`] — an independent reference implementation used by the
//!   property tests to cross-check Tarjan's output.
//!
//! The traversal walks the graph's CSR adjacency slices
//! ([`DiMultiGraph::outgoing_edges`]) in place: no per-node successor lists
//! are built, and parallel edges are simply revisited (harmless for Tarjan —
//! the `on_stack`/`lowlink` updates are idempotent).

use std::cell::RefCell;
use std::hash::Hash;

use crate::multigraph::{DiMultiGraph, NodeIndex};

const UNVISITED: usize = usize::MAX;

/// Explicit DFS frame: enter a node, or resume it at a successor position.
enum Frame {
    Enter(NodeIndex),
    Resume(NodeIndex, usize),
}

/// Reusable buffers for the iterative Tarjan traversal.
///
/// All state the search needs — discovery indices, lowlinks, the Tarjan
/// stack and the explicit call stack — lives here, sized to the graph on
/// each run but *retaining capacity* across runs. The per-NFT SCC sweep
/// reuses one scratch per worker thread, which removes every allocation
/// from the steady state. A scratch is not tied to any particular graph.
#[derive(Default)]
pub struct SccScratch {
    index_of: Vec<usize>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<NodeIndex>,
    call_stack: Vec<Frame>,
}

impl SccScratch {
    /// Fresh scratch with no capacity yet.
    pub fn new() -> Self {
        SccScratch::default()
    }

    /// Size every buffer for an `n`-node graph, keeping allocations.
    fn reset(&mut self, n: usize) {
        self.index_of.clear();
        self.index_of.resize(n, UNVISITED);
        self.lowlink.clear();
        self.lowlink.resize(n, 0);
        self.on_stack.clear();
        self.on_stack.resize(n, false);
        self.stack.clear();
        self.call_stack.clear();
    }
}

thread_local! {
    /// Per-thread scratch backing the convenience entry points. The worker
    /// threads of a fork–join executor each get their own, so a sweep over
    /// thousands of NFT graphs allocates traversal state once per thread.
    static THREAD_SCRATCH: RefCell<SccScratch> = RefCell::new(SccScratch::new());
}

fn with_thread_scratch<R>(f: impl FnOnce(&mut SccScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        // Re-entrant use (caller already holds the scratch): fall back to a
        // one-off allocation rather than panicking.
        Err(_) => f(&mut SccScratch::new()),
    })
}

/// The Tarjan/Nuutila core. `keep` optionally restricts the search to a node
/// subset: masked-out nodes are never entered and their edges are skipped,
/// which is exactly SCC on the induced subgraph.
fn tarjan<N: Eq + Hash + Clone, E>(
    graph: &DiMultiGraph<N, E>,
    keep: Option<&[bool]>,
    scratch: &mut SccScratch,
) -> Vec<Vec<NodeIndex>> {
    let n = graph.node_count();
    if let Some(mask) = keep {
        assert_eq!(mask.len(), n, "keep mask must cover every node");
    }
    scratch.reset(n);
    let kept = |node: NodeIndex| keep.is_none_or(|mask| mask[node]);
    let mut next_index = 0usize;
    let mut components: Vec<Vec<NodeIndex>> = Vec::new();

    for start in 0..n {
        if scratch.index_of[start] != UNVISITED || !kept(start) {
            continue;
        }
        scratch.call_stack.push(Frame::Enter(start));
        while let Some(frame) = scratch.call_stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    scratch.index_of[v] = next_index;
                    scratch.lowlink[v] = next_index;
                    next_index += 1;
                    scratch.stack.push(v);
                    scratch.on_stack[v] = true;
                    scratch.call_stack.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut child_position) => {
                    // The CSR slice is indexable, so the frame can resume at
                    // its saved position without rebuilding a successor list.
                    let successors = graph.outgoing_edges(v);
                    let mut descended = false;
                    while child_position < successors.len() {
                        let w = graph.edge_target(successors[child_position]);
                        child_position += 1;
                        if !kept(w) {
                            continue;
                        }
                        if scratch.index_of[w] == UNVISITED {
                            // Descend into w, then resume v afterwards.
                            scratch.call_stack.push(Frame::Resume(v, child_position));
                            scratch.call_stack.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if scratch.on_stack[w] {
                            scratch.lowlink[v] = scratch.lowlink[v].min(scratch.index_of[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors processed: close v.
                    if scratch.lowlink[v] == scratch.index_of[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = scratch.stack.pop().expect("stack non-empty closing root");
                            scratch.on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        component.sort_unstable();
                        components.push(component);
                    }
                    // Propagate lowlink to the parent frame, if any.
                    if let Some(Frame::Resume(parent, _)) = scratch.call_stack.last() {
                        let parent = *parent;
                        scratch.lowlink[parent] = scratch.lowlink[parent].min(scratch.lowlink[v]);
                    }
                }
            }
        }
    }
    components
}

/// Compute all strongly connected components of `graph`.
///
/// Components are returned as vectors of node indices. Every node appears in
/// exactly one component (singletons included). Components are emitted in
/// reverse topological order of the condensation (a property of Tarjan's
/// algorithm), and node indices within a component are sorted ascending for
/// deterministic output.
///
/// Uses a per-thread [`SccScratch`]; callers managing their own buffers can
/// use [`strongly_connected_components_with`].
pub fn strongly_connected_components<N: Eq + Hash + Clone, E>(
    graph: &DiMultiGraph<N, E>,
) -> Vec<Vec<NodeIndex>> {
    with_thread_scratch(|scratch| tarjan(graph, None, scratch))
}

/// [`strongly_connected_components`] with caller-provided scratch buffers.
pub fn strongly_connected_components_with<N: Eq + Hash + Clone, E>(
    graph: &DiMultiGraph<N, E>,
    scratch: &mut SccScratch,
) -> Vec<Vec<NodeIndex>> {
    tarjan(graph, None, scratch)
}

/// The paper's candidate components: strongly connected components with at
/// least two nodes, plus single nodes that carry a self-loop.
pub fn suspicious_components<N: Eq + Hash + Clone, E>(
    graph: &DiMultiGraph<N, E>,
) -> Vec<Vec<NodeIndex>> {
    with_thread_scratch(|scratch| filter_suspicious(graph, tarjan(graph, None, scratch)))
}

/// [`suspicious_components`] restricted to the nodes where `keep` is `true`,
/// computed on the original graph — equivalent to building the subgraph
/// induced by the kept nodes and running [`suspicious_components`] on it,
/// but with no graph construction. Indices in the result are indices into
/// `graph` (not a rebuilt subgraph).
///
/// # Panics
///
/// Panics if `keep.len() != graph.node_count()`.
pub fn suspicious_components_masked<N: Eq + Hash + Clone, E>(
    graph: &DiMultiGraph<N, E>,
    keep: &[bool],
) -> Vec<Vec<NodeIndex>> {
    with_thread_scratch(|scratch| filter_suspicious(graph, tarjan(graph, Some(keep), scratch)))
}

/// [`suspicious_components_masked`] with caller-provided scratch buffers.
pub fn suspicious_components_masked_with<N: Eq + Hash + Clone, E>(
    graph: &DiMultiGraph<N, E>,
    keep: &[bool],
    scratch: &mut SccScratch,
) -> Vec<Vec<NodeIndex>> {
    filter_suspicious(graph, tarjan(graph, Some(keep), scratch))
}

/// Apply the "≥ 2 nodes or self-loop singleton" filter. A self-loop's two
/// endpoints are the same node, so the check is mask-agnostic: a kept
/// singleton's self-loop lies entirely inside any induced subgraph.
fn filter_suspicious<N: Eq + Hash + Clone, E>(
    graph: &DiMultiGraph<N, E>,
    components: Vec<Vec<NodeIndex>>,
) -> Vec<Vec<NodeIndex>> {
    components
        .into_iter()
        .filter(|component| component.len() >= 2 || graph.has_self_loop(component[0]))
        .collect()
}

/// Reference Kosaraju implementation (two DFS passes), used to cross-validate
/// the Tarjan implementation in tests. Returns components with sorted node
/// indices; the set of components is identical to
/// [`strongly_connected_components`] up to ordering.
pub fn kosaraju_scc<N: Eq + Hash + Clone, E>(graph: &DiMultiGraph<N, E>) -> Vec<Vec<NodeIndex>> {
    let n = graph.node_count();
    let mut visited = vec![false; n];
    let mut order: Vec<NodeIndex> = Vec::with_capacity(n);

    // First pass: finish times on the forward graph (iterative DFS over the
    // CSR slices; parallel edges revisit already-marked nodes, harmlessly).
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        visited[start] = true;
        while let Some(&mut (v, ref mut position)) = stack.last_mut() {
            let successors = graph.outgoing_edges(v);
            if *position < successors.len() {
                let w = graph.edge_target(successors[*position]);
                *position += 1;
                if !visited[w] {
                    visited[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }

    // Second pass: DFS on the reverse graph in reverse finish order.
    let mut assigned = vec![usize::MAX; n];
    let mut components: Vec<Vec<NodeIndex>> = Vec::new();
    for &start in order.iter().rev() {
        if assigned[start] != usize::MAX {
            continue;
        }
        let component_id = components.len();
        let mut component = Vec::new();
        let mut stack = vec![start];
        assigned[start] = component_id;
        while let Some(v) = stack.pop() {
            component.push(v);
            for w in graph.predecessors_iter(v) {
                if assigned[w] == usize::MAX {
                    assigned[w] = component_id;
                    stack.push(w);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> DiMultiGraph<usize, ()> {
        let mut graph = DiMultiGraph::new();
        for i in 0..n {
            graph.add_node(i);
        }
        for &(s, t) in edges {
            graph.add_edge(s, t, ());
        }
        graph
    }

    fn normalize(mut components: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        components.sort();
        components
    }

    /// Reference semantics for the masked variant: materialize the induced
    /// subgraph and run the unmasked filter on it.
    fn suspicious_by_rebuild(graph: &DiMultiGraph<usize, ()>, keep: &[bool]) -> Vec<Vec<usize>> {
        let mut filtered: DiMultiGraph<usize, ()> = DiMultiGraph::new();
        for (index, key) in graph.nodes() {
            if keep[index] {
                filtered.add_node(*key);
            }
        }
        for edge in graph.edges() {
            if keep[edge.source] && keep[edge.target] {
                filtered.add_edge_by_key(*graph.node(edge.source), *graph.node(edge.target), ());
            }
        }
        suspicious_components(&filtered)
            .into_iter()
            .map(|component| {
                let mut keys: Vec<usize> = component.iter().map(|&i| *filtered.node(i)).collect();
                keys.sort_unstable();
                keys
            })
            .collect()
    }

    #[test]
    fn single_cycle_is_one_component() {
        let graph = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let sccs = strongly_connected_components(&graph);
        assert_eq!(normalize(sccs), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn dag_has_only_singletons() {
        let graph = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let sccs = strongly_connected_components(&graph);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
        assert!(suspicious_components(&graph).is_empty());
    }

    #[test]
    fn round_trip_pair_is_suspicious() {
        let graph = graph_from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let suspicious = suspicious_components(&graph);
        assert_eq!(normalize(suspicious), vec![vec![0, 1]]);
    }

    #[test]
    fn self_loop_singleton_is_suspicious() {
        let graph = graph_from_edges(2, &[(0, 0), (0, 1)]);
        let suspicious = suspicious_components(&graph);
        assert_eq!(normalize(suspicious), vec![vec![0]]);
    }

    #[test]
    fn singleton_without_self_loop_is_not_suspicious() {
        let graph = graph_from_edges(2, &[(0, 1)]);
        assert!(suspicious_components(&graph).is_empty());
    }

    #[test]
    fn two_separate_cycles() {
        let graph = graph_from_edges(6, &[(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let sccs = normalize(strongly_connected_components(&graph));
        assert!(sccs.contains(&vec![0, 1]));
        assert!(sccs.contains(&vec![2, 3, 4]));
        assert!(sccs.contains(&vec![5]));
        assert_eq!(sccs.len(), 3);
    }

    #[test]
    fn parallel_edges_do_not_change_components() {
        let graph = graph_from_edges(2, &[(0, 1), (0, 1), (1, 0), (1, 0), (1, 0)]);
        let sccs = strongly_connected_components(&graph);
        assert_eq!(normalize(sccs), vec![vec![0, 1]]);
    }

    #[test]
    fn empty_graph() {
        let graph: DiMultiGraph<usize, ()> = DiMultiGraph::new();
        assert!(strongly_connected_components(&graph).is_empty());
        assert!(suspicious_components(&graph).is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 100k-node cycle: a recursive Tarjan would overflow here.
        let n = 100_000;
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        let graph = graph_from_edges(n, &edges);
        let sccs = strongly_connected_components(&graph);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), n);
    }

    #[test]
    fn scratch_is_reusable_across_graphs_of_different_sizes() {
        let mut scratch = SccScratch::new();
        let big = graph_from_edges(50, &(0..49).map(|i| (i, i + 1)).collect::<Vec<_>>());
        assert_eq!(strongly_connected_components_with(&big, &mut scratch).len(), 50);
        let small = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let sccs = strongly_connected_components_with(&small, &mut scratch);
        assert_eq!(normalize(sccs), vec![vec![0, 1, 2]]);
        // And back up again.
        let cycle = graph_from_edges(10, &{
            let mut e: Vec<(usize, usize)> = (0..9).map(|i| (i, i + 1)).collect();
            e.push((9, 0));
            e
        });
        assert_eq!(strongly_connected_components_with(&cycle, &mut scratch).len(), 1);
    }

    #[test]
    fn masked_drops_nodes_and_their_edges() {
        // 0 <-> 1 <-> 2 in a triangle; masking node 1 out leaves 0 and 2
        // disconnected singletons — nothing suspicious remains.
        let graph = graph_from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]);
        let all = suspicious_components_masked(&graph, &[true, true, true]);
        assert_eq!(normalize(all), vec![vec![0, 1, 2]]);
        let masked = suspicious_components_masked(&graph, &[true, false, true]);
        assert_eq!(normalize(masked), vec![vec![0, 2]]);
        let isolated = suspicious_components_masked(&graph, &[true, false, false]);
        assert!(isolated.is_empty());
    }

    #[test]
    fn masked_keeps_self_loop_singletons() {
        let graph = graph_from_edges(3, &[(0, 0), (0, 1), (1, 2)]);
        let masked = suspicious_components_masked(&graph, &[true, false, true]);
        assert_eq!(normalize(masked), vec![vec![0]]);
    }

    #[test]
    fn tarjan_matches_kosaraju_on_fixed_graphs() {
        let cases: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (5, vec![(0, 1), (1, 2), (2, 0), (3, 4)]),
            (6, vec![(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4), (1, 2), (3, 4)]),
            (4, vec![(0, 0), (1, 1), (2, 3), (3, 2)]),
            (7, vec![(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (5, 6), (6, 4)]),
        ];
        for (n, edges) in cases {
            let graph = graph_from_edges(n, &edges);
            assert_eq!(
                normalize(strongly_connected_components(&graph)),
                normalize(kosaraju_scc(&graph)),
                "mismatch on n={n}, edges={edges:?}"
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn tarjan_matches_kosaraju_on_random_graphs(
            n in 1usize..40,
            edges in proptest::collection::vec((0usize..40, 0usize..40), 0..120)
        ) {
            let edges: Vec<(usize, usize)> =
                edges.into_iter().map(|(s, t)| (s % n, t % n)).collect();
            let graph = graph_from_edges(n, &edges);
            let tarjan = normalize(strongly_connected_components(&graph));
            let kosaraju = normalize(kosaraju_scc(&graph));
            proptest::prop_assert_eq!(&tarjan, &kosaraju);
            // Partition property: every node appears exactly once.
            let mut seen: Vec<usize> = tarjan.iter().flatten().copied().collect();
            seen.sort_unstable();
            proptest::prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn suspicious_components_respect_definition(
            n in 1usize..25,
            edges in proptest::collection::vec((0usize..25, 0usize..25), 0..80)
        ) {
            let edges: Vec<(usize, usize)> =
                edges.into_iter().map(|(s, t)| (s % n, t % n)).collect();
            let graph = graph_from_edges(n, &edges);
            for component in suspicious_components(&graph) {
                proptest::prop_assert!(
                    component.len() >= 2 || graph.has_self_loop(component[0])
                );
            }
        }

        #[test]
        fn masked_matches_subgraph_rebuild(
            n in 1usize..20,
            edges in proptest::collection::vec((0usize..20, 0usize..20), 0..60),
            mask_bits in proptest::collection::vec(0usize..2, 20..21)
        ) {
            let edges: Vec<(usize, usize)> =
                edges.into_iter().map(|(s, t)| (s % n, t % n)).collect();
            let graph = graph_from_edges(n, &edges);
            let keep: Vec<bool> = mask_bits[..n].iter().map(|&bit| bit == 1).collect();
            let masked: Vec<Vec<usize>> = suspicious_components_masked(&graph, &keep)
                .into_iter()
                .map(|component| {
                    let mut keys: Vec<usize> =
                        component.iter().map(|&i| *graph.node(i)).collect();
                    keys.sort_unstable();
                    keys
                })
                .collect();
            proptest::prop_assert_eq!(
                normalize(masked),
                normalize(suspicious_by_rebuild(&graph, &keep))
            );
        }
    }
}
