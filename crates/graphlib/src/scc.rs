//! Strongly connected components.
//!
//! The paper finds wash-trading candidates by computing, for each NFT's
//! transaction graph, the strongly connected components "consisting of at
//! least two nodes and including single nodes with a self-loop" using
//! Tarjan's algorithm with Nuutila's modifications (the variant implemented
//! by NetworkX). This module provides:
//!
//! * [`strongly_connected_components`] — an **iterative** Tarjan/Nuutila SCC
//!   over a [`DiMultiGraph`] (iterative so that long trading chains cannot
//!   overflow the call stack),
//! * [`suspicious_components`] — the paper's filtered view (≥ 2 nodes, or a
//!   single node with a self-loop),
//! * [`kosaraju_scc`] — an independent reference implementation used by the
//!   property tests to cross-check Tarjan's output.

use std::hash::Hash;

use crate::multigraph::{DiMultiGraph, NodeIndex};

/// Compute all strongly connected components of `graph`.
///
/// Components are returned as vectors of node indices. Every node appears in
/// exactly one component (singletons included). Components are emitted in
/// reverse topological order of the condensation (a property of Tarjan's
/// algorithm), and node indices within a component are sorted ascending for
/// deterministic output.
pub fn strongly_connected_components<N: Eq + Hash + Clone, E>(
    graph: &DiMultiGraph<N, E>,
) -> Vec<Vec<NodeIndex>> {
    let n = graph.node_count();
    // Dense CSR adjacency, built once: the DFS below revisits a node's
    // successor list every time its frame resumes, so allocating (and
    // re-sorting) it per visit — as `DiMultiGraph::successors` does — was the
    // dominant cost of the search. Parallel edges are deduplicated here, once.
    let mut succ: Vec<Vec<NodeIndex>> = vec![Vec::new(); n];
    for edge in graph.edges() {
        succ[edge.source].push(edge.target);
    }
    for list in &mut succ {
        list.sort_unstable();
        list.dedup();
    }
    // Nuutila/Tarjan bookkeeping.
    const UNVISITED: usize = usize::MAX;
    let mut index_of = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeIndex> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<NodeIndex>> = Vec::new();

    // Explicit DFS frame: (node, iterator position over successors).
    enum Frame {
        Enter(NodeIndex),
        Resume(NodeIndex, usize),
    }

    for start in 0..n {
        if index_of[start] != UNVISITED {
            continue;
        }
        let mut call_stack = vec![Frame::Enter(start)];
        while let Some(frame) = call_stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    index_of[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    call_stack.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut child_position) => {
                    let successors = &succ[v];
                    let mut descended = false;
                    while child_position < successors.len() {
                        let w = successors[child_position];
                        child_position += 1;
                        if index_of[w] == UNVISITED {
                            // Descend into w, then resume v afterwards.
                            call_stack.push(Frame::Resume(v, child_position));
                            call_stack.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index_of[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All successors processed: close v.
                    if lowlink[v] == index_of[v] {
                        let mut component = Vec::new();
                        loop {
                            let w = stack.pop().expect("stack non-empty while closing root");
                            on_stack[w] = false;
                            component.push(w);
                            if w == v {
                                break;
                            }
                        }
                        component.sort_unstable();
                        components.push(component);
                    }
                    // Propagate lowlink to the parent frame, if any.
                    if let Some(Frame::Resume(parent, _)) = call_stack.last() {
                        let parent = *parent;
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
    }
    components
}

/// The paper's candidate components: strongly connected components with at
/// least two nodes, plus single nodes that carry a self-loop.
pub fn suspicious_components<N: Eq + Hash + Clone, E>(
    graph: &DiMultiGraph<N, E>,
) -> Vec<Vec<NodeIndex>> {
    strongly_connected_components(graph)
        .into_iter()
        .filter(|component| component.len() >= 2 || graph.has_self_loop(component[0]))
        .collect()
}

/// Reference Kosaraju implementation (two DFS passes), used to cross-validate
/// the Tarjan implementation in tests. Returns components with sorted node
/// indices; the set of components is identical to
/// [`strongly_connected_components`] up to ordering.
pub fn kosaraju_scc<N: Eq + Hash + Clone, E>(graph: &DiMultiGraph<N, E>) -> Vec<Vec<NodeIndex>> {
    let n = graph.node_count();
    let mut visited = vec![false; n];
    let mut order: Vec<NodeIndex> = Vec::with_capacity(n);

    // First pass: finish times on the forward graph (iterative DFS).
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        visited[start] = true;
        while let Some(&mut (v, ref mut position)) = stack.last_mut() {
            let successors = graph.successors(v);
            if *position < successors.len() {
                let w = successors[*position];
                *position += 1;
                if !visited[w] {
                    visited[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }

    // Second pass: DFS on the reverse graph in reverse finish order.
    let mut assigned = vec![usize::MAX; n];
    let mut components: Vec<Vec<NodeIndex>> = Vec::new();
    for &start in order.iter().rev() {
        if assigned[start] != usize::MAX {
            continue;
        }
        let component_id = components.len();
        let mut component = Vec::new();
        let mut stack = vec![start];
        assigned[start] = component_id;
        while let Some(v) = stack.pop() {
            component.push(v);
            for w in graph.predecessors(v) {
                if assigned[w] == usize::MAX {
                    assigned[w] = component_id;
                    stack.push(w);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> DiMultiGraph<usize, ()> {
        let mut graph = DiMultiGraph::new();
        for i in 0..n {
            graph.add_node(i);
        }
        for &(s, t) in edges {
            graph.add_edge(s, t, ());
        }
        graph
    }

    fn normalize(mut components: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        components.sort();
        components
    }

    #[test]
    fn single_cycle_is_one_component() {
        let graph = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let sccs = strongly_connected_components(&graph);
        assert_eq!(normalize(sccs), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn dag_has_only_singletons() {
        let graph = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let sccs = strongly_connected_components(&graph);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
        assert!(suspicious_components(&graph).is_empty());
    }

    #[test]
    fn round_trip_pair_is_suspicious() {
        let graph = graph_from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let suspicious = suspicious_components(&graph);
        assert_eq!(normalize(suspicious), vec![vec![0, 1]]);
    }

    #[test]
    fn self_loop_singleton_is_suspicious() {
        let graph = graph_from_edges(2, &[(0, 0), (0, 1)]);
        let suspicious = suspicious_components(&graph);
        assert_eq!(normalize(suspicious), vec![vec![0]]);
    }

    #[test]
    fn singleton_without_self_loop_is_not_suspicious() {
        let graph = graph_from_edges(2, &[(0, 1)]);
        assert!(suspicious_components(&graph).is_empty());
    }

    #[test]
    fn two_separate_cycles() {
        let graph = graph_from_edges(6, &[(0, 1), (1, 0), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let sccs = normalize(strongly_connected_components(&graph));
        assert!(sccs.contains(&vec![0, 1]));
        assert!(sccs.contains(&vec![2, 3, 4]));
        assert!(sccs.contains(&vec![5]));
        assert_eq!(sccs.len(), 3);
    }

    #[test]
    fn parallel_edges_do_not_change_components() {
        let graph = graph_from_edges(2, &[(0, 1), (0, 1), (1, 0), (1, 0), (1, 0)]);
        let sccs = strongly_connected_components(&graph);
        assert_eq!(normalize(sccs), vec![vec![0, 1]]);
    }

    #[test]
    fn empty_graph() {
        let graph: DiMultiGraph<usize, ()> = DiMultiGraph::new();
        assert!(strongly_connected_components(&graph).is_empty());
        assert!(suspicious_components(&graph).is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 100k-node cycle: a recursive Tarjan would overflow here.
        let n = 100_000;
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        let graph = graph_from_edges(n, &edges);
        let sccs = strongly_connected_components(&graph);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), n);
    }

    #[test]
    fn tarjan_matches_kosaraju_on_fixed_graphs() {
        let cases: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (5, vec![(0, 1), (1, 2), (2, 0), (3, 4)]),
            (6, vec![(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4), (1, 2), (3, 4)]),
            (4, vec![(0, 0), (1, 1), (2, 3), (3, 2)]),
            (7, vec![(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (5, 6), (6, 4)]),
        ];
        for (n, edges) in cases {
            let graph = graph_from_edges(n, &edges);
            assert_eq!(
                normalize(strongly_connected_components(&graph)),
                normalize(kosaraju_scc(&graph)),
                "mismatch on n={n}, edges={edges:?}"
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn tarjan_matches_kosaraju_on_random_graphs(
            n in 1usize..40,
            edges in proptest::collection::vec((0usize..40, 0usize..40), 0..120)
        ) {
            let edges: Vec<(usize, usize)> =
                edges.into_iter().map(|(s, t)| (s % n, t % n)).collect();
            let graph = graph_from_edges(n, &edges);
            let tarjan = normalize(strongly_connected_components(&graph));
            let kosaraju = normalize(kosaraju_scc(&graph));
            proptest::prop_assert_eq!(&tarjan, &kosaraju);
            // Partition property: every node appears exactly once.
            let mut seen: Vec<usize> = tarjan.iter().flatten().copied().collect();
            seen.sort_unstable();
            proptest::prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn suspicious_components_respect_definition(
            n in 1usize..25,
            edges in proptest::collection::vec((0usize..25, 0usize..25), 0..80)
        ) {
            let edges: Vec<(usize, usize)> =
                edges.into_iter().map(|(s, t)| (s % n, t % n)).collect();
            let graph = graph_from_edges(n, &edges);
            for component in suspicious_components(&graph) {
                proptest::prop_assert!(
                    component.len() >= 2 || graph.has_self_loop(component[0])
                );
            }
        }
    }
}
