//! A directed multigraph keyed by arbitrary node values.
//!
//! The paper builds, for each NFT, a directed multigraph whose nodes are
//! Ethereum accounts and whose edges are individual sales annotated with
//! `(timestamp, tx hash, interacted contract, price)`. This module provides
//! that container generically: nodes are any `Eq + Hash + Clone` key, edges
//! carry an arbitrary payload, and parallel edges and self-loops are allowed.

use std::collections::HashMap;
use std::hash::Hash;

/// Index of a node inside a [`DiMultiGraph`]. Stable for the life of the graph.
pub type NodeIndex = usize;

/// Index of an edge inside a [`DiMultiGraph`]. Stable for the life of the graph.
pub type EdgeIndex = usize;

/// An edge record: endpoints plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge<E> {
    /// Source node index.
    pub source: NodeIndex,
    /// Target node index.
    pub target: NodeIndex,
    /// Edge payload (e.g. sale annotation).
    pub weight: E,
}

/// A directed multigraph with parallel edges and self-loops.
///
/// # Examples
///
/// ```
/// use graphlib::DiMultiGraph;
///
/// let mut graph: DiMultiGraph<&str, u32> = DiMultiGraph::new();
/// let a = graph.add_node("alice");
/// let b = graph.add_node("bob");
/// graph.add_edge(a, b, 1);
/// graph.add_edge(b, a, 2);
/// graph.add_edge(a, b, 3); // parallel edge
/// assert_eq!(graph.edge_count(), 3);
/// assert_eq!(graph.node_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DiMultiGraph<N, E> {
    nodes: Vec<N>,
    node_index: HashMap<N, NodeIndex>,
    edges: Vec<Edge<E>>,
    outgoing: Vec<Vec<EdgeIndex>>,
    incoming: Vec<Vec<EdgeIndex>>,
}

impl<N: Eq + Hash + Clone, E> Default for DiMultiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Eq + Hash + Clone, E> DiMultiGraph<N, E> {
    /// Create an empty graph.
    pub fn new() -> Self {
        DiMultiGraph {
            nodes: Vec::new(),
            node_index: HashMap::new(),
            edges: Vec::new(),
            outgoing: Vec::new(),
            incoming: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (parallel edges counted individually).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a node with the given key, or return the existing index if the key
    /// is already present.
    pub fn add_node(&mut self, key: N) -> NodeIndex {
        if let Some(&index) = self.node_index.get(&key) {
            return index;
        }
        let index = self.nodes.len();
        self.node_index.insert(key.clone(), index);
        self.nodes.push(key);
        self.outgoing.push(Vec::new());
        self.incoming.push(Vec::new());
        index
    }

    /// Look up a node index by key.
    pub fn node_id(&self, key: &N) -> Option<NodeIndex> {
        self.node_index.get(key).copied()
    }

    /// The key stored at a node index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn node(&self, index: NodeIndex) -> &N {
        &self.nodes[index]
    }

    /// Iterate over `(index, key)` pairs of all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeIndex, &N)> {
        self.nodes.iter().enumerate()
    }

    /// Add a directed edge between existing node indices and return its index.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn add_edge(&mut self, source: NodeIndex, target: NodeIndex, weight: E) -> EdgeIndex {
        assert!(source < self.nodes.len(), "source node out of bounds");
        assert!(target < self.nodes.len(), "target node out of bounds");
        let index = self.edges.len();
        self.edges.push(Edge { source, target, weight });
        self.outgoing[source].push(index);
        self.incoming[target].push(index);
        index
    }

    /// Convenience: add an edge by node keys, creating nodes as needed.
    pub fn add_edge_by_key(&mut self, source: N, target: N, weight: E) -> EdgeIndex {
        let s = self.add_node(source);
        let t = self.add_node(target);
        self.add_edge(s, t, weight)
    }

    /// An edge by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn edge(&self, index: EdgeIndex) -> &Edge<E> {
        &self.edges[index]
    }

    /// Iterate over all edges.
    pub fn edges(&self) -> impl Iterator<Item = &Edge<E>> {
        self.edges.iter()
    }

    /// Iterate over `(edge index, edge)` pairs.
    pub fn edge_references(&self) -> impl Iterator<Item = (EdgeIndex, &Edge<E>)> {
        self.edges.iter().enumerate()
    }

    /// Outgoing edge indices from a node.
    pub fn outgoing_edges(&self, node: NodeIndex) -> &[EdgeIndex] {
        &self.outgoing[node]
    }

    /// Incoming edge indices to a node.
    pub fn incoming_edges(&self, node: NodeIndex) -> &[EdgeIndex] {
        &self.incoming[node]
    }

    /// Distinct successor node indices of a node (parallel edges deduplicated).
    pub fn successors(&self, node: NodeIndex) -> Vec<NodeIndex> {
        let mut out: Vec<NodeIndex> =
            self.outgoing[node].iter().map(|&e| self.edges[e].target).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Distinct predecessor node indices of a node.
    pub fn predecessors(&self, node: NodeIndex) -> Vec<NodeIndex> {
        let mut out: Vec<NodeIndex> =
            self.incoming[node].iter().map(|&e| self.edges[e].source).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Out-degree counting parallel edges.
    pub fn out_degree(&self, node: NodeIndex) -> usize {
        self.outgoing[node].len()
    }

    /// In-degree counting parallel edges.
    pub fn in_degree(&self, node: NodeIndex) -> usize {
        self.incoming[node].len()
    }

    /// Whether the node has at least one self-loop.
    pub fn has_self_loop(&self, node: NodeIndex) -> bool {
        self.outgoing[node].iter().any(|&e| self.edges[e].target == node)
    }

    /// All edge indices whose source and target both lie in `nodes`
    /// (self-loops included), in insertion order.
    pub fn edges_within(&self, nodes: &[NodeIndex]) -> Vec<EdgeIndex> {
        let set: std::collections::HashSet<NodeIndex> = nodes.iter().copied().collect();
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, edge)| set.contains(&edge.source) && set.contains(&edge.target))
            .map(|(index, _)| index)
            .collect()
    }

    /// The set of distinct `(source, target)` pairs among `nodes`, expressed in
    /// positions local to the given slice (i.e. `0..nodes.len()`), excluding
    /// nothing — self-loops are kept. This is the "shape" used for pattern
    /// classification.
    pub fn simple_shape_within(&self, nodes: &[NodeIndex]) -> Vec<(usize, usize)> {
        let position: HashMap<NodeIndex, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut shape: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter_map(|edge| match (position.get(&edge.source), position.get(&edge.target)) {
                (Some(&s), Some(&t)) => Some((s, t)),
                _ => None,
            })
            .collect();
        shape.sort_unstable();
        shape.dedup();
        shape
    }
}

impl<N: Eq + Hash + Clone, E> FromIterator<(N, N, E)> for DiMultiGraph<N, E> {
    fn from_iter<T: IntoIterator<Item = (N, N, E)>>(iter: T) -> Self {
        let mut graph = DiMultiGraph::new();
        for (source, target, weight) in iter {
            graph.add_edge_by_key(source, target, weight);
        }
        graph
    }
}

impl<N: Eq + Hash + Clone, E> Extend<(N, N, E)> for DiMultiGraph<N, E> {
    fn extend<T: IntoIterator<Item = (N, N, E)>>(&mut self, iter: T) {
        for (source, target, weight) in iter {
            self.add_edge_by_key(source, target, weight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_node_is_idempotent_per_key() {
        let mut graph: DiMultiGraph<&str, ()> = DiMultiGraph::new();
        let a1 = graph.add_node("a");
        let a2 = graph.add_node("a");
        assert_eq!(a1, a2);
        assert_eq!(graph.node_count(), 1);
        assert_eq!(graph.node(a1), &"a");
        assert_eq!(graph.node_id(&"a"), Some(a1));
        assert_eq!(graph.node_id(&"missing"), None);
    }

    #[test]
    fn parallel_edges_and_degrees() {
        let mut graph: DiMultiGraph<u32, &str> = DiMultiGraph::new();
        let a = graph.add_node(1);
        let b = graph.add_node(2);
        graph.add_edge(a, b, "first");
        graph.add_edge(a, b, "second");
        graph.add_edge(b, a, "back");
        assert_eq!(graph.edge_count(), 3);
        assert_eq!(graph.out_degree(a), 2);
        assert_eq!(graph.in_degree(a), 1);
        assert_eq!(graph.successors(a), vec![b]);
        assert_eq!(graph.predecessors(a), vec![b]);
    }

    #[test]
    fn self_loops() {
        let mut graph: DiMultiGraph<&str, ()> = DiMultiGraph::new();
        let a = graph.add_node("self");
        assert!(!graph.has_self_loop(a));
        graph.add_edge(a, a, ());
        assert!(graph.has_self_loop(a));
        assert_eq!(graph.successors(a), vec![a]);
    }

    #[test]
    fn edges_within_subset() {
        let mut graph: DiMultiGraph<&str, u8> = DiMultiGraph::new();
        let a = graph.add_node("a");
        let b = graph.add_node("b");
        let c = graph.add_node("c");
        graph.add_edge(a, b, 1);
        graph.add_edge(b, a, 2);
        graph.add_edge(b, c, 3);
        graph.add_edge(c, c, 4);
        let within = graph.edges_within(&[a, b]);
        assert_eq!(within.len(), 2);
        let shape = graph.simple_shape_within(&[a, b]);
        assert_eq!(shape, vec![(0, 1), (1, 0)]);
        let shape_all = graph.simple_shape_within(&[a, b, c]);
        assert_eq!(shape_all, vec![(0, 1), (1, 0), (1, 2), (2, 2)]);
    }

    #[test]
    fn from_iterator_builds_by_key() {
        let graph: DiMultiGraph<&str, u32> =
            [("a", "b", 1), ("b", "a", 2), ("a", "b", 3)].into_iter().collect();
        assert_eq!(graph.node_count(), 2);
        assert_eq!(graph.edge_count(), 3);
    }

    #[test]
    #[should_panic]
    fn add_edge_out_of_bounds_panics() {
        let mut graph: DiMultiGraph<&str, ()> = DiMultiGraph::new();
        let a = graph.add_node("a");
        graph.add_edge(a, 99, ());
    }
}
