//! A directed multigraph keyed by arbitrary node values, stored as an
//! arena of struct-of-arrays edge columns with CSR adjacency.
//!
//! The paper builds, for each NFT, a directed multigraph whose nodes are
//! Ethereum accounts and whose edges are individual sales annotated with
//! `(timestamp, tx hash, interacted contract, price)`. This module provides
//! that container generically: nodes are any `Eq + Hash + Clone` key, edges
//! carry an arbitrary payload, and parallel edges and self-loops are allowed.
//!
//! # Layout
//!
//! Edges live in three parallel columns (`sources`, `targets`, `weights`) —
//! an append-only arena; an edge index is a row into all three. Adjacency is
//! a compressed-sparse-row (CSR) view over that arena: one offsets array per
//! direction plus one flat edge-index array, so a node's outgoing (or
//! incoming) edges are a contiguous slice and the whole graph costs a fixed
//! handful of allocations regardless of node count. The per-node
//! `Vec<Vec<EdgeIndex>>` adjacency this replaces allocated two `Vec`s per
//! node and scattered the lists across the heap.
//!
//! The CSR view is built **once**, lazily, at the first adjacency query
//! after construction (a counting sort over the edge columns, `O(V + E)`),
//! and cached; mutating the graph invalidates the cache. The expected
//! lifecycle — build the graph, then analyze it read-only — therefore pays
//! for exactly one build. Pure edge scans ([`DiMultiGraph::edges`],
//! [`DiMultiGraph::edges_within`], …) never need the CSR view at all.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::OnceLock;

/// Index of a node inside a [`DiMultiGraph`]. Stable for the life of the graph.
pub type NodeIndex = usize;

/// Index of an edge inside a [`DiMultiGraph`]. Stable for the life of the graph.
pub type EdgeIndex = usize;

/// A borrowed view of one edge: endpoints plus a reference to the payload.
///
/// This is what [`DiMultiGraph::edges`] and [`DiMultiGraph::edge`] yield;
/// the edge payload itself lives in the graph's struct-of-arrays weight
/// column and is never copied by iteration.
#[derive(Debug)]
pub struct EdgeRef<'a, E> {
    /// Source node index.
    pub source: NodeIndex,
    /// Target node index.
    pub target: NodeIndex,
    /// Borrowed edge payload (e.g. sale annotation).
    pub weight: &'a E,
}

impl<E> Clone for EdgeRef<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<E> Copy for EdgeRef<'_, E> {}

/// The CSR adjacency view: for each direction, `offsets[v]..offsets[v + 1]`
/// is node `v`'s contiguous slice of `edges` (edge indices in insertion
/// order — the same order the per-node `Vec`s used to hold).
#[derive(Debug, Clone, Default)]
struct CsrTopology {
    out_offsets: Vec<u32>,
    out_edges: Vec<EdgeIndex>,
    in_offsets: Vec<u32>,
    in_edges: Vec<EdgeIndex>,
}

impl CsrTopology {
    /// Counting sort of the edge arena by source (and by target), `O(V + E)`.
    /// Stable: within a node's slice, edge indices ascend — i.e. insertion
    /// order, matching the per-node-`Vec` layout this view replaces.
    fn build(nodes: usize, sources: &[NodeIndex], targets: &[NodeIndex]) -> CsrTopology {
        let edge_count = sources.len();
        let mut topology = CsrTopology {
            out_offsets: vec![0u32; nodes + 1],
            out_edges: vec![0; edge_count],
            in_offsets: vec![0u32; nodes + 1],
            in_edges: vec![0; edge_count],
        };
        for &source in sources {
            topology.out_offsets[source + 1] += 1;
        }
        for &target in targets {
            topology.in_offsets[target + 1] += 1;
        }
        for v in 0..nodes {
            topology.out_offsets[v + 1] += topology.out_offsets[v];
            topology.in_offsets[v + 1] += topology.in_offsets[v];
        }
        let mut out_cursor: Vec<u32> = topology.out_offsets[..nodes].to_vec();
        let mut in_cursor: Vec<u32> = topology.in_offsets[..nodes].to_vec();
        for (edge, (&source, &target)) in sources.iter().zip(targets).enumerate() {
            topology.out_edges[out_cursor[source] as usize] = edge;
            out_cursor[source] += 1;
            topology.in_edges[in_cursor[target] as usize] = edge;
            in_cursor[target] += 1;
        }
        topology
    }

    fn outgoing(&self, node: NodeIndex) -> &[EdgeIndex] {
        &self.out_edges[self.out_offsets[node] as usize..self.out_offsets[node + 1] as usize]
    }

    fn incoming(&self, node: NodeIndex) -> &[EdgeIndex] {
        &self.in_edges[self.in_offsets[node] as usize..self.in_offsets[node + 1] as usize]
    }
}

/// Lazily-built, mutation-invalidated cache of the CSR adjacency view.
///
/// `OnceLock` gives interior mutability that stays `Sync` (concurrent
/// readers may race to build; one wins, the results are identical), while
/// every `&mut self` mutation path resets the cell.
#[derive(Debug, Default)]
struct TopologyCache(OnceLock<CsrTopology>);

impl Clone for TopologyCache {
    fn clone(&self) -> Self {
        let cache = TopologyCache::default();
        if let Some(csr) = self.0.get() {
            let _ = cache.0.set(csr.clone());
        }
        cache
    }
}

/// A directed multigraph with parallel edges and self-loops.
///
/// # Examples
///
/// ```
/// use graphlib::DiMultiGraph;
///
/// let mut graph: DiMultiGraph<&str, u32> = DiMultiGraph::new();
/// let a = graph.add_node("alice");
/// let b = graph.add_node("bob");
/// graph.add_edge(a, b, 1);
/// graph.add_edge(b, a, 2);
/// graph.add_edge(a, b, 3); // parallel edge
/// assert_eq!(graph.edge_count(), 3);
/// assert_eq!(graph.node_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DiMultiGraph<N, E> {
    nodes: Vec<N>,
    node_index: HashMap<N, NodeIndex>,
    /// Edge arena, struct-of-arrays: row `e` of the three columns is edge `e`.
    sources: Vec<NodeIndex>,
    targets: Vec<NodeIndex>,
    weights: Vec<E>,
    topology: TopologyCache,
}

impl<N: Eq + Hash + Clone, E> Default for DiMultiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Eq + Hash + Clone, E> DiMultiGraph<N, E> {
    /// Create an empty graph.
    pub fn new() -> Self {
        DiMultiGraph {
            nodes: Vec::new(),
            node_index: HashMap::new(),
            sources: Vec::new(),
            targets: Vec::new(),
            weights: Vec::new(),
            topology: TopologyCache::default(),
        }
    }

    /// Create an empty graph with room for `nodes` nodes and `edges` edges —
    /// batch builders that know their row count ahead of time (per-NFT graph
    /// construction) use this to avoid incremental column growth.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiMultiGraph {
            nodes: Vec::with_capacity(nodes),
            node_index: HashMap::with_capacity(nodes),
            sources: Vec::with_capacity(edges),
            targets: Vec::with_capacity(edges),
            weights: Vec::with_capacity(edges),
            topology: TopologyCache::default(),
        }
    }

    /// The CSR adjacency view, building it on first use after a mutation.
    #[inline]
    fn csr(&self) -> &CsrTopology {
        self.topology
            .0
            .get_or_init(|| CsrTopology::build(self.nodes.len(), &self.sources, &self.targets))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges (parallel edges counted individually).
    pub fn edge_count(&self) -> usize {
        self.sources.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Add a node with the given key, or return the existing index if the key
    /// is already present.
    pub fn add_node(&mut self, key: N) -> NodeIndex {
        if let Some(&index) = self.node_index.get(&key) {
            return index;
        }
        let index = self.nodes.len();
        self.node_index.insert(key.clone(), index);
        self.nodes.push(key);
        self.topology.0.take();
        index
    }

    /// Look up a node index by key.
    pub fn node_id(&self, key: &N) -> Option<NodeIndex> {
        self.node_index.get(key).copied()
    }

    /// The key stored at a node index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn node(&self, index: NodeIndex) -> &N {
        &self.nodes[index]
    }

    /// Iterate over `(index, key)` pairs of all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeIndex, &N)> {
        self.nodes.iter().enumerate()
    }

    /// Add a directed edge between existing node indices and return its index.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn add_edge(&mut self, source: NodeIndex, target: NodeIndex, weight: E) -> EdgeIndex {
        assert!(source < self.nodes.len(), "source node out of bounds");
        assert!(target < self.nodes.len(), "target node out of bounds");
        let index = self.sources.len();
        self.sources.push(source);
        self.targets.push(target);
        self.weights.push(weight);
        self.topology.0.take();
        index
    }

    /// Convenience: add an edge by node keys, creating nodes as needed.
    pub fn add_edge_by_key(&mut self, source: N, target: N, weight: E) -> EdgeIndex {
        let s = self.add_node(source);
        let t = self.add_node(target);
        self.add_edge(s, t, weight)
    }

    /// An edge by index, as a borrowed [`EdgeRef`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn edge(&self, index: EdgeIndex) -> EdgeRef<'_, E> {
        EdgeRef {
            source: self.sources[index],
            target: self.targets[index],
            weight: &self.weights[index],
        }
    }

    /// The source node of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn edge_source(&self, index: EdgeIndex) -> NodeIndex {
        self.sources[index]
    }

    /// The target node of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn edge_target(&self, index: EdgeIndex) -> NodeIndex {
        self.targets[index]
    }

    /// The payload of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    pub fn edge_weight(&self, index: EdgeIndex) -> &E {
        &self.weights[index]
    }

    /// Iterate over all edges in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.sources
            .iter()
            .zip(&self.targets)
            .zip(&self.weights)
            .map(|((&source, &target), weight)| EdgeRef { source, target, weight })
    }

    /// Iterate over `(edge index, edge)` pairs.
    pub fn edge_references(&self) -> impl Iterator<Item = (EdgeIndex, EdgeRef<'_, E>)> {
        self.edges().enumerate()
    }

    /// Outgoing edge indices from a node, as a contiguous CSR slice in
    /// insertion order.
    pub fn outgoing_edges(&self, node: NodeIndex) -> &[EdgeIndex] {
        self.csr().outgoing(node)
    }

    /// Incoming edge indices to a node, as a contiguous CSR slice in
    /// insertion order.
    pub fn incoming_edges(&self, node: NodeIndex) -> &[EdgeIndex] {
        self.csr().incoming(node)
    }

    /// Iterate the targets of a node's outgoing edges, in insertion order —
    /// one entry **per parallel edge** (no deduplication, no allocation).
    /// Traversals with a visited set (DFS/BFS/SCC) want exactly this; for
    /// sorted-distinct successors, collect and `sort_unstable` + `dedup` at
    /// the call site.
    pub fn successors_iter(&self, node: NodeIndex) -> impl Iterator<Item = NodeIndex> + '_ {
        self.outgoing_edges(node).iter().map(|&edge| self.targets[edge])
    }

    /// Iterate the sources of a node's incoming edges, in insertion order —
    /// one entry **per parallel edge** (no deduplication, no allocation).
    pub fn predecessors_iter(&self, node: NodeIndex) -> impl Iterator<Item = NodeIndex> + '_ {
        self.incoming_edges(node).iter().map(|&edge| self.sources[edge])
    }

    /// Out-degree counting parallel edges.
    pub fn out_degree(&self, node: NodeIndex) -> usize {
        self.outgoing_edges(node).len()
    }

    /// In-degree counting parallel edges.
    pub fn in_degree(&self, node: NodeIndex) -> usize {
        self.incoming_edges(node).len()
    }

    /// Whether the node has at least one self-loop.
    pub fn has_self_loop(&self, node: NodeIndex) -> bool {
        self.successors_iter(node).any(|target| target == node)
    }

    /// All edge indices whose source and target both lie in `nodes`
    /// (self-loops included), in insertion order.
    pub fn edges_within(&self, nodes: &[NodeIndex]) -> Vec<EdgeIndex> {
        let set: std::collections::HashSet<NodeIndex> = nodes.iter().copied().collect();
        self.sources
            .iter()
            .zip(&self.targets)
            .enumerate()
            .filter(|(_, (source, target))| set.contains(source) && set.contains(target))
            .map(|(index, _)| index)
            .collect()
    }

    /// The set of distinct `(source, target)` pairs among `nodes`, expressed in
    /// positions local to the given slice (i.e. `0..nodes.len()`), excluding
    /// nothing — self-loops are kept. This is the "shape" used for pattern
    /// classification.
    pub fn simple_shape_within(&self, nodes: &[NodeIndex]) -> Vec<(usize, usize)> {
        let position: HashMap<NodeIndex, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut shape: Vec<(usize, usize)> = self
            .sources
            .iter()
            .zip(&self.targets)
            .filter_map(|(source, target)| match (position.get(source), position.get(target)) {
                (Some(&s), Some(&t)) => Some((s, t)),
                _ => None,
            })
            .collect();
        shape.sort_unstable();
        shape.dedup();
        shape
    }
}

impl<N: Eq + Hash + Clone, E> FromIterator<(N, N, E)> for DiMultiGraph<N, E> {
    fn from_iter<T: IntoIterator<Item = (N, N, E)>>(iter: T) -> Self {
        let mut graph = DiMultiGraph::new();
        for (source, target, weight) in iter {
            graph.add_edge_by_key(source, target, weight);
        }
        graph
    }
}

impl<N: Eq + Hash + Clone, E> Extend<(N, N, E)> for DiMultiGraph<N, E> {
    fn extend<T: IntoIterator<Item = (N, N, E)>>(&mut self, iter: T) {
        for (source, target, weight) in iter {
            self.add_edge_by_key(source, target, weight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_node_is_idempotent_per_key() {
        let mut graph: DiMultiGraph<&str, ()> = DiMultiGraph::new();
        let a1 = graph.add_node("a");
        let a2 = graph.add_node("a");
        assert_eq!(a1, a2);
        assert_eq!(graph.node_count(), 1);
        assert_eq!(graph.node(a1), &"a");
        assert_eq!(graph.node_id(&"a"), Some(a1));
        assert_eq!(graph.node_id(&"missing"), None);
    }

    #[test]
    fn parallel_edges_and_degrees() {
        let mut graph: DiMultiGraph<u32, &str> = DiMultiGraph::new();
        let a = graph.add_node(1);
        let b = graph.add_node(2);
        graph.add_edge(a, b, "first");
        graph.add_edge(a, b, "second");
        graph.add_edge(b, a, "back");
        assert_eq!(graph.edge_count(), 3);
        assert_eq!(graph.out_degree(a), 2);
        assert_eq!(graph.in_degree(a), 1);
        // Parallel edges appear once per edge; dedup is a call-site concern.
        assert_eq!(graph.successors_iter(a).collect::<Vec<_>>(), vec![b, b]);
        assert_eq!(graph.predecessors_iter(a).collect::<Vec<_>>(), vec![b]);
        let mut distinct: Vec<_> = graph.successors_iter(a).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct, vec![b]);
    }

    #[test]
    fn csr_slices_match_insertion_order() {
        let mut graph: DiMultiGraph<u32, u8> = DiMultiGraph::new();
        let a = graph.add_node(1);
        let b = graph.add_node(2);
        let c = graph.add_node(3);
        let e0 = graph.add_edge(a, b, 10);
        let e1 = graph.add_edge(b, c, 11);
        let e2 = graph.add_edge(a, c, 12);
        let e3 = graph.add_edge(a, b, 13);
        assert_eq!(graph.outgoing_edges(a), &[e0, e2, e3]);
        assert_eq!(graph.outgoing_edges(b), &[e1]);
        assert_eq!(graph.outgoing_edges(c), &[] as &[EdgeIndex]);
        assert_eq!(graph.incoming_edges(b), &[e0, e3]);
        assert_eq!(graph.incoming_edges(c), &[e1, e2]);
        assert_eq!(graph.edge_source(e2), a);
        assert_eq!(graph.edge_target(e2), c);
        assert_eq!(graph.edge_weight(e2), &12);
        let view = graph.edge(e3);
        assert_eq!((view.source, view.target, *view.weight), (a, b, 13));
    }

    #[test]
    fn csr_rebuilds_after_mutation() {
        let mut graph: DiMultiGraph<u32, ()> = DiMultiGraph::new();
        let a = graph.add_node(1);
        let b = graph.add_node(2);
        graph.add_edge(a, b, ());
        assert_eq!(graph.out_degree(a), 1); // builds the CSR view
        let c = graph.add_node(3); // invalidates it
        graph.add_edge(b, c, ());
        graph.add_edge(a, c, ());
        assert_eq!(graph.out_degree(a), 2);
        assert_eq!(graph.in_degree(c), 2);
        assert_eq!(graph.successors_iter(a).collect::<Vec<_>>(), vec![b, c]);
    }

    #[test]
    fn clone_preserves_structure_and_cache() {
        let mut graph: DiMultiGraph<&str, u8> = DiMultiGraph::new();
        graph.add_edge_by_key("a", "b", 1);
        graph.add_edge_by_key("b", "a", 2);
        let _ = graph.outgoing_edges(0); // force the CSR build
        let clone = graph.clone();
        assert_eq!(clone.node_count(), 2);
        assert_eq!(clone.edge_count(), 2);
        assert_eq!(clone.outgoing_edges(0), graph.outgoing_edges(0));
        assert_eq!(clone.incoming_edges(1), graph.incoming_edges(1));
    }

    #[test]
    fn self_loops() {
        let mut graph: DiMultiGraph<&str, ()> = DiMultiGraph::new();
        let a = graph.add_node("self");
        assert!(!graph.has_self_loop(a));
        graph.add_edge(a, a, ());
        assert!(graph.has_self_loop(a));
        assert_eq!(graph.successors_iter(a).collect::<Vec<_>>(), vec![a]);
        assert_eq!(graph.predecessors_iter(a).collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn edges_within_subset() {
        let mut graph: DiMultiGraph<&str, u8> = DiMultiGraph::new();
        let a = graph.add_node("a");
        let b = graph.add_node("b");
        let c = graph.add_node("c");
        graph.add_edge(a, b, 1);
        graph.add_edge(b, a, 2);
        graph.add_edge(b, c, 3);
        graph.add_edge(c, c, 4);
        let within = graph.edges_within(&[a, b]);
        assert_eq!(within.len(), 2);
        let shape = graph.simple_shape_within(&[a, b]);
        assert_eq!(shape, vec![(0, 1), (1, 0)]);
        let shape_all = graph.simple_shape_within(&[a, b, c]);
        assert_eq!(shape_all, vec![(0, 1), (1, 0), (1, 2), (2, 2)]);
    }

    #[test]
    fn from_iterator_builds_by_key() {
        let graph: DiMultiGraph<&str, u32> =
            [("a", "b", 1), ("b", "a", 2), ("a", "b", 3)].into_iter().collect();
        assert_eq!(graph.node_count(), 2);
        assert_eq!(graph.edge_count(), 3);
    }

    #[test]
    fn with_capacity_starts_empty() {
        let graph: DiMultiGraph<&str, ()> = DiMultiGraph::with_capacity(8, 16);
        assert!(graph.is_empty());
        assert_eq!(graph.edge_count(), 0);
    }

    #[test]
    #[should_panic]
    fn add_edge_out_of_bounds_panics() {
        let mut graph: DiMultiGraph<&str, ()> = DiMultiGraph::new();
        let a = graph.add_node("a");
        graph.add_edge(a, 99, ());
    }
}
