//! # graphlib — graph analysis primitives for wash-trading detection
//!
//! The paper's methodology is graph-centric: every NFT gets a directed
//! multigraph of its sales, candidate manipulations are the strongly
//! connected components of those graphs (computed with Tarjan's algorithm
//! plus Nuutila's modifications, the NetworkX variant), and confirmed
//! activities are classified by the isomorphism class of their component
//! shape (Fig. 7). This crate is the reproduction's substitute for NetworkX:
//!
//! * [`DiMultiGraph`] — a directed multigraph with parallel edges and
//!   self-loops, generic over node keys and edge payloads;
//! * [`scc::strongly_connected_components`] / [`scc::suspicious_components`]
//!   — iterative Tarjan SCC plus the paper's "≥ 2 nodes or self-loop
//!   singleton" filter, property-tested against a Kosaraju reference;
//! * [`pattern::PatternCatalogue`] — canonical forms for small digraphs and
//!   the 12-pattern Fig. 7 catalogue.
//!
//! # Example
//!
//! ```
//! use graphlib::{DiMultiGraph, scc::suspicious_components, pattern::PatternCatalogue};
//!
//! // Two accounts round-tripping an NFT, plus an uninvolved buyer.
//! let mut graph: DiMultiGraph<&str, ()> = DiMultiGraph::new();
//! graph.add_edge_by_key("washer-a", "washer-b", ());
//! graph.add_edge_by_key("washer-b", "washer-a", ());
//! graph.add_edge_by_key("washer-b", "victim", ());
//!
//! let components = suspicious_components(&graph);
//! assert_eq!(components.len(), 1);
//! let shape = graph.simple_shape_within(&components[0]);
//! let catalogue = PatternCatalogue::paper();
//! let pattern = catalogue.classify(components[0].len(), &shape).unwrap();
//! assert_eq!(pattern.0, 1); // the paper's "round trip" pattern
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod multigraph;
pub mod pattern;
pub mod scc;

pub use multigraph::{DiMultiGraph, EdgeIndex, EdgeRef, NodeIndex};
pub use pattern::{CanonicalDigraph, PatternCatalogue, PatternId, PatternSpec};
pub use scc::{
    kosaraju_scc, strongly_connected_components, strongly_connected_components_with,
    suspicious_components, suspicious_components_masked, suspicious_components_masked_with,
    SccScratch,
};
