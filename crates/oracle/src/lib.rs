//! # oracle — deterministic USD price series
//!
//! The paper converts ETH amounts and reward tokens (LOOKS, RARI) into USD
//! "on the day tokens were claimed or spent", using historical market prices.
//! This reproduction has no access to (and no need for) the historical feed;
//! instead the [`PriceOracle`] serves deterministic, seeded daily price
//! series whose magnitudes are anchored to the paper's period (ETH around
//! $3,000–4,000 in late 2021 / early 2022, LOOKS a few dollars, RARI in the
//! tens). The profitability analysis (§VI) only depends on prices being
//! *consistent* across the pipeline, which the oracle guarantees.
//!
//! # Example
//!
//! ```
//! use ethsim::{Timestamp, Wei};
//! use oracle::PriceOracle;
//!
//! let genesis = Timestamp::from_secs(1_609_459_200); // 2021-01-01
//! let oracle = PriceOracle::paper_presets(genesis, 500, 42);
//! let usd = oracle.wei_to_usd(Wei::from_eth(2.0), genesis.plus_days(30)).unwrap();
//! assert!(usd > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use ethsim::{Timestamp, Wei};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Symbol of the native currency series.
pub const ETH: &str = "ETH";
/// Symbol of the LooksRare reward token.
pub const LOOKS: &str = "LOOKS";
/// Symbol of the Rarible reward token.
pub const RARI: &str = "RARI";
/// Symbol of the USD stablecoin series (constant 1.0).
pub const USDC: &str = "USDC";

/// A daily USD price series starting at a fixed day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceSeries {
    /// Day index (days since the unix epoch) of the first sample.
    pub start_day: u64,
    /// One USD price per day, starting at `start_day`.
    pub daily_prices: Vec<f64>,
}

impl PriceSeries {
    /// A constant price for `days` days.
    pub fn constant(start: Timestamp, days: usize, price: f64) -> Self {
        PriceSeries { start_day: start.day(), daily_prices: vec![price; days.max(1)] }
    }

    /// A seeded geometric-Brownian-like path: each day the log-price moves by
    /// `drift + volatility * z` where `z` is a standard normal sample
    /// (Box–Muller over the seeded ChaCha stream).
    ///
    /// # Panics
    ///
    /// Panics if `start_price` is not strictly positive or `days` is zero.
    pub fn geometric(
        seed: u64,
        start: Timestamp,
        days: usize,
        start_price: f64,
        drift: f64,
        volatility: f64,
    ) -> Self {
        assert!(start_price > 0.0, "start price must be positive");
        assert!(days > 0, "series must cover at least one day");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut prices = Vec::with_capacity(days);
        let mut price = start_price;
        for _ in 0..days {
            prices.push(price);
            // Box–Muller transform for a standard normal sample.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            price *= (drift + volatility * z).exp();
            // Keep the series bounded away from zero so conversions stay sane.
            price = price.max(start_price * 1e-3);
        }
        PriceSeries { start_day: start.day(), daily_prices: prices }
    }

    /// The price on a given day index. Days before the series start or after
    /// its end are clamped to the first/last sample, so late claims still get
    /// a well-defined price (mirroring how a real feed would be extended).
    pub fn price_on_day(&self, day: u64) -> f64 {
        if self.daily_prices.is_empty() {
            return 0.0;
        }
        let offset = day.saturating_sub(self.start_day) as usize;
        let index = offset.min(self.daily_prices.len() - 1);
        self.daily_prices[index]
    }

    /// The price at a timestamp (bucketed by day, as the paper does).
    pub fn price_at(&self, at: Timestamp) -> f64 {
        self.price_on_day(at.day())
    }

    /// Number of days covered.
    pub fn len(&self) -> usize {
        self.daily_prices.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.daily_prices.is_empty()
    }
}

/// A collection of price series keyed by symbol.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PriceOracle {
    series: HashMap<String, PriceSeries>,
}

impl PriceOracle {
    /// An empty oracle.
    pub fn new() -> Self {
        PriceOracle::default()
    }

    /// An oracle with ETH, LOOKS, RARI and USDC series whose magnitudes match
    /// the paper's study period, deterministically derived from `seed`.
    pub fn paper_presets(start: Timestamp, days: usize, seed: u64) -> Self {
        let mut oracle = PriceOracle::new();
        oracle.add_series(
            ETH,
            PriceSeries::geometric(seed ^ 0x01, start, days, 3_373.0, 0.0005, 0.03),
        );
        oracle.add_series(
            LOOKS,
            PriceSeries::geometric(seed ^ 0x02, start, days, 3.84, -0.001, 0.06),
        );
        oracle.add_series(
            RARI,
            PriceSeries::geometric(seed ^ 0x03, start, days, 14.2, -0.0005, 0.05),
        );
        oracle.add_series(USDC, PriceSeries::constant(start, days, 1.0));
        oracle
    }

    /// Register (or replace) a series for a symbol.
    pub fn add_series(&mut self, symbol: impl Into<String>, series: PriceSeries) {
        self.series.insert(symbol.into(), series);
    }

    /// The series for a symbol, if registered.
    pub fn series(&self, symbol: &str) -> Option<&PriceSeries> {
        self.series.get(symbol)
    }

    /// The USD price of one unit of `symbol` at `at`.
    pub fn usd_price(&self, symbol: &str, at: Timestamp) -> Option<f64> {
        self.series.get(symbol).map(|s| s.price_at(at))
    }

    /// Convert an ETH amount (in wei) to USD at `at`.
    pub fn wei_to_usd(&self, amount: Wei, at: Timestamp) -> Option<f64> {
        self.usd_price(ETH, at).map(|price| amount.to_eth() * price)
    }

    /// Convert a token amount expressed in base units with `decimals` decimal
    /// places into USD at `at`.
    pub fn token_to_usd(
        &self,
        symbol: &str,
        base_units: u128,
        decimals: u32,
        at: Timestamp,
    ) -> Option<f64> {
        let scale = 10f64.powi(decimals as i32);
        self.usd_price(symbol, at).map(|price| base_units as f64 / scale * price)
    }

    /// Registered symbols.
    pub fn symbols(&self) -> Vec<&str> {
        let mut symbols: Vec<&str> = self.series.keys().map(|s| s.as_str()).collect();
        symbols.sort_unstable();
        symbols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> Timestamp {
        Timestamp::from_secs(1_609_459_200)
    }

    #[test]
    fn constant_series_is_flat_and_clamped() {
        let series = PriceSeries::constant(start(), 10, 1.0);
        assert_eq!(series.price_at(start()), 1.0);
        assert_eq!(series.price_at(start().plus_days(9)), 1.0);
        // Clamped outside the covered range.
        assert_eq!(series.price_at(start().plus_days(100)), 1.0);
        assert_eq!(series.price_on_day(0), 1.0);
        assert_eq!(series.len(), 10);
        assert!(!series.is_empty());
    }

    #[test]
    fn geometric_series_is_deterministic_per_seed() {
        let a = PriceSeries::geometric(7, start(), 100, 3000.0, 0.0, 0.02);
        let b = PriceSeries::geometric(7, start(), 100, 3000.0, 0.0, 0.02);
        let c = PriceSeries::geometric(8, start(), 100, 3000.0, 0.0, 0.02);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.daily_prices.iter().all(|p| *p > 0.0));
    }

    #[test]
    #[should_panic]
    fn geometric_series_rejects_non_positive_start() {
        let _ = PriceSeries::geometric(1, start(), 10, 0.0, 0.0, 0.01);
    }

    #[test]
    fn oracle_conversions() {
        let oracle = PriceOracle::paper_presets(start(), 400, 42);
        let t = start().plus_days(100);
        let eth_price = oracle.usd_price(ETH, t).unwrap();
        assert!(eth_price > 100.0, "ETH price should stay in a plausible range");
        let usd = oracle.wei_to_usd(Wei::from_eth(2.0), t).unwrap();
        assert!((usd - 2.0 * eth_price).abs() < 1e-6);
        // 18-decimal LOOKS token conversion.
        let looks_price = oracle.usd_price(LOOKS, t).unwrap();
        let usd_tokens = oracle.token_to_usd(LOOKS, 5 * 10u128.pow(18), 18, t).unwrap();
        assert!((usd_tokens - 5.0 * looks_price).abs() < 1e-6);
        assert_eq!(oracle.usd_price(USDC, t), Some(1.0));
        assert_eq!(oracle.usd_price("UNKNOWN", t), None);
        assert_eq!(oracle.symbols(), vec![ETH, LOOKS, RARI, USDC]);
    }

    #[test]
    fn unknown_symbol_conversions_return_none() {
        let oracle = PriceOracle::new();
        assert_eq!(oracle.wei_to_usd(Wei::from_eth(1.0), start()), None);
        assert_eq!(oracle.token_to_usd("LOOKS", 1, 18, start()), None);
        assert!(oracle.symbols().is_empty());
    }

    proptest::proptest! {
        #[test]
        fn price_lookup_never_panics_and_is_positive(
            seed in 0u64..1000,
            day_offset in 0u64..2000,
        ) {
            let series = PriceSeries::geometric(seed, start(), 365, 3000.0, 0.0, 0.05);
            let price = series.price_at(start().plus_days(day_offset));
            proptest::prop_assert!(price > 0.0);
        }
    }
}
