//! Closed-loop load generator for the serving subsystem: reader threads
//! drive a realistic query mix against a [`QueryService`] whose publisher a
//! live analyzer keeps re-ingesting into, across reader-thread counts.
//!
//! Besides the criterion latency numbers on the cheap small world, a manual
//! measurement pass on the standard experiments workload writes a `serving`
//! section into `BENCH_results.json`:
//!
//! ```json
//! "serving": {
//!   "world": …, "query_mix_size": …, "ingestion_concurrent": true,
//!   "runs": [ { "reader_threads": …, "queries": …, "elapsed_ns": …,
//!               "qps": …, "p50_ns": …, "p99_ns": …,
//!               "cache_hit_rate": … }, … ],
//!   "peak_qps": …,
//!   "cached_mean_ns": …, "uncached_mean_ns": …, "cached_speedup": …
//! }
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use bench_suite::input_of;
use bench_suite::json::Json;
use bench_suite::results::{merge_section, results_path};
use criterion::{criterion_group, Criterion};
use ethsim::{Address, BlockNumber};
use tokens::NftId;
use washtrade::pipeline::AnalysisInput;
use washtrade_serve::{CacheConfig, Query, QueryService, Snapshot, SnapshotPublisher};
use washtrade_stream::{StreamAnalyzer, StreamOptions};

/// A query mix shaped like explorer traffic, drawn from a converged
/// snapshot: mostly point lookups (NFT status, account dossiers), some
/// windowed feeds and rankings, a few rollups.
fn build_mix(snapshot: &Snapshot) -> Vec<Query> {
    let mut mix = vec![
        Query::Stats,
        Query::TopMovers(10),
        Query::TopCollections(5),
        Query::Marketplaces,
        Query::SuspectsSince(BlockNumber(0)),
        Query::SuspectsSince(BlockNumber(snapshot.watermark().0 / 2)),
        Query::SuspectsBetween(
            BlockNumber(snapshot.watermark().0 / 4),
            BlockNumber(snapshot.watermark().0 / 2),
        ),
        Query::Nft(NftId::new(Address::derived("no-such-collection"), 404)),
        Query::Account(Address::derived("uninvolved-bystander")),
    ];
    let suspects = snapshot.suspects();
    for index in 0..8 {
        if let Some(summary) = suspects.get(index * suspects.len().max(1) / 8) {
            mix.push(Query::Nft(summary.nft));
        }
    }
    let accounts = snapshot.accounts();
    for index in 0..8 {
        if let Some(account) = accounts.get(index * accounts.len().max(1) / 8) {
            mix.push(Query::Account(*account));
        }
    }
    mix
}

struct RunStats {
    reader_threads: usize,
    queries: usize,
    elapsed_ns: u64,
    qps: f64,
    p50_ns: u64,
    p99_ns: u64,
    cache_hit_rate: f64,
}

/// One closed-loop run: `reader_threads` readers issue `per_thread` queries
/// each (every reader starts its walk through the mix at a different offset)
/// while a generation loop keeps re-ingesting the chain into the shared
/// publisher — so epochs keep publishing, and the cache keeps getting
/// invalidated, for the whole measurement window.
fn measure_run(
    input: AnalysisInput<'_>,
    warm: &Snapshot,
    budgets: &[u64],
    mix: &[Query],
    reader_threads: usize,
    per_thread: usize,
) -> RunStats {
    let publisher = SnapshotPublisher::with_initial(warm.clone());
    let service = QueryService::new(publisher.clone());
    let done = AtomicBool::new(false);

    let mut latencies: Vec<u64> = Vec::with_capacity(reader_threads * per_thread);
    let mut elapsed_ns = 0u64;
    let started = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            // Ingestion generations: re-tail the chain from scratch into the
            // same publisher until the readers are finished.
            while !done.load(Ordering::Acquire) {
                let mut analyzer = StreamAnalyzer::with_publisher(
                    input,
                    StreamOptions::default(),
                    publisher.clone(),
                );
                for budget in budgets {
                    if done.load(Ordering::Acquire) || analyzer.ingest_epoch(*budget).is_none() {
                        break;
                    }
                }
            }
        });
        let readers: Vec<_> = (0..reader_threads)
            .map(|reader| {
                let service = service.clone();
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(per_thread);
                    for index in 0..per_thread {
                        let query = &mix[(reader * 7 + index) % mix.len()];
                        let issued = Instant::now();
                        let served = service.query(query);
                        local.push(issued.elapsed().as_nanos() as u64);
                        std::hint::black_box(&served);
                    }
                    local
                })
            })
            .collect();
        for reader in readers {
            latencies.extend(reader.join().expect("reader thread"));
        }
        // The measurement window closes when the last reader finishes; the
        // scope still has to wait for the writer's in-flight epoch, which
        // must not count against the query throughput.
        elapsed_ns = started.elapsed().as_nanos() as u64;
        done.store(true, Ordering::Release);
    });

    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        latencies[((latencies.len() - 1) as f64 * p) as usize]
    };
    RunStats {
        reader_threads,
        queries: latencies.len(),
        elapsed_ns,
        qps: latencies.len() as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        p50_ns: percentile(0.50),
        p99_ns: percentile(0.99),
        cache_hit_rate: service.cache_stats().hit_rate(),
    }
}

/// Mean latency of `passes` walks over the mix against a static snapshot,
/// with the given cache configuration — the cached-vs-uncached comparison.
fn mean_latency_ns(snapshot: &Snapshot, mix: &[Query], config: CacheConfig, passes: usize) -> f64 {
    let service =
        QueryService::with_cache(SnapshotPublisher::with_initial(snapshot.clone()), config);
    // Warm-up pass: populates the cache (a no-op when disabled).
    for query in mix {
        std::hint::black_box(service.query(query));
    }
    let started = Instant::now();
    let mut queries = 0usize;
    for _ in 0..passes {
        for query in mix {
            std::hint::black_box(service.query(query));
            queries += 1;
        }
    }
    started.elapsed().as_nanos() as f64 / queries.max(1) as f64
}

/// Criterion timings on the cheap small world: single-query latency for a
/// point lookup, a ranking and the stats line, cache on.
fn bench_query_latency(c: &mut Criterion) {
    let world = bench_suite::build_small_world(1);
    let input = input_of(&world);
    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    live.run_to_tip(u64::MAX);
    let snapshot = live.snapshot();
    let service = QueryService::new(live.publisher());
    let nft = snapshot.suspects().first().map(|s| s.nft);
    let account = snapshot.accounts().first().copied();

    let mut group = c.benchmark_group("query_throughput");
    group.bench_function("stats", |b| b.iter(|| service.query(&Query::Stats)));
    group.bench_function("top_movers_10", |b| b.iter(|| service.query(&Query::TopMovers(10))));
    if let Some(nft) = nft {
        group.bench_function("nft_point_lookup", |b| b.iter(|| service.query(&Query::Nft(nft))));
    }
    if let Some(account) = account {
        group.bench_function("account_dossier", |b| {
            b.iter(|| service.query(&Query::Account(account)))
        });
    }
    group.finish();
}

/// The measured pass on the standard experiments workload (`serving`
/// section), plus one at the large sweep scale (`serving_large`) so future
/// PRs have a scale baseline, recorded into `BENCH_results.json`.
fn record_results() {
    record_world(bench_suite::build_world(0.02, 7), "paper_scaled(7, 0.02)", "serving", 50_000);
    record_world(
        bench_suite::build_sized_world(workload::WorldScale::Large),
        "large",
        "serving_large",
        20_000,
    );
}

fn record_world(world: workload::World, world_label: &str, section_name: &str, per_thread: usize) {
    let input = input_of(&world);
    let budgets = world.epoch_plan(8).budgets();

    // Converge once to get the steady-state snapshot the mix is drawn from
    // (and the initial snapshot each run starts serving).
    let mut warm_analyzer = StreamAnalyzer::new(input, StreamOptions::default());
    warm_analyzer.run_to_tip(u64::MAX);
    let warm = warm_analyzer.snapshot();
    let mix = build_mix(&warm);
    assert!(
        warm.stats().confirmed_activities > 0,
        "the serving bench needs a world with detections"
    );

    let mut runs = Vec::new();
    let mut peak_qps = 0.0f64;
    for reader_threads in [1usize, 2, 4] {
        let run = measure_run(input, &warm, &budgets, &mix, reader_threads, per_thread);
        println!(
            "serving: {} reader(s) → {:.0} queries/sec (p50 {} ns, p99 {} ns, hit rate {:.1}%)",
            run.reader_threads,
            run.qps,
            run.p50_ns,
            run.p99_ns,
            run.cache_hit_rate * 100.0
        );
        peak_qps = peak_qps.max(run.qps);
        runs.push(run);
    }

    let cached_mean_ns = mean_latency_ns(&warm, &mix, CacheConfig::default(), 40);
    let uncached_mean_ns = mean_latency_ns(&warm, &mix, CacheConfig::disabled(), 40);
    let cached_speedup = uncached_mean_ns / cached_mean_ns.max(1.0);
    println!(
        "serving: cached {cached_mean_ns:.0} ns vs uncached {uncached_mean_ns:.0} ns per query \
         ({cached_speedup:.2}× speedup)"
    );

    let mut section = Json::object();
    section.set("world", Json::Str(world_label.to_string()));
    section.set("query_mix_size", Json::Int(mix.len() as i64));
    section.set("ingestion_concurrent", Json::Bool(true));
    section.set(
        "runs",
        Json::Arr(
            runs.iter()
                .map(|run| {
                    let mut entry = Json::object();
                    entry.set("reader_threads", Json::Int(run.reader_threads as i64));
                    entry.set("queries", Json::Int(run.queries as i64));
                    entry.set("elapsed_ns", Json::Int(run.elapsed_ns as i64));
                    entry.set("qps", Json::Float(run.qps));
                    entry.set("p50_ns", Json::Int(run.p50_ns as i64));
                    entry.set("p99_ns", Json::Int(run.p99_ns as i64));
                    entry.set("cache_hit_rate", Json::Float(run.cache_hit_rate));
                    entry
                })
                .collect(),
        ),
    );
    section.set("peak_qps", Json::Float(peak_qps));
    section.set("cached_mean_ns", Json::Float(cached_mean_ns));
    section.set("uncached_mean_ns", Json::Float(uncached_mean_ns));
    section.set("cached_speedup", Json::Float(cached_speedup));

    let path = results_path();
    merge_section(&path, section_name, section).expect("write BENCH_results.json");
    println!("{section_name} numbers recorded in {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_query_latency
}

fn main() {
    benches();
    record_results();
}
