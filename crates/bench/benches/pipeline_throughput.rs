//! Pipeline-throughput benchmark for the interned-ID columnar core: runs the
//! staged pipeline on the standard experiments workload, records per-stage
//! wall times, transfers/sec and resident bytes per transfer, and reports
//! speedups against the recorded cross-PR baselines — PR-2 (map-based
//! pipeline, on the workload it was captured on) and PR-5 (pre
//! parallel-commit / arena-graph, on the large sweep world).
//!
//! The measured pass merges a `columnar` section into `BENCH_results.json`:
//!
//! ```json
//! "columnar": {
//!   "end_to_end_ns": …, "transfers_per_sec": …,
//!   "resident_bytes_per_transfer": …,
//!   "baseline_pr2_end_to_end_ns": …, "speedup_vs_pr2_end_to_end": …,
//!   "stages": [{ "stage": …, "wall_time_ns": …,
//!                "baseline_pr2_ns": …, "speedup_vs_pr2": … }, …]
//! }
//! ```
//!
//! and a `columnar_large` section of the same shape carrying
//! `baseline_pr5_ns` / `speedup_vs_pr5` per stage plus
//! `speedup_vs_pr5_end_to_end` — the trajectory gate for the refine and
//! graph-construction hotspots this sweep world exercises. Stage timings are
//! the best of three passes, so one scheduler hiccup cannot distort the
//! recorded trajectory.

use std::time::Instant;

use bench_suite::json::Json;
use bench_suite::results::{merge_section, results_path};
use bench_suite::{pr2_baseline, pr5_baseline};
use criterion::{criterion_group, Criterion};
use washtrade::dataset::Dataset;
use washtrade::pipeline::{analyze_with, AnalysisOptions, AnalysisReport};

/// Which cross-PR baseline a recorded world compares against (only
/// meaningful on the world the baseline was captured on).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Baseline {
    Pr2,
    Pr5,
}

/// Criterion timings on the cheap small world: the dataset build (interning
/// + columnar append) and the full staged pipeline.
fn bench_pipeline_throughput(c: &mut Criterion) {
    let world = bench_suite::build_small_world(1);
    let input = bench_suite::input_of(&world);

    let mut group = c.benchmark_group("pipeline_throughput");
    group.bench_function("intern_and_columnize_dataset", |b| {
        b.iter(|| Dataset::build(&world.chain, &world.directory).transfer_count())
    });
    group.bench_function("end_to_end_columnar", |b| {
        b.iter(|| analyze_with(input, AnalysisOptions::default()).detection.confirmed.len())
    });
    group.finish();
}

/// One measured pass at the standard experiments scale, recorded into the
/// `columnar` section of `BENCH_results.json`, plus one at the large sweep
/// scale (`columnar_large`) so future PRs inherit a scale baseline beyond
/// the small worlds.
fn record_results() {
    // The same workload the PR-2 baseline was captured on.
    record_world(
        bench_suite::build_world(0.02, 7),
        "paper_scaled(7, 0.02)",
        "columnar",
        Baseline::Pr2,
    );
    // The same world the PR-5 baseline was captured on.
    record_world(
        bench_suite::build_sized_world(workload::WorldScale::Large),
        "large",
        "columnar_large",
        Baseline::Pr5,
    );
}

/// Best-of-three full pipeline pass: the run with the smallest stage total
/// wins, so the recorded stages describe one coherent low-noise pass.
fn measure_pipeline(input: washtrade::pipeline::AnalysisInput<'_>) -> (u64, AnalysisReport) {
    let mut best: Option<(u64, u64, AnalysisReport)> = None;
    for _ in 0..3 {
        let started = Instant::now();
        let report = analyze_with(input, AnalysisOptions::default());
        let end_to_end_ns = started.elapsed().as_nanos() as u64;
        let stage_total_ns: u64 = report.stage_metrics.iter().map(|m| m.wall_time_ns).sum();
        if best.as_ref().is_none_or(|(fastest, _, _)| stage_total_ns < *fastest) {
            best = Some((stage_total_ns, end_to_end_ns, report));
        }
    }
    let (_, end_to_end_ns, report) = best.expect("three runs happened");
    (end_to_end_ns, report)
}

/// Measure one world's staged pipeline and merge it under `section`,
/// attaching the stage speedups of `baseline`.
fn record_world(world: workload::World, world_label: &str, section_name: &str, baseline: Baseline) {
    let input = bench_suite::input_of(&world);
    let (end_to_end_ns, report) = measure_pipeline(input);

    // Memory accounting: the columnar store plus the interner tables,
    // divided by the transfers they hold.
    let dataset = Dataset::build(&world.chain, &world.directory);
    let resident_bytes = dataset.columns.resident_bytes() + dataset.interner.resident_bytes();
    let transfers = dataset.transfer_count() as u64;

    let mut stages = Vec::new();
    for metrics in &report.stage_metrics {
        let mut stage = Json::object();
        stage.set("stage", Json::Str(metrics.stage.clone()));
        stage.set("wall_time_ns", Json::Int(metrics.wall_time_ns as i64));
        let recorded = match baseline {
            Baseline::Pr2 => pr2_baseline::STAGES_NS
                .iter()
                .find(|(name, _)| *name == metrics.stage)
                .map(|(_, ns)| *ns),
            Baseline::Pr5 => pr5_baseline::for_stage(&metrics.stage),
        };
        if let Some(baseline_ns) = recorded {
            let (key_ns, key_speedup) = match baseline {
                Baseline::Pr2 => ("baseline_pr2_ns", "speedup_vs_pr2"),
                Baseline::Pr5 => ("baseline_pr5_ns", "speedup_vs_pr5"),
            };
            stage.set(key_ns, Json::Int(baseline_ns as i64));
            stage.set(
                key_speedup,
                Json::Float(baseline_ns as f64 / metrics.wall_time_ns.max(1) as f64),
            );
        }
        stages.push(stage);
    }
    let stage_total_ns: u64 = report.stage_metrics.iter().map(|m| m.wall_time_ns).sum();

    let mut section = Json::object();
    section.set("world", Json::Str(world_label.to_string()));
    section.set("transfers", Json::Int(transfers as i64));
    section.set("end_to_end_ns", Json::Int(end_to_end_ns as i64));
    section.set("stage_total_ns", Json::Int(stage_total_ns as i64));
    section.set(
        "transfers_per_sec",
        Json::Float(transfers as f64 / (end_to_end_ns.max(1) as f64 / 1e9)),
    );
    section.set("resident_bytes", Json::Int(resident_bytes as i64));
    section.set(
        "resident_bytes_per_transfer",
        Json::Float(resident_bytes as f64 / transfers.max(1) as f64),
    );
    match baseline {
        Baseline::Pr2 => {
            section
                .set("baseline_pr2_end_to_end_ns", Json::Int(pr2_baseline::END_TO_END_NS as i64));
            section.set(
                "speedup_vs_pr2_end_to_end",
                Json::Float(pr2_baseline::END_TO_END_NS as f64 / stage_total_ns.max(1) as f64),
            );
        }
        Baseline::Pr5 => {
            section
                .set("baseline_pr5_stage_total_ns", Json::Int(pr5_baseline::STAGE_TOTAL_NS as i64));
            section.set(
                "speedup_vs_pr5_end_to_end",
                Json::Float(pr5_baseline::STAGE_TOTAL_NS as f64 / stage_total_ns.max(1) as f64),
            );
        }
    }
    section.set("stages", Json::Arr(stages));

    let path = results_path();
    merge_section(&path, section_name, section).expect("write BENCH_results.json");
    println!("{section_name} pipeline numbers recorded in {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline_throughput
}

fn main() {
    benches();
    record_results();
}
