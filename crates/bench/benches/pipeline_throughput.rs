//! Pipeline-throughput benchmark for the interned-ID columnar core: runs the
//! staged pipeline on the standard experiments workload, records per-stage
//! wall times, transfers/sec and resident bytes per transfer, and reports
//! the speedup against the recorded PR-2 (map-based) baseline.
//!
//! The measured pass merges a `columnar` section into `BENCH_results.json`:
//!
//! ```json
//! "columnar": {
//!   "end_to_end_ns": …, "transfers_per_sec": …,
//!   "resident_bytes_per_transfer": …,
//!   "baseline_pr2_end_to_end_ns": …, "speedup_vs_pr2_end_to_end": …,
//!   "stages": [{ "stage": …, "wall_time_ns": …,
//!                "baseline_pr2_ns": …, "speedup_vs_pr2": … }, …]
//! }
//! ```

use std::time::Instant;

use bench_suite::json::Json;
use bench_suite::pr2_baseline;
use bench_suite::results::{merge_section, results_path};
use criterion::{criterion_group, Criterion};
use washtrade::dataset::Dataset;
use washtrade::pipeline::{analyze_with, AnalysisOptions};

/// Criterion timings on the cheap small world: the dataset build (interning
/// + columnar append) and the full staged pipeline.
fn bench_pipeline_throughput(c: &mut Criterion) {
    let world = bench_suite::build_small_world(1);
    let input = bench_suite::input_of(&world);

    let mut group = c.benchmark_group("pipeline_throughput");
    group.bench_function("intern_and_columnize_dataset", |b| {
        b.iter(|| Dataset::build(&world.chain, &world.directory).transfer_count())
    });
    group.bench_function("end_to_end_columnar", |b| {
        b.iter(|| analyze_with(input, AnalysisOptions::default()).detection.confirmed.len())
    });
    group.finish();
}

/// One measured pass at the standard experiments scale, recorded into the
/// `columnar` section of `BENCH_results.json`, plus one at the large sweep
/// scale (`columnar_large`) so future PRs inherit a scale baseline beyond
/// the small worlds.
fn record_results() {
    // The same workload the PR-2 baseline was captured on.
    record_world(bench_suite::build_world(0.02, 7), "paper_scaled(7, 0.02)", "columnar", true);
    record_world(
        bench_suite::build_sized_world(workload::WorldScale::Large),
        "large",
        "columnar_large",
        false,
    );
}

/// Measure one world's staged pipeline and merge it under `section`;
/// `with_pr2` attaches the recorded PR-2 stage baselines (only meaningful on
/// the world they were captured on).
fn record_world(world: workload::World, world_label: &str, section_name: &str, with_pr2: bool) {
    let input = bench_suite::input_of(&world);

    let started = Instant::now();
    let report = analyze_with(input, AnalysisOptions::default());
    let end_to_end_ns = started.elapsed().as_nanos() as u64;

    // Memory accounting: the columnar store plus the interner tables,
    // divided by the transfers they hold.
    let dataset = Dataset::build(&world.chain, &world.directory);
    let resident_bytes = dataset.columns.resident_bytes() + dataset.interner.resident_bytes();
    let transfers = dataset.transfer_count() as u64;

    let mut stages = Vec::new();
    for metrics in &report.stage_metrics {
        let mut stage = Json::object();
        stage.set("stage", Json::Str(metrics.stage.clone()));
        stage.set("wall_time_ns", Json::Int(metrics.wall_time_ns as i64));
        if with_pr2 {
            if let Some((_, baseline_ns)) =
                pr2_baseline::STAGES_NS.iter().find(|(name, _)| *name == metrics.stage)
            {
                stage.set("baseline_pr2_ns", Json::Int(*baseline_ns as i64));
                stage.set(
                    "speedup_vs_pr2",
                    Json::Float(*baseline_ns as f64 / metrics.wall_time_ns.max(1) as f64),
                );
            }
        }
        stages.push(stage);
    }
    let stage_total_ns: u64 = report.stage_metrics.iter().map(|m| m.wall_time_ns).sum();

    let mut section = Json::object();
    section.set("world", Json::Str(world_label.to_string()));
    section.set("transfers", Json::Int(transfers as i64));
    section.set("end_to_end_ns", Json::Int(end_to_end_ns as i64));
    section.set("stage_total_ns", Json::Int(stage_total_ns as i64));
    section.set(
        "transfers_per_sec",
        Json::Float(transfers as f64 / (end_to_end_ns.max(1) as f64 / 1e9)),
    );
    section.set("resident_bytes", Json::Int(resident_bytes as i64));
    section.set(
        "resident_bytes_per_transfer",
        Json::Float(resident_bytes as f64 / transfers.max(1) as f64),
    );
    if with_pr2 {
        section.set("baseline_pr2_end_to_end_ns", Json::Int(pr2_baseline::END_TO_END_NS as i64));
        section.set(
            "speedup_vs_pr2_end_to_end",
            Json::Float(pr2_baseline::END_TO_END_NS as f64 / stage_total_ns.max(1) as f64),
        );
    }
    section.set("stages", Json::Arr(stages));

    let path = results_path();
    merge_section(&path, section_name, section).expect("write BENCH_results.json");
    println!("{section_name} pipeline numbers recorded in {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline_throughput
}

fn main() {
    benches();
    record_results();
}
