//! Criterion benchmarks of each pipeline stage, measured on the small test
//! world. Every stage maps to a step of the paper's methodology:
//! dataset construction (§III, Table I), graph construction (§IV-A),
//! refinement (§IV-B), detection (§IV-C/D, Fig. 2), characterization (§V,
//! Table II / Figs. 3–7) and profitability (§VI, Table III).
//!
//! Besides timing each step in isolation, `bench_staged_pipeline` runs the
//! staged driver end to end and prints the per-stage `StageMetrics` wall
//! times the pipeline records about itself.

use criterion::{criterion_group, criterion_main, Criterion};
use washtrade::{
    characterize::characterize,
    dataset::Dataset,
    detect::Detector,
    pipeline::{analyze_with, AnalysisInput, AnalysisOptions},
    profit::{analyze_resales, analyze_rewards},
    refine::Refiner,
    report,
    txgraph::NftGraph,
};

fn bench_pipeline_stages(c: &mut Criterion) {
    let world = bench_suite::build_small_world(1);
    let mut group = c.benchmark_group("pipeline_stages");

    group.bench_function("table1_dataset_build", |b| {
        b.iter(|| Dataset::build(&world.chain, &world.directory))
    });

    let dataset = Dataset::build(&world.chain, &world.directory);
    group.bench_function("sec4a_graph_construction", |b| {
        b.iter(|| NftGraph::from_dataset(&dataset))
    });

    // The graph table is NftKey-indexed: no keyed map is needed anywhere.
    let graphs = NftGraph::from_dataset(&dataset);
    group.bench_function("sec4b_refinement", |b| {
        b.iter(|| Refiner::new(&world.chain, &world.labels, &dataset.interner).refine(&graphs))
    });

    let (candidates, _) =
        Refiner::new(&world.chain, &world.labels, &dataset.interner).refine(&graphs);
    group.bench_function("fig2_detection", |b| {
        b.iter(|| {
            Detector::new(&world.chain, &world.labels, &dataset.interner)
                .detect(&candidates, &graphs)
        })
    });

    let detection =
        Detector::new(&world.chain, &world.labels, &dataset.interner).detect(&candidates, &graphs);
    group.bench_function("table2_fig3to7_characterization", |b| {
        b.iter(|| characterize(&detection.confirmed, &dataset, &world.directory, &world.oracle))
    });

    group.bench_function("table3_reward_profitability", |b| {
        b.iter(|| {
            analyze_rewards(
                &detection.confirmed,
                &world.chain,
                &world.directory,
                &world.oracle,
                &dataset.interner,
            )
        })
    });

    group.bench_function("sec6b_resale_profitability", |b| {
        b.iter(|| {
            analyze_resales(
                &detection.confirmed,
                &world.chain,
                &world.directory,
                &world.oracle,
                &graphs,
                &dataset.interner,
            )
        })
    });

    group.finish();
}

/// The staged driver end to end, at one thread and at all cores, followed by
/// the per-stage `StageMetrics` breakdown of a representative run.
fn bench_staged_pipeline(c: &mut Criterion) {
    let world = bench_suite::build_small_world(1);
    let input = AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    };
    let mut group = c.benchmark_group("staged_pipeline");
    group.bench_function("end_to_end_1_thread", |b| {
        b.iter(|| analyze_with(input, AnalysisOptions::single_threaded()))
    });
    group.bench_function("end_to_end_all_cores", |b| {
        b.iter(|| analyze_with(input, AnalysisOptions::default()))
    });
    group.finish();

    let report = analyze_with(input, AnalysisOptions::default());
    println!("{}", report::render_stage_metrics(&report.stage_metrics));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipeline_stages, bench_staged_pipeline
}
criterion_main!(benches);
