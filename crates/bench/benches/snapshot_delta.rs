//! Snapshot-delta benchmarks: per-epoch publish cost of the delta-encoded
//! snapshot path versus a full from-scratch rebuild, across world sizes.
//!
//! The criterion group times the tip-state costs on the small world; the
//! manual measurement pass streams the small and large sweep worlds epoch by
//! epoch, reading each published snapshot's [`SnapshotBuildStats`] (publish
//! ns, chunk-reuse ratio) and separately timing `rebuild_full_snapshot()` at
//! the same epoch, then records a `snapshot_delta` section into
//! `BENCH_results.json`: per-epoch publish ns vs world size, chunk reuse,
//! and the steady-state delta-vs-full speedup (target: ≥5× on the large
//! world).

use std::time::Instant;

use bench_suite::input_of;
use bench_suite::json::Json;
use bench_suite::results::{merge_section, results_path};
use criterion::{criterion_group, Criterion};
use washtrade_stream::{StreamAnalyzer, StreamOptions};

fn bench_snapshot_delta(c: &mut Criterion) {
    let world = bench_suite::build_small_world(1);
    let input = input_of(&world);
    let plan = world.epoch_plan(8);
    let budgets = plan.budgets();

    // An analyzer parked at the tip: every iteration below re-reads the same
    // converged state, so the two timings isolate snapshot construction.
    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    for budget in &budgets {
        live.ingest_epoch(*budget);
    }

    let mut group = c.benchmark_group("snapshot_delta");
    group.bench_function("full_rebuild_at_tip", |b| {
        b.iter(|| live.rebuild_full_snapshot().stats().confirmed_activities)
    });
    group.bench_function("stream_to_tip_with_delta_publishes", |b| {
        b.iter(|| {
            let mut fresh = StreamAnalyzer::new(input, StreamOptions::default());
            for budget in &budgets {
                fresh.ingest_epoch(*budget);
            }
            fresh.snapshot().build_stats().records_reused
        })
    });
    group.finish();
}

/// Stream one world to the tip, pairing every published epoch's delta build
/// stats with a timed full rebuild of the same state. Returns the per-world
/// JSON blob for the `snapshot_delta` section.
fn measure_world(world: &workload::World, label: &str, epochs: usize) -> Json {
    let input = input_of(world);
    let plan = world.epoch_plan(epochs);

    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    let publisher = live.publisher();
    let mut publish_ns = Vec::new();
    let mut full_ns = Vec::new();
    let mut reuse_ratios = Vec::new();
    let mut delta_epochs = 0u64;
    for budget in plan.budgets() {
        if live.ingest_epoch(budget).is_none() {
            break;
        }
        let build = publisher.load().build_stats();
        publish_ns.push(build.build_ns);
        reuse_ratios.push(build.chunk_reuse_ratio());
        delta_epochs += u64::from(build.delta);

        let started = Instant::now();
        let full = live.rebuild_full_snapshot();
        full_ns.push(started.elapsed().as_nanos() as u64);
        assert_eq!(
            full,
            publisher.load(),
            "delta-published snapshot must equal the full rebuild ({label})"
        );
    }

    // Steady state: the last quarter of the run. Early epochs stream a
    // still-small, fast-growing world where each epoch's delta is a large
    // fraction of everything seen so far; by the last quarter the world has
    // mostly accumulated and the per-epoch delta is small relative to it —
    // the regime delta publishing exists for, and the one the speedup
    // target is defined over. (Full per-epoch arrays are recorded either
    // way, so the crossover is visible in the results file.)
    let steady = (publish_ns.len() * 3 / 4).max(1)..publish_ns.len();
    let mean = |values: &[u64]| values.iter().sum::<u64>() / values.len().max(1) as u64;
    let steady_publish = mean(&publish_ns[steady.clone()]);
    let steady_full = mean(&full_ns[steady.clone()]);
    // The headline speedup is the median of the per-epoch paired ratios,
    // not a ratio of window means: each epoch's publish and full rebuild
    // run moments apart, so background-load spikes land in one side of a
    // pair and throw that epoch's ratio far off in one direction — the
    // median shrugs those epochs off where a mean would absorb them. The
    // full per-epoch arrays are recorded below either way.
    let mut ratios: Vec<f64> = steady
        .clone()
        .map(|epoch| full_ns[epoch] as f64 / publish_ns[epoch].max(1) as f64)
        .collect();
    ratios.sort_by(f64::total_cmp);
    let speedup = ratios[ratios.len() / 2];
    let steady_reuse =
        reuse_ratios[steady.clone()].iter().sum::<f64>() / steady.len().max(1) as f64;

    let mut section = Json::object();
    section.set("world", Json::Str(label.to_string()));
    section.set("epochs", Json::Int(publish_ns.len() as i64));
    section.set("delta_epochs", Json::Int(delta_epochs as i64));
    section
        .set("publish_ns", Json::Arr(publish_ns.iter().map(|ns| Json::Int(*ns as i64)).collect()));
    section.set(
        "full_rebuild_ns",
        Json::Arr(full_ns.iter().map(|ns| Json::Int(*ns as i64)).collect()),
    );
    section.set(
        "chunk_reuse_ratio",
        Json::Arr(reuse_ratios.iter().map(|ratio| Json::Float(*ratio)).collect()),
    );
    section.set("steady_state_publish_ns", Json::Int(steady_publish as i64));
    section.set("steady_state_full_rebuild_ns", Json::Int(steady_full as i64));
    section.set("steady_state_chunk_reuse", Json::Float(steady_reuse));
    section.set("speedup_delta_vs_full", Json::Float(speedup));
    println!(
        "  {label:<9} {} epochs: steady-state publish {steady_publish} ns, \
         full rebuild {steady_full} ns, {speedup:.1}x (median of paired ratios), \
         reuse {steady_reuse:.3}",
        publish_ns.len()
    );
    section
}

/// Record the `snapshot_delta` section: the small test world and the large
/// sweep world, so publish cost versus world size (and its scaling with the
/// epoch delta rather than the world) is visible PR over PR.
fn record_results() {
    // 96 epochs over the large world keeps the per-epoch delta small
    // relative to the world — the steady-state regime the delta path is
    // built for (a day's trades against months of accumulated history).
    let worlds = vec![
        measure_world(&bench_suite::build_small_world(1), "small(1)", 8),
        measure_world(&bench_suite::build_sized_world(workload::WorldScale::Large), "large", 96),
    ];

    let mut section = Json::object();
    section.set("worlds", Json::Arr(worlds));

    let path = results_path();
    merge_section(&path, "snapshot_delta", section).expect("write BENCH_results.json");
    println!("snapshot_delta numbers recorded in {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_snapshot_delta
}

fn main() {
    benches();
    record_results();
}
