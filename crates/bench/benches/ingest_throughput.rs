//! Ingest-throughput scale sweep: the three-phase (parallel decode →
//! serial reconcile → parallel splice) dataset build, measured over world
//! size × thread count, against two baselines:
//!
//! * `pr4_baseline` — the `build_dataset` stage of the PR-4 binary on the
//!   same worlds and host (recorded constants, the cross-PR trajectory),
//! * the same-binary [`bench_suite::legacy`] path — the old materializing
//!   serial algorithm recompiled against the current substrate, isolating
//!   the two-phase pipeline's own contribution from the substrate wins
//!   (hash-free log scans, Fx-hashed maps) that speed both paths up.
//!
//! Every sweep point is verified: the built dataset must be bit-identical to
//! the legacy baseline's, and the end-to-end `AnalysisReport` must render
//! byte-identically at every thread count before any timing is recorded.
//!
//! The measured pass merges an `ingest` section into `BENCH_results.json`:
//!
//! ```json
//! "ingest": {
//!   "host_threads": …, "thread_counts": [1, 2, 4, 8],
//!   "worlds": [ { "scale": …, "transfers": …, "blocks": …,
//!                 "baseline_pr4_ns": …, "baseline_materializing_ns": …,
//!                 "report_identical_across_threads": true,
//!                 "runs": [ { "threads": …, "wall_ns": …, "decode_ns": …,
//!                             "commit_ns": …, "reconcile_ns": …,
//!                             "shards": …, "transfers_per_sec": …,
//!                             "speedup_vs_pr4": …,
//!                             "speedup_vs_materializing": … }, … ],
//!                 "commit_scaling": [ { "threads": …, "commit_ns": …,
//!                                       "speedup_vs_serial_commit": …,
//!                                       "efficiency": … }, … ] }, … ],
//!   "build_dataset_speedup_large_8_threads": …,
//!   "scaling_efficiency": …
//! }
//! ```
//!
//! `commit_scaling` is the commit-phase thread-scaling curve: at each thread
//! count, the commit's speedup over the same world's single-thread (fully
//! serial) commit, and that speedup divided by the thread count
//! (`efficiency`, 1.0 = perfect scaling). The section-level
//! `scaling_efficiency` is the large world's efficiency at 8 threads — the
//! headline number for how well the parallel commit saturates cores.

use std::time::Instant;

use bench_suite::json::Json;
use bench_suite::results::{merge_section, results_path};
use bench_suite::{input_of, legacy, pr4_baseline};
use criterion::{criterion_group, Criterion};
use ethsim::BlockNumber;
use washtrade::dataset::Dataset;
use washtrade::ingest::IngestMetrics;
use washtrade::parallel::Executor;
use washtrade::pipeline::{analyze_with, AnalysisOptions};
use washtrade::report::render_deterministic;
use workload::WorldScale;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Criterion timings on the small sweep world: the legacy materializing path
/// versus the sharded path at one and at eight threads.
fn bench_ingest_throughput(c: &mut Criterion) {
    let world = bench_suite::build_sized_world(WorldScale::Small);

    let mut group = c.benchmark_group("ingest_throughput");
    group.bench_function("materializing_serial_baseline", |b| {
        b.iter(|| legacy::materializing_ingest(&world.chain, &world.directory).transfer_count())
    });
    group.bench_function("three_phase_1_thread", |b| {
        let executor = Executor::new(1);
        b.iter(|| Dataset::build_with(&world.chain, &world.directory, &executor).transfer_count())
    });
    group.bench_function("three_phase_8_threads", |b| {
        let executor = Executor::new(8);
        b.iter(|| Dataset::build_with(&world.chain, &world.directory, &executor).transfer_count())
    });
    group.finish();
}

/// Best-of-three instrumented build, so one scheduler hiccup cannot distort
/// the recorded trajectory.
fn measure_build(world: &workload::World, executor: &Executor) -> (u64, IngestMetrics, Dataset) {
    let mut best: Option<(u64, IngestMetrics, Dataset)> = None;
    for _ in 0..3 {
        let started = Instant::now();
        let mut dataset = Dataset::default();
        let (_, metrics) = dataset.ingest_blocks_instrumented(
            &world.chain,
            &world.directory,
            BlockNumber(0),
            world.chain.current_block_number(),
            executor,
        );
        let wall_ns = started.elapsed().as_nanos() as u64;
        if best.as_ref().is_none_or(|(fastest, _, _)| wall_ns < *fastest) {
            best = Some((wall_ns, metrics, dataset));
        }
    }
    best.expect("three runs happened")
}

fn measure_legacy(world: &workload::World) -> (u64, Dataset) {
    let mut best: Option<(u64, Dataset)> = None;
    for _ in 0..3 {
        let started = Instant::now();
        let dataset = legacy::materializing_ingest(&world.chain, &world.directory);
        let wall_ns = started.elapsed().as_nanos() as u64;
        if best.as_ref().is_none_or(|(fastest, _)| wall_ns < *fastest) {
            best = Some((wall_ns, dataset));
        }
    }
    best.expect("three runs happened")
}

/// The sweep: world size × thread count, every point equality-checked,
/// recorded into the `ingest` section of `BENCH_results.json`.
fn record_results() {
    let mut worlds = Vec::new();
    let mut headline: Option<f64> = None;
    let mut scaling_headline: Option<f64> = None;

    for scale in WorldScale::ALL {
        let world = bench_suite::build_sized_world(scale);
        let input = input_of(&world);
        let blocks = world.chain.current_block_number().0 + 1;

        let (legacy_ns, reference) = measure_legacy(&world);
        let (pr4_ns, pr4_transfers) =
            pr4_baseline::for_scale(scale.label()).expect("every sweep scale has a baseline");
        assert_eq!(
            reference.transfer_count() as u64,
            pr4_transfers,
            "{}: the sweep world drifted from the one the PR-4 baseline was recorded on",
            scale.label()
        );

        // End-to-end determinism gate: the full report must render
        // byte-identically at every swept thread count.
        let baseline_report = render_deterministic(&analyze_with(
            input,
            AnalysisOptions { threads: 1, collect_metrics: false },
        ));

        let mut runs = Vec::new();
        // (threads, commit_ns) per run, for the commit-phase scaling curve.
        let mut commit_points: Vec<(usize, u64)> = Vec::new();
        for threads in THREAD_COUNTS {
            let executor = Executor::new(threads);
            let (wall_ns, metrics, dataset) = measure_build(&world, &executor);
            assert_eq!(
                dataset,
                reference,
                "{} at {threads} threads: sharded ingest diverged from the serial baseline",
                scale.label()
            );
            let report = render_deterministic(&analyze_with(
                input,
                AnalysisOptions { threads, collect_metrics: false },
            ));
            assert_eq!(
                report,
                baseline_report,
                "{} at {threads} threads: end-to-end report is not byte-identical",
                scale.label()
            );

            let speedup_vs_pr4 = pr4_ns as f64 / wall_ns.max(1) as f64;
            if scale == WorldScale::Large && threads == 8 {
                headline = Some(speedup_vs_pr4);
            }
            let mut run = Json::object();
            run.set("threads", Json::Int(threads as i64));
            run.set("wall_ns", Json::Int(wall_ns as i64));
            run.set("decode_ns", Json::Int(metrics.decode_ns as i64));
            run.set("commit_ns", Json::Int(metrics.commit_ns as i64));
            run.set("reconcile_ns", Json::Int(metrics.reconcile_ns as i64));
            run.set("shards", Json::Int(metrics.shards as i64));
            commit_points.push((threads, metrics.commit_ns));
            run.set(
                "transfers_per_sec",
                Json::Float(metrics.appended as f64 / (wall_ns.max(1) as f64 / 1e9)),
            );
            run.set("speedup_vs_pr4", Json::Float(speedup_vs_pr4));
            run.set(
                "speedup_vs_materializing",
                Json::Float(legacy_ns as f64 / wall_ns.max(1) as f64),
            );
            runs.push(run);
        }

        // Commit-phase thread-scaling curve: speedup of each run's commit
        // over this world's single-thread (fully serial) commit, and the
        // per-thread efficiency of that speedup.
        let serial_commit_ns =
            commit_points.iter().find(|(threads, _)| *threads == 1).map(|(_, ns)| *ns).unwrap_or(0);
        let mut commit_scaling = Vec::new();
        for &(threads, commit_ns) in &commit_points {
            let speedup = serial_commit_ns as f64 / commit_ns.max(1) as f64;
            let efficiency = speedup / threads as f64;
            if scale == WorldScale::Large && threads == 8 {
                scaling_headline = Some(efficiency);
            }
            let mut point = Json::object();
            point.set("threads", Json::Int(threads as i64));
            point.set("commit_ns", Json::Int(commit_ns as i64));
            point.set("speedup_vs_serial_commit", Json::Float(speedup));
            point.set("efficiency", Json::Float(efficiency));
            commit_scaling.push(point);
        }

        let mut entry = Json::object();
        entry.set("scale", Json::Str(scale.label().to_string()));
        entry.set("transfers", Json::Int(reference.transfer_count() as i64));
        entry.set("raw_events", Json::Int(reference.raw_transfer_events as i64));
        entry.set("blocks", Json::Int(blocks as i64));
        entry.set("baseline_pr4_ns", Json::Int(pr4_ns as i64));
        entry.set("baseline_materializing_ns", Json::Int(legacy_ns as i64));
        entry.set("report_identical_across_threads", Json::Bool(true));
        entry.set("runs", Json::Arr(runs));
        entry.set("commit_scaling", Json::Arr(commit_scaling));
        worlds.push(entry);
        println!(
            "ingest sweep {}: {} transfers verified identical across threads {:?}",
            scale.label(),
            reference.transfer_count(),
            THREAD_COUNTS
        );
    }

    let mut section = Json::object();
    section.set(
        "host_threads",
        Json::Int(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as i64),
    );
    section.set(
        "thread_counts",
        Json::Arr(THREAD_COUNTS.iter().map(|t| Json::Int(*t as i64)).collect()),
    );
    section.set("seed", Json::Int(bench_suite::SWEEP_SEED as i64));
    section.set("worlds", Json::Arr(worlds));
    section.set(
        "build_dataset_speedup_large_8_threads",
        Json::Float(headline.expect("the sweep covers large at 8 threads")),
    );
    section.set(
        "scaling_efficiency",
        Json::Float(scaling_headline.expect("the sweep covers large at 8 threads")),
    );

    let path = results_path();
    merge_section(&path, "ingest", section).expect("write BENCH_results.json");
    println!("ingest sweep recorded in {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest_throughput
}

fn main() {
    benches();
    record_results();
}
