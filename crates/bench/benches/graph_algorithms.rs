//! Criterion benchmarks of the graph-analysis substrate: strongly connected
//! component search (the per-NFT candidate search of §IV-A) and pattern
//! canonicalization (the Fig. 7 classification), at several graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphlib::{suspicious_components, DiMultiGraph, PatternCatalogue};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random trading graph: `nodes` accounts, `edges` sales, with a planted
/// round-trip pair so at least one SCC exists.
fn random_graph(nodes: usize, edges: usize, seed: u64) -> DiMultiGraph<usize, ()> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut graph = DiMultiGraph::new();
    for node in 0..nodes {
        graph.add_node(node);
    }
    for _ in 0..edges {
        let source = rng.gen_range(0..nodes);
        let target = rng.gen_range(0..nodes);
        graph.add_edge(source, target, ());
    }
    graph.add_edge(0, 1, ());
    graph.add_edge(1, 0, ());
    graph
}

fn bench_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec4a_scc_search");
    for &(nodes, edges) in &[(100usize, 300usize), (1_000, 3_000), (10_000, 30_000)] {
        let graph = random_graph(nodes, edges, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}n_{edges}e")),
            &graph,
            |b, graph| b.iter(|| suspicious_components(graph)),
        );
    }
    group.finish();
}

fn bench_pattern_classification(c: &mut Criterion) {
    let catalogue = PatternCatalogue::paper();
    let mut group = c.benchmark_group("fig7_pattern_classification");
    let shapes: Vec<(usize, Vec<(usize, usize)>)> =
        catalogue.specs().iter().map(|spec| (spec.participants, spec.edges.clone())).collect();
    group.bench_function("classify_catalogue_shapes", |b| {
        b.iter(|| {
            for (nodes, edges) in &shapes {
                let _ = catalogue.classify(*nodes, edges);
            }
        })
    });
    // The worst case: an 8-node shape requires checking 8! permutations.
    let cycle8: Vec<(usize, usize)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
    group.bench_function("canonicalize_8_node_cycle", |b| {
        b.iter(|| graphlib::CanonicalDigraph::from_edges(8, &cycle8))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_scc, bench_pattern_classification
}
criterion_main!(benches);
