//! Reassemble-scaling benchmarks: per-epoch cost of the dirty-driven
//! incremental report reassembly (the refine-aggregate → detect →
//! characterize → profit tail) versus the pre-incremental full rescan of the
//! same cached per-NFT state.
//!
//! The criterion group times both tails at the small world's tip; the manual
//! measurement pass streams the small and large sweep worlds epoch by epoch,
//! pairing every epoch's [`EpochDelta::reassemble_ns`] (the incremental
//! path, as timed inside `ingest_epoch`) with a timed
//! `rebuild_full_report()` of the same state — asserting the two reports
//! bit-identical — and records a `reassemble` section into
//! `BENCH_results.json`: per-epoch reassemble ns against the epoch's dirty
//! fraction, and the steady-state incremental-vs-full speedup (target: ≥3×
//! on the large world).

use std::time::Instant;

use bench_suite::input_of;
use bench_suite::json::Json;
use bench_suite::results::{merge_section, results_path};
use criterion::{criterion_group, Criterion};
use washtrade_stream::{StreamAnalyzer, StreamOptions};

fn bench_reassemble(c: &mut Criterion) {
    let world = bench_suite::build_small_world(1);
    let input = input_of(&world);
    let plan = world.epoch_plan(8);
    let budgets = plan.budgets();

    let mut group = c.benchmark_group("reassemble");
    // An analyzer parked at the tip: rebuild_full_report re-runs the old
    // full-rescan tail over the same caches every iteration.
    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    for budget in &budgets {
        live.ingest_epoch(*budget);
    }
    group.bench_function("full_rescan_at_tip", |b| {
        b.iter(|| live.rebuild_full_report().detection.confirmed.len())
    });
    group.bench_function("stream_to_tip_incremental", |b| {
        b.iter(|| {
            let mut fresh = StreamAnalyzer::new(input, StreamOptions::default());
            let mut reassemble_ns = 0u64;
            for budget in &budgets {
                if let Some(delta) = fresh.ingest_epoch(*budget) {
                    reassemble_ns += delta.reassemble_ns;
                }
            }
            reassemble_ns
        })
    });
    group.finish();
}

/// Stream one world to the tip, pairing every epoch's incremental reassembly
/// time with a timed full rescan of the same state. Returns the per-world
/// JSON blob for the `reassemble` section.
fn measure_world(world: &workload::World, label: &str, epochs: usize) -> Json {
    let input = input_of(world);
    let plan = world.epoch_plan(epochs);

    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    let mut incremental_ns = Vec::new();
    let mut full_ns = Vec::new();
    let mut dirty_fractions = Vec::new();
    for budget in plan.budgets() {
        let Some(delta) = live.ingest_epoch(budget) else {
            break;
        };
        incremental_ns.push(delta.reassemble_ns);
        dirty_fractions.push(delta.dirty_nfts as f64 / delta.total_nfts.max(1) as f64);

        let started = Instant::now();
        let full = live.rebuild_full_report();
        full_ns.push(started.elapsed().as_nanos() as u64);
        assert_eq!(
            &full,
            live.report(),
            "incremental reassembly must equal the full rescan ({label}, epoch {})",
            delta.index
        );
    }

    // Steady state: the last quarter of the run, where the world has mostly
    // accumulated and the per-epoch dirty set is small relative to it — the
    // regime the dirty-driven tail exists for. The headline speedup is the
    // median of the per-epoch paired ratios (both sides of a pair run
    // moments apart, so background-load spikes land in one epoch's ratio and
    // the median shrugs them off); full per-epoch arrays are recorded below
    // either way.
    let steady = (incremental_ns.len() * 3 / 4).max(1)..incremental_ns.len();
    let mean = |values: &[u64]| values.iter().sum::<u64>() / values.len().max(1) as u64;
    let steady_incremental = mean(&incremental_ns[steady.clone()]);
    let steady_full = mean(&full_ns[steady.clone()]);
    let mut ratios: Vec<f64> = steady
        .clone()
        .map(|epoch| full_ns[epoch] as f64 / incremental_ns[epoch].max(1) as f64)
        .collect();
    ratios.sort_by(f64::total_cmp);
    let speedup = ratios[ratios.len() / 2];
    let steady_dirty =
        dirty_fractions[steady.clone()].iter().sum::<f64>() / steady.len().max(1) as f64;

    let mut section = Json::object();
    section.set("world", Json::Str(label.to_string()));
    section.set("epochs", Json::Int(incremental_ns.len() as i64));
    section.set(
        "reassemble_ns",
        Json::Arr(incremental_ns.iter().map(|ns| Json::Int(*ns as i64)).collect()),
    );
    section
        .set("full_rescan_ns", Json::Arr(full_ns.iter().map(|ns| Json::Int(*ns as i64)).collect()));
    section.set(
        "dirty_fraction",
        Json::Arr(dirty_fractions.iter().map(|fraction| Json::Float(*fraction)).collect()),
    );
    section.set("steady_state_reassemble_ns", Json::Int(steady_incremental as i64));
    section.set("steady_state_full_rescan_ns", Json::Int(steady_full as i64));
    section.set("steady_state_dirty_fraction", Json::Float(steady_dirty));
    section.set("speedup_incremental_vs_full", Json::Float(speedup));
    println!(
        "  {label:<9} {} epochs: steady-state reassemble {steady_incremental} ns, \
         full rescan {steady_full} ns, {speedup:.1}x (median of paired ratios), \
         dirty fraction {steady_dirty:.4}",
        incremental_ns.len()
    );
    section
}

/// Record the `reassemble` section: the small test world and the large sweep
/// world, so reassembly cost versus dirty fraction (and its scaling with the
/// dirty set rather than the world) is visible PR over PR.
fn record_results() {
    // 96 epochs over the large world keeps the per-epoch dirty set small
    // relative to the world — the steady-state regime the incremental tail
    // is built for (a day's trades against months of accumulated history).
    let worlds = vec![
        measure_world(&bench_suite::build_small_world(1), "small(1)", 8),
        measure_world(&bench_suite::build_sized_world(workload::WorldScale::Large), "large", 96),
    ];

    let mut section = Json::object();
    section.set("worlds", Json::Arr(worlds));

    let path = results_path();
    merge_section(&path, "reassemble", section).expect("write BENCH_results.json");
    println!("reassemble numbers recorded in {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reassemble
}

fn main() {
    benches();
    record_results();
}
