//! Criterion benchmarks of the end-to-end study: world generation (the
//! synthetic stand-in for syncing and parsing the chain) and the complete
//! analysis (§III–§VI, i.e. everything needed to regenerate all tables and
//! figures), at two workload scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workload::{WorkloadConfig, World};

fn bench_world_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    group.sample_size(10);
    for &scale in &[0.005f64, 0.01] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            b.iter(|| World::generate(WorkloadConfig::paper_scaled(11, scale)).unwrap())
        });
    }
    group.finish();
}

fn bench_full_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_tables_and_figures");
    group.sample_size(10);
    for &scale in &[0.005f64, 0.01] {
        let world = bench_suite::build_world(scale, 11);
        group.bench_with_input(BenchmarkId::from_parameter(scale), &world, |b, world| {
            b.iter(|| bench_suite::analyze_world(world))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_world_generation, bench_full_analysis);
criterion_main!(benches);
