//! Observability overhead benchmarks: what one counter bump, one histogram
//! sample, one span guard and one full registry snapshot cost, plus the
//! number the 3% budget is judged against — the end-to-end delta between an
//! instrumented and a recording-off analysis pass on the large sweep world.
//!
//! Besides the criterion timings, a manual measurement pass writes the
//! numbers into `BENCH_results.json` (section `observability`), printed by
//! `perf_summary` and uploaded by CI. Under `--features obs-noop` the
//! per-op costs collapse to the gate check and the section records
//! `mode: "noop"` so trajectories from the two build flavors are never
//! compared against each other by accident.
//!
//! A final streamed pass exports the run's causal span tree as a Chrome
//! trace-event file (`trace_path()`, overridable via `CHROME_TRACE_PATH`) —
//! CI uploads it and the repo-level `trace_export` gate validates it — and
//! records the health/SLO report as the section's `health` subsection.

use std::time::Instant;

use bench_suite::input_of;
use bench_suite::json::Json;
use bench_suite::results::{merge_section, results_path, trace_path};
use criterion::{criterion_group, Criterion};
use washtrade::pipeline::{analyze_with, AnalysisOptions};
use washtrade_stream::{StreamAnalyzer, StreamOptions};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("observability");
    group.bench_function("counter_add", |b| {
        b.iter(|| obs::counter!("bench.obs.counter", 1));
    });
    group.bench_function("histogram_record", |b| {
        let mut sample = 0u64;
        b.iter(|| {
            sample = sample.wrapping_add(4097);
            obs::histogram!("bench.obs.histogram", sample);
        });
    });
    group.bench_function("span_guard", |b| {
        b.iter(|| {
            let _span = obs::span!("bench.obs.span_ns");
        });
    });
    group.bench_function("snapshot", |b| {
        b.iter(obs::snapshot);
    });
    group.finish();
}

/// Mean per-op nanoseconds of `op` over `iters` iterations (wall clock over
/// a tight loop — the primitives are a few nanoseconds each, far below
/// timer resolution for a single call).
fn per_op_ns<F: FnMut()>(iters: u64, mut op: F) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        op();
    }
    started.elapsed().as_nanos() as f64 / iters as f64
}

/// One instrumented and one recording-off analysis pass over the large
/// sweep world, interleaved order-independently enough for a trajectory
/// number (a second uninstrumented pass warms nothing further: the dataset
/// is rebuilt from scratch inside each pass).
fn record_results() {
    const PRIMITIVE_ITERS: u64 = 4_000_000;

    let counter_ns = per_op_ns(PRIMITIVE_ITERS, || obs::counter!("bench.obs.counter", 1));
    let mut sample = 0u64;
    let histogram_ns = per_op_ns(PRIMITIVE_ITERS, || {
        sample = sample.wrapping_add(4097);
        obs::histogram!("bench.obs.histogram", sample);
    });
    let span_ns = per_op_ns(PRIMITIVE_ITERS / 4, || {
        let _span = obs::span!("bench.obs.span_ns");
    });
    // A causal trace span pays for id allocation, the thread-local stack
    // push/pop, and a flight-ring slot on drop — the whole guard lifecycle.
    let trace_span_ns = per_op_ns(PRIMITIVE_ITERS / 4, || {
        let _span = obs::trace::span("bench.obs.trace_span");
    });
    let started = Instant::now();
    let snap = obs::snapshot();
    let snapshot_ns = started.elapsed().as_nanos() as i64;

    // End-to-end: the same large-world batch analysis with recording on and
    // off. The off pass still pays registration and the per-call gate check;
    // the difference is what threading obs through the pipeline costs. Run
    // single-threaded — fork–join wall time swings tens of percent with
    // scheduler noise, drowning a few-percent delta, while the serial pass
    // is stable *and* proportionally the hardest case for instrumentation
    // (no fan-out to hide record costs behind). One warm-up pass first
    // (allocator and page-cache state dominate a cold first run), then
    // interleaved best-of-5 per mode so drift hits both sides equally.
    let world = bench_suite::build_sized_world(workload::WorldScale::Large);
    let input = input_of(&world);
    let serial = AnalysisOptions { threads: 1, ..AnalysisOptions::default() };
    let warmup = analyze_with(input, serial);

    let mut instrumented_ns = i64::MAX;
    let mut off_ns = i64::MAX;
    for round in 0..9 {
        // Alternate which mode runs first each round: best-of-N is robust to
        // one-sided noise, but a fixed order would hand whichever side runs
        // second a systematically warmer cache.
        let mut order = [(true, &mut instrumented_ns), (false, &mut off_ns)];
        if round % 2 == 1 {
            order.reverse();
        }
        for (on, best) in order {
            obs::set_recording(on);
            let started = Instant::now();
            let report = analyze_with(input, serial);
            *best = (*best).min(started.elapsed().as_nanos() as i64);
            assert_eq!(
                report.detection.confirmed.len(),
                warmup.detection.confirmed.len(),
                "recording on/off must not change analysis results"
            );
        }
    }
    obs::set_recording(true);

    let overhead_pct = (instrumented_ns - off_ns) as f64 / off_ns.max(1) as f64 * 100.0;

    // One streamed pass over the same world so the exported timeline carries
    // the full causal tree (epoch roots down to publishes) and the per-epoch
    // SLO evaluations feed the health subsection. The flight ring is cleared
    // first — the primitive loops above flooded it with benchmark spans.
    obs::flight::clear();
    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    let mut epochs = 0u64;
    while live.ingest_epoch(96).is_some() {
        epochs += 1;
    }
    let trace_file = trace_path();
    if let Some(parent) = trace_file.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&trace_file, obs::trace::export_chrome_json()).expect("write chrome trace");
    println!("chrome trace ({} epochs) written to {}", epochs, trace_file.display());

    let report = obs::health::report();
    let mut health = Json::object();
    health.set("healthy", Json::Bool(report.healthy()));
    health.set("evaluations", Json::Int(report.evaluations as i64));
    let mut verdicts = Vec::new();
    for verdict in &report.verdicts {
        let mut entry = Json::object();
        entry.set("slo", Json::Str(verdict.slo.clone()));
        entry.set("healthy", Json::Bool(verdict.healthy));
        entry.set("observed", Json::Int(verdict.observed));
        entry.set("threshold", Json::Int(verdict.threshold));
        entry.set("burn", Json::Int(verdict.burn as i64));
        entry.set("total_burn", Json::Int(verdict.total_burn as i64));
        verdicts.push(entry);
    }
    health.set("verdicts", Json::Arr(verdicts));

    let mut section = Json::object();
    section
        .set("mode", Json::Str(if obs::enabled() { "instrumented" } else { "noop" }.to_string()));
    section.set("counter_add_ns", Json::Float(counter_ns));
    section.set("histogram_record_ns", Json::Float(histogram_ns));
    section.set("span_guard_ns", Json::Float(span_ns));
    section.set("trace_span_ns", Json::Float(trace_span_ns));
    section.set("snapshot_ns", Json::Int(snapshot_ns));
    section.set("snapshot_metrics", Json::Int(snap.metrics.len() as i64));
    section.set("large_world_instrumented_ns", Json::Int(instrumented_ns));
    section.set("large_world_recording_off_ns", Json::Int(off_ns));
    section.set("overhead_pct", Json::Float(overhead_pct));
    section.set("streamed_epochs", Json::Int(epochs as i64));
    section.set("flight_spans_retained", Json::Int(obs::flight::dump().len() as i64));
    section.set("health", health);

    let path = results_path();
    merge_section(&path, "observability", section).expect("write BENCH_results.json");
    println!("observability numbers recorded in {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_primitives
}

fn main() {
    benches();
    record_results();
}
