//! Observability overhead benchmarks: what one counter bump, one histogram
//! sample, one span guard and one full registry snapshot cost, plus the
//! number the 3% budget is judged against — the end-to-end delta between an
//! instrumented and a recording-off analysis pass on the large sweep world.
//!
//! Besides the criterion timings, a manual measurement pass writes the
//! numbers into `BENCH_results.json` (section `observability`), printed by
//! `perf_summary` and uploaded by CI. Under `--features obs-noop` the
//! per-op costs collapse to the gate check and the section records
//! `mode: "noop"` so trajectories from the two build flavors are never
//! compared against each other by accident.

use std::time::Instant;

use bench_suite::input_of;
use bench_suite::json::Json;
use bench_suite::results::{merge_section, results_path};
use criterion::{criterion_group, Criterion};
use washtrade::pipeline::{analyze_with, AnalysisOptions};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("observability");
    group.bench_function("counter_add", |b| {
        b.iter(|| obs::counter!("bench.obs.counter", 1));
    });
    group.bench_function("histogram_record", |b| {
        let mut sample = 0u64;
        b.iter(|| {
            sample = sample.wrapping_add(4097);
            obs::histogram!("bench.obs.histogram", sample);
        });
    });
    group.bench_function("span_guard", |b| {
        b.iter(|| {
            let _span = obs::span!("bench.obs.span_ns");
        });
    });
    group.bench_function("snapshot", |b| {
        b.iter(obs::snapshot);
    });
    group.finish();
}

/// Mean per-op nanoseconds of `op` over `iters` iterations (wall clock over
/// a tight loop — the primitives are a few nanoseconds each, far below
/// timer resolution for a single call).
fn per_op_ns<F: FnMut()>(iters: u64, mut op: F) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        op();
    }
    started.elapsed().as_nanos() as f64 / iters as f64
}

/// One instrumented and one recording-off analysis pass over the large
/// sweep world, interleaved order-independently enough for a trajectory
/// number (a second uninstrumented pass warms nothing further: the dataset
/// is rebuilt from scratch inside each pass).
fn record_results() {
    const PRIMITIVE_ITERS: u64 = 4_000_000;

    let counter_ns = per_op_ns(PRIMITIVE_ITERS, || obs::counter!("bench.obs.counter", 1));
    let mut sample = 0u64;
    let histogram_ns = per_op_ns(PRIMITIVE_ITERS, || {
        sample = sample.wrapping_add(4097);
        obs::histogram!("bench.obs.histogram", sample);
    });
    let span_ns = per_op_ns(PRIMITIVE_ITERS / 4, || {
        let _span = obs::span!("bench.obs.span_ns");
    });
    let started = Instant::now();
    let snap = obs::snapshot();
    let snapshot_ns = started.elapsed().as_nanos() as i64;

    // End-to-end: the same large-world batch analysis with recording on and
    // off. The off pass still pays registration and the per-call gate check;
    // the difference is what threading obs through the pipeline costs. Run
    // single-threaded — fork–join wall time swings tens of percent with
    // scheduler noise, drowning a few-percent delta, while the serial pass
    // is stable *and* proportionally the hardest case for instrumentation
    // (no fan-out to hide record costs behind). One warm-up pass first
    // (allocator and page-cache state dominate a cold first run), then
    // interleaved best-of-5 per mode so drift hits both sides equally.
    let world = bench_suite::build_sized_world(workload::WorldScale::Large);
    let input = input_of(&world);
    let serial = AnalysisOptions { threads: 1, ..AnalysisOptions::default() };
    let warmup = analyze_with(input, serial);

    let mut instrumented_ns = i64::MAX;
    let mut off_ns = i64::MAX;
    for _ in 0..5 {
        for (on, best) in [(true, &mut instrumented_ns), (false, &mut off_ns)] {
            obs::set_recording(on);
            let started = Instant::now();
            let report = analyze_with(input, serial);
            *best = (*best).min(started.elapsed().as_nanos() as i64);
            assert_eq!(
                report.detection.confirmed.len(),
                warmup.detection.confirmed.len(),
                "recording on/off must not change analysis results"
            );
        }
    }
    obs::set_recording(true);

    let overhead_pct = (instrumented_ns - off_ns) as f64 / off_ns.max(1) as f64 * 100.0;

    let mut section = Json::object();
    section
        .set("mode", Json::Str(if obs::enabled() { "instrumented" } else { "noop" }.to_string()));
    section.set("counter_add_ns", Json::Float(counter_ns));
    section.set("histogram_record_ns", Json::Float(histogram_ns));
    section.set("span_guard_ns", Json::Float(span_ns));
    section.set("snapshot_ns", Json::Int(snapshot_ns));
    section.set("snapshot_metrics", Json::Int(snap.metrics.len() as i64));
    section.set("large_world_instrumented_ns", Json::Int(instrumented_ns));
    section.set("large_world_recording_off_ns", Json::Int(off_ns));
    section.set("overhead_pct", Json::Float(overhead_pct));

    let path = results_path();
    merge_section(&path, "observability", section).expect("write BENCH_results.json");
    println!("observability numbers recorded in {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_primitives
}

fn main() {
    benches();
    record_results();
}
