//! Streaming-throughput benchmarks: blocks/sec through the cursor and
//! per-epoch latency versus a full re-analyze, on an epoch-sliced world.
//!
//! Besides the criterion timings printed to stdout, a manual measurement
//! pass writes the numbers into `BENCH_results.json` (section
//! `bench_streaming`), so the perf trajectory of the streaming subsystem is
//! tracked as a machine-readable artifact from this PR onward.

use std::time::Instant;

use bench_suite::input_of;
use bench_suite::json::Json;
use bench_suite::results::{merge_section, results_path};
use criterion::{criterion_group, Criterion};
use washtrade::pipeline::{analyze_with, AnalysisOptions};
use washtrade_stream::{StreamAnalyzer, StreamOptions};

fn bench_streaming(c: &mut Criterion) {
    let world = bench_suite::build_small_world(1);
    let input = input_of(&world);
    let plan = world.epoch_plan(6);
    let budgets = plan.budgets();

    let mut group = c.benchmark_group("streaming");
    group.bench_function("ingest_to_tip_6_epochs", |b| {
        b.iter(|| {
            let mut live = StreamAnalyzer::new(input, StreamOptions::default());
            for budget in &budgets {
                live.ingest_epoch(*budget);
            }
            live.report().detection.confirmed.len()
        })
    });
    group.bench_function("full_reanalyze_baseline", |b| {
        b.iter(|| analyze_with(input, AnalysisOptions::default()).detection.confirmed.len())
    });
    group.finish();
}

/// One measured streaming pass on the small test world, plus one at the
/// large sweep scale (`bench_streaming_large`) so future PRs have a scale
/// baseline, recorded into `BENCH_results.json`.
fn record_results() {
    record_world(bench_suite::build_small_world(1), "small(1)", "bench_streaming", 6);
    record_world(
        bench_suite::build_sized_world(workload::WorldScale::Large),
        "large",
        "bench_streaming_large",
        12,
    );
}

fn record_world(world: workload::World, world_label: &str, section_name: &str, epochs: usize) {
    let input = input_of(&world);
    let plan = world.epoch_plan(epochs);

    let started = Instant::now();
    let mut live = StreamAnalyzer::new(input, StreamOptions::default());
    let mut epoch_ns = Vec::new();
    for budget in plan.budgets() {
        let delta = live.ingest_epoch(budget).expect("plan covers the chain");
        epoch_ns.push(delta.wall_time_ns);
    }
    let stream_ns = started.elapsed().as_nanos() as i64;

    let started = Instant::now();
    let batch = analyze_with(input, AnalysisOptions::default());
    let batch_ns = started.elapsed().as_nanos() as i64;
    assert_eq!(
        live.report().detection.confirmed.len(),
        batch.detection.confirmed.len(),
        "streaming and batch must agree before their timings are comparable"
    );

    let blocks = world.chain.current_block_number().0 + 1;
    let mut section = Json::object();
    section.set("world", Json::Str(world_label.to_string()));
    section.set("epochs", Json::Int(epoch_ns.len() as i64));
    section.set("blocks", Json::Int(blocks as i64));
    section.set("stream_total_ns", Json::Int(stream_ns));
    section.set("blocks_per_sec", Json::Float(blocks as f64 / (stream_ns.max(1) as f64 / 1e9)));
    section.set(
        "epoch_latency_ns",
        Json::Arr(epoch_ns.iter().map(|ns| Json::Int(*ns as i64)).collect()),
    );
    section.set(
        "mean_epoch_latency_ns",
        Json::Int((epoch_ns.iter().sum::<u64>() / epoch_ns.len().max(1) as u64) as i64),
    );
    section.set("full_reanalyze_ns", Json::Int(batch_ns));

    let path = results_path();
    merge_section(&path, section_name, section).expect("write BENCH_results.json");
    println!("{section_name} numbers recorded in {}", path.display());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_streaming
}

fn main() {
    benches();
    record_results();
}
