//! The experiment harness: regenerates every table and figure of the paper's
//! evaluation from a calibrated synthetic world and prints measured values
//! side by side with the paper's reported values. Alongside the human tables
//! it writes machine-readable stage timings and streaming-throughput numbers
//! into `BENCH_results.json` (override the path with `$BENCH_RESULTS_PATH`),
//! so the perf trajectory is tracked PR over PR.
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- [scale] [seed] [experiment]
//! ```
//!
//! `experiment` is one of `table1`, `table2`, `table3`, `fig2`, `fig3`,
//! `fig4`, `fig5`, `fig6`, `fig7`, `serial`, `resale`, or `all` (default).

use bench_suite::json::Json;
use bench_suite::results::{merge_section, results_path};
use bench_suite::{analyze_world, build_world, compare, input_of, paper};
use washtrade::pipeline::{AnalysisOptions, AnalysisReport};
use washtrade::report;
use washtrade_stream::{StreamAnalyzer, StreamOptions};
use workload::World;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    let which = args.next().unwrap_or_else(|| "all".to_string());

    eprintln!("== generating world: scale {scale}, seed {seed} ==");
    let world = build_world(scale, seed);
    eprintln!(
        "chain: {} transactions, {} planted wash activities",
        world.chain.stats().transactions,
        world.truth.len()
    );
    eprintln!("== running analysis ==");
    let analysis = analyze_world(&world);
    write_bench_results(scale, seed, &world, &analysis);

    let run = |name: &str| which == "all" || which == name;
    if run("table1") {
        table1(&analysis);
    }
    if run("fig2") {
        fig2(&analysis);
    }
    if run("table2") {
        table2(&analysis);
    }
    if run("fig3") {
        fig3(&analysis);
    }
    if run("fig4") {
        fig4(&analysis);
    }
    if run("fig5") {
        fig5(&analysis);
    }
    if run("fig6") || run("fig7") {
        fig6_fig7(&analysis);
    }
    if run("serial") {
        serial(&analysis);
    }
    if run("table3") {
        table3(&analysis);
    }
    if run("resale") {
        resale(&analysis);
    }
    if which == "all" {
        ground_truth(&world, &analysis);
    }
}

/// Record stage timings and a streaming pass into `BENCH_results.json`.
fn write_bench_results(scale: f64, seed: u64, world: &World, analysis: &AnalysisReport) {
    let mut meta = Json::object();
    meta.set("scale", Json::Float(scale));
    meta.set("seed", Json::Int(seed as i64));
    meta.set("transactions", Json::Int(world.chain.stats().transactions as i64));
    meta.set("planted_activities", Json::Int(world.truth.len() as i64));

    let stages = Json::Arr(
        analysis
            .stage_metrics
            .iter()
            .map(|metrics| {
                let mut stage = Json::object();
                stage.set("stage", Json::Str(metrics.stage.clone()));
                stage.set("wall_time_ns", Json::Int(metrics.wall_time_ns as i64));
                stage.set("items_in", Json::Int(metrics.items_in as i64));
                stage.set("items_out", Json::Int(metrics.items_out as i64));
                stage.set("threads", Json::Int(metrics.threads as i64));
                stage
            })
            .collect(),
    );

    // A streaming pass over the same world: epoch-sliced ingestion with the
    // straddling plan, recording per-epoch latency and overall throughput.
    let input = input_of(world);
    let plan = world.epoch_plan(8);
    let started = std::time::Instant::now();
    let mut live =
        StreamAnalyzer::new(input, StreamOptions::from_analysis(AnalysisOptions::default()));
    let mut epochs = Vec::new();
    for budget in plan.budgets() {
        if let Some(delta) = live.ingest_epoch(budget) {
            let mut epoch = Json::object();
            epoch.set("blocks", Json::Int(delta.blocks() as i64));
            epoch.set("transfers", Json::Int(delta.transfers as i64));
            epoch.set("dirty_nfts", Json::Int(delta.dirty_nfts as i64));
            epoch.set("total_nfts", Json::Int(delta.total_nfts as i64));
            epoch.set("new_suspects", Json::Int(delta.new_suspects.len() as i64));
            epoch.set("wall_time_ns", Json::Int(delta.wall_time_ns as i64));
            epochs.push(epoch);
        }
    }
    let stream_ns = started.elapsed().as_nanos() as i64;
    let blocks = world.chain.current_block_number().0 + 1;
    let batch_ns: i64 =
        analysis.stage_metrics.iter().map(|metrics| metrics.wall_time_ns as i64).sum();
    let mut streaming = Json::object();
    streaming.set("epochs", Json::Arr(epochs));
    streaming.set("blocks", Json::Int(blocks as i64));
    streaming.set("stream_total_ns", Json::Int(stream_ns));
    streaming.set("blocks_per_sec", Json::Float(blocks as f64 / (stream_ns.max(1) as f64 / 1e9)));
    streaming.set("batch_stage_total_ns", Json::Int(batch_ns));
    streaming.set(
        "confirmed_matches_batch",
        Json::Bool(live.report().detection.confirmed.len() == analysis.detection.confirmed.len()),
    );

    let path = results_path();
    let written = merge_section(&path, "meta", meta)
        .and_then(|()| merge_section(&path, "stages", stages))
        .and_then(|()| merge_section(&path, "streaming", streaming));
    match written {
        Ok(()) => eprintln!("== wrote {} ==", path.display()),
        Err(error) => eprintln!("== could not write {}: {error} ==", path.display()),
    }
}

fn table1(analysis: &AnalysisReport) {
    println!("\n================ Experiment: Table I ================");
    println!("{}", report::render_table1(&analysis.table1));
    println!("Paper shape check: OpenSea carries the overwhelming majority of marketplace");
    println!("transactions; LooksRare has few transactions but a disproportionate volume.");
    let opensea_txs =
        analysis.table1.iter().find(|r| r.name == "OpenSea").map(|r| r.transactions).unwrap_or(0);
    let total_txs: usize = analysis.table1.iter().map(|r| r.transactions).sum();
    println!(
        "{}",
        compare(
            "OpenSea share of marketplace transactions",
            opensea_txs as f64 / total_txs.max(1) as f64,
            6_979_112.0 / 7_263_525.0,
            ""
        )
    );
}

fn fig2(analysis: &AnalysisReport) {
    println!("\n================ Experiment: Fig. 2 ================");
    println!("{}", report::render_fig2(&analysis.detection.venn));
    let venn = &analysis.detection.venn;
    let total = venn.total().max(1) as f64;
    let measured = [
        venn.zero_risk_only,
        venn.funder_only,
        venn.exit_only,
        venn.zero_and_funder,
        venn.zero_and_exit,
        venn.funder_and_exit,
        venn.all_three,
    ];
    let labels = [
        "zero-risk only",
        "funder only",
        "exit only",
        "zero-risk ∩ funder",
        "zero-risk ∩ exit",
        "funder ∩ exit",
        "all three",
    ];
    println!("Share of flow-confirmed activities per Venn region (measured vs paper):");
    for ((label, measured), paper_count) in labels.iter().zip(measured).zip(paper::VENN_BUCKETS) {
        println!(
            "{}",
            compare(
                label,
                measured as f64 / total,
                paper_count as f64 / paper::VENN_TOTAL as f64,
                ""
            )
        );
    }
    println!(
        "{}",
        compare(
            "confirmed by ≥2 methods",
            venn.at_least_two() as f64 / total,
            paper::AT_LEAST_TWO_METHODS,
            ""
        )
    );
}

fn table2(analysis: &AnalysisReport) {
    println!("\n================ Experiment: Table II ================");
    println!("{}", report::render_table2(&analysis.characterization));
    let row =
        |name: &str| analysis.characterization.per_marketplace.iter().find(|r| r.name == name);
    if let Some(looksrare) = row("LooksRare") {
        println!(
            "{}",
            compare(
                "LooksRare wash share of its own volume",
                looksrare.share_of_marketplace_volume.unwrap_or(0.0),
                paper::WASH_SHARE_LOOKSRARE,
                ""
            )
        );
        let marketplace_wash: f64 = analysis
            .characterization
            .per_marketplace
            .iter()
            .filter(|r| r.name != "Off-market")
            .map(|r| r.volume_usd)
            .sum();
        println!(
            "{}",
            compare(
                "LooksRare share of all marketplace wash volume",
                looksrare.volume_usd / marketplace_wash.max(1.0),
                paper::LOOKSRARE_SHARE_OF_WASH_VOLUME,
                ""
            )
        );
    }
    if let Some(opensea) = row("OpenSea") {
        println!(
            "{}",
            compare(
                "OpenSea wash share of its own volume",
                opensea.share_of_marketplace_volume.unwrap_or(0.0),
                paper::WASH_SHARE_OPENSEA,
                ""
            )
        );
    }
    if let Some(foundation) = row("Foundation") {
        println!(
            "  NOTE: Foundation shows {} wash activities (paper: none).",
            foundation.activities
        );
    } else {
        println!("  Foundation: no wash-trading activity detected — matches the paper.");
    }
}

fn fig3(analysis: &AnalysisReport) {
    println!("\n================ Experiment: Fig. 3 ================");
    println!("CDF of per-activity wash volume (USD) vs unaffected trading volume.");
    let mut names: Vec<&String> = analysis.characterization.volume_cdfs.keys().collect();
    names.sort();
    for name in names {
        let cdf = &analysis.characterization.volume_cdfs[name];
        if cdf.is_empty() {
            continue;
        }
        println!(
            "  {:<28} n={:<6} median=${:<12.0} p90=${:<12.0} max=${:<14.0}",
            name,
            cdf.len(),
            cdf.quantile(0.5).unwrap_or(0.0),
            cdf.quantile(0.9).unwrap_or(0.0),
            cdf.max().unwrap_or(0.0)
        );
    }
    println!("Paper shape check: legit trades generate much smaller volumes than wash");
    println!("trading, and LooksRare wash volumes dwarf every other marketplace.");
}

fn fig4(analysis: &AnalysisReport) {
    println!("\n================ Experiment: Fig. 4 ================");
    println!("{}", report::render_fig4(&analysis.characterization));
    println!(
        "{}",
        compare(
            "activities lasting ≤ 1 day",
            analysis.characterization.lifetimes.within_one_day,
            paper::LIFETIME_ONE_DAY,
            ""
        )
    );
    println!(
        "{}",
        compare(
            "activities lasting < 10 days",
            analysis.characterization.lifetimes.within_ten_days,
            paper::LIFETIME_TEN_DAYS,
            ""
        )
    );
    println!(
        "{}",
        compare(
            "NFT acquired the same day manipulation started",
            analysis.characterization.acquired_same_day_fraction,
            paper::ACQUIRED_SAME_DAY,
            ""
        )
    );
}

fn fig5(analysis: &AnalysisReport) {
    println!("\n================ Experiment: Fig. 5 ================");
    println!("{}", report::render_fig5(&analysis.characterization));
    println!("Paper shape check: the bulk of each collection's wash activity clusters");
    println!("shortly after the collection's creation.");
}

fn fig6_fig7(analysis: &AnalysisReport) {
    println!("\n============ Experiment: Fig. 6 and Fig. 7 ============");
    println!("{}", report::render_fig6_fig7(&analysis.characterization));
    println!(
        "{}",
        compare(
            "two-account round-trip share",
            analysis.characterization.patterns.two_account_fraction,
            paper::TWO_ACCOUNT_FRACTION,
            ""
        )
    );
    let measured_total: usize =
        analysis.characterization.patterns.pattern_occurrences.values().sum::<usize>()
            + analysis.characterization.patterns.uncatalogued;
    let paper_total: usize = 12_413;
    println!("Pattern mix (share of all activities, measured vs paper):");
    for (id, occurrences) in paper::PATTERN_OCCURRENCES {
        let measured =
            analysis.characterization.patterns.pattern_occurrences.get(&id).copied().unwrap_or(0)
                as f64
                / measured_total.max(1) as f64;
        println!(
            "{}",
            compare(
                &format!("pattern {id}"),
                measured,
                occurrences as f64 / paper_total as f64,
                ""
            )
        );
    }
}

fn serial(analysis: &AnalysisReport) {
    println!("\n================ Experiment: §V-D serial traders ================");
    println!("{}", report::render_serials(&analysis.characterization));
    let serial = &analysis.characterization.serial_traders;
    println!(
        "{}",
        compare(
            "serial accounts / involved accounts",
            serial.serial_accounts as f64 / serial.total_accounts.max(1) as f64,
            paper::SERIAL_ACCOUNT_FRACTION,
            ""
        )
    );
    println!(
        "{}",
        compare(
            "activities involving serial traders",
            serial.activities_with_serials as f64 / serial.total_activities.max(1) as f64,
            paper::SERIAL_ACTIVITY_FRACTION,
            ""
        )
    );
}

fn table3(analysis: &AnalysisReport) {
    println!("\n================ Experiment: Table III ================");
    println!("{}", report::render_table3(&analysis.rewards));
    for market in &analysis.rewards.markets {
        let total = market.successful.events + market.failed.events;
        if total == 0 {
            continue;
        }
        let paper_rate = if market.marketplace == "LooksRare" {
            paper::LOOKSRARE_REWARD_SUCCESS
        } else {
            paper::RARIBLE_REWARD_SUCCESS
        };
        println!(
            "{}",
            compare(
                &format!("{} reward-farming success rate", market.marketplace),
                market.successful.events as f64 / total as f64,
                paper_rate,
                ""
            )
        );
        println!(
            "{}",
            compare(
                &format!("{} gain/loss asymmetry (total gain / total |loss|)", market.marketplace),
                market.successful.total_balance_usd
                    / market.failed.total_balance_usd.abs().max(1.0),
                416_963_449.0 / 310_544.0,
                "x"
            )
        );
    }
}

fn resale(analysis: &AnalysisReport) {
    println!("\n================ Experiment: §VI-B resale ================");
    println!("{}", report::render_resales(&analysis.resales));
    println!(
        "{}",
        compare(
            "activities not followed by a sale",
            analysis.resales.not_resold as f64 / analysis.resales.total.max(1) as f64,
            paper::NOT_RESOLD_FRACTION,
            ""
        )
    );
    println!(
        "{}",
        compare(
            "resold activities profitable after fees",
            analysis.resales.net.gain_fraction(),
            paper::RESALE_PROFIT_FRACTION,
            ""
        )
    );
}

fn ground_truth(world: &World, analysis: &AnalysisReport) {
    println!("\n================ Ground-truth evaluation ================");
    let planted: std::collections::HashSet<_> = world.truth.iter().map(|t| t.nft).collect();
    let detected: std::collections::HashSet<_> =
        analysis.detection.confirmed.iter().map(|a| a.nft()).collect();
    let recalled = planted.intersection(&detected).count();
    println!(
        "  planted activities: {}   detected: {}   recall: {:.1}%   extra detections: {}",
        planted.len(),
        detected.len(),
        recalled as f64 / planted.len().max(1) as f64 * 100.0,
        detected.difference(&planted).count()
    );
}
