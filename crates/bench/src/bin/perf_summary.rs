//! Print the perf trajectory recorded in `BENCH_results.json` as readable
//! tables — the non-gating summary step CI runs after the benches, so the
//! stage and ingest speedups are visible in the job log without downloading
//! the artifact.
//!
//! Reads the results file from `$BENCH_RESULTS_PATH` or the workspace root
//! (the same resolution every producer uses); missing sections are reported,
//! not fatal — the summary never fails the job.

use bench_suite::json::{parse, Json};
use bench_suite::results::results_path;

fn float_of(value: Option<&Json>) -> Option<f64> {
    match value {
        Some(Json::Float(f)) => Some(*f),
        Some(Json::Int(i)) => Some(*i as f64),
        _ => None,
    }
}

fn int_of(value: Option<&Json>) -> Option<i64> {
    match value {
        Some(Json::Int(i)) => Some(*i),
        Some(Json::Float(f)) => Some(*f as i64),
        _ => None,
    }
}

fn str_of(value: Option<&Json>) -> Option<&str> {
    match value {
        Some(Json::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn ms(ns: i64) -> f64 {
    ns as f64 / 1e6
}

fn print_stage_table(root: &Json) {
    let Some(columnar) = root.get("columnar") else {
        println!(
            "(no `columnar` section — run `cargo bench -p bench --bench pipeline_throughput`)"
        );
        return;
    };
    println!("pipeline stages ({}):", str_of(columnar.get("world")).unwrap_or("?"));
    println!("  {:<16} {:>12} {:>14} {:>10}", "stage", "wall ms", "pr2 base ms", "speedup");
    if let Some(Json::Arr(stages)) = columnar.get("stages") {
        for stage in stages {
            let name = str_of(stage.get("stage")).unwrap_or("?");
            let wall = int_of(stage.get("wall_time_ns")).unwrap_or(0);
            let base = int_of(stage.get("baseline_pr2_ns"));
            let speedup = float_of(stage.get("speedup_vs_pr2"));
            match (base, speedup) {
                (Some(base), Some(speedup)) => println!(
                    "  {:<16} {:>12.3} {:>14.3} {:>9.2}x",
                    name,
                    ms(wall),
                    ms(base),
                    speedup
                ),
                _ => println!("  {:<16} {:>12.3}", name, ms(wall)),
            }
        }
    }
    if let Some(speedup) = float_of(columnar.get("speedup_vs_pr2_end_to_end")) {
        println!("  end-to-end speedup vs PR-2: {speedup:.2}x");
    }
}

fn print_ingest_table(root: &Json) {
    let Some(ingest) = root.get("ingest") else {
        println!("(no `ingest` section — run `cargo bench -p bench --bench ingest_throughput`)");
        return;
    };
    let host = int_of(ingest.get("host_threads")).unwrap_or(0);
    println!("ingest scale sweep (three-phase decode→reconcile→splice, host threads: {host}):");
    println!(
        "  {:<8} {:>10} {:>8} {:>10} {:>10} {:>10} {:>12} {:>9} {:>9}",
        "scale",
        "transfers",
        "threads",
        "wall ms",
        "decode ms",
        "commit ms",
        "reconcile ms",
        "vs PR-4",
        "vs mat."
    );
    if let Some(Json::Arr(worlds)) = ingest.get("worlds") {
        for world in worlds {
            let scale = str_of(world.get("scale")).unwrap_or("?");
            let transfers = int_of(world.get("transfers")).unwrap_or(0);
            if let Some(Json::Arr(runs)) = world.get("runs") {
                for run in runs {
                    println!(
                        "  {:<8} {:>10} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>12.3} {:>8.2}x {:>8.2}x",
                        scale,
                        transfers,
                        int_of(run.get("threads")).unwrap_or(0),
                        ms(int_of(run.get("wall_ns")).unwrap_or(0)),
                        ms(int_of(run.get("decode_ns")).unwrap_or(0)),
                        ms(int_of(run.get("commit_ns")).unwrap_or(0)),
                        ms(int_of(run.get("reconcile_ns")).unwrap_or(0)),
                        float_of(run.get("speedup_vs_pr4")).unwrap_or(0.0),
                        float_of(run.get("speedup_vs_materializing")).unwrap_or(0.0),
                    );
                }
            }
        }
    }
    if let Some(headline) = float_of(ingest.get("build_dataset_speedup_large_8_threads")) {
        println!("  build_dataset speedup, large world @ 8 threads vs PR-4: {headline:.2}x");
    }
    print_commit_scaling(ingest, host);
}

/// The commit-phase thread-scaling curve per sweep world: how much of the
/// formerly serial probe-and-commit the parallel reconcile + splice actually
/// buys at each thread count. Printed with the host's thread count, since
/// efficiency above the host's physical parallelism is noise, not signal.
fn print_commit_scaling(ingest: &Json, host: i64) {
    let Some(Json::Arr(worlds)) = ingest.get("worlds") else {
        return;
    };
    println!(
        "  commit-phase scaling (speedup over each world's serial commit, host threads: {host}):"
    );
    for world in worlds {
        let scale = str_of(world.get("scale")).unwrap_or("?");
        let Some(Json::Arr(points)) = world.get("commit_scaling") else {
            continue;
        };
        let curve: Vec<String> = points
            .iter()
            .map(|point| {
                format!(
                    "{}t {:.2}x (eff {:.2})",
                    int_of(point.get("threads")).unwrap_or(0),
                    float_of(point.get("speedup_vs_serial_commit")).unwrap_or(0.0),
                    float_of(point.get("efficiency")).unwrap_or(0.0),
                )
            })
            .collect();
        println!("    {:<8} {}", scale, curve.join("  "));
    }
    if let Some(efficiency) = float_of(ingest.get("scaling_efficiency")) {
        println!("  commit scaling efficiency, large world @ 8 threads: {efficiency:.2}");
    }
}

fn print_scale_baselines(root: &Json) {
    for (section, label) in [
        ("columnar_large", "pipeline (large world)"),
        ("bench_streaming_large", "streaming (large world)"),
        ("serving_large", "serving (large world)"),
    ] {
        let Some(value) = root.get(section) else {
            continue;
        };
        match section {
            "columnar_large" => {
                if let (Some(end), Some(tps)) =
                    (int_of(value.get("end_to_end_ns")), float_of(value.get("transfers_per_sec")))
                {
                    println!("{label}: end-to-end {:.1} ms, {:.0} transfers/sec", ms(end), tps);
                }
                if let Some(Json::Arr(stages)) = value.get("stages") {
                    for stage in stages {
                        if let (Some(name), Some(wall), Some(speedup)) = (
                            str_of(stage.get("stage")),
                            int_of(stage.get("wall_time_ns")),
                            float_of(stage.get("speedup_vs_pr5")),
                        ) {
                            println!(
                                "  {:<16} {:>10.3} ms   vs PR-5: {:>6.2}x",
                                name,
                                ms(wall),
                                speedup
                            );
                        }
                    }
                }
                if let Some(speedup) = float_of(value.get("speedup_vs_pr5_end_to_end")) {
                    println!("  stage-total speedup vs PR-5: {speedup:.2}x");
                }
            }
            "bench_streaming_large" => {
                if let (Some(total), Some(bps)) =
                    (int_of(value.get("stream_total_ns")), float_of(value.get("blocks_per_sec")))
                {
                    println!("{label}: full pass {:.1} ms, {:.0} blocks/sec", ms(total), bps);
                }
            }
            _ => {
                if let Some(qps) = float_of(value.get("peak_qps")) {
                    println!("{label}: peak {qps:.0} qps");
                }
            }
        }
    }
}

fn print_snapshot_delta(root: &Json) {
    let Some(section) = root.get("snapshot_delta") else {
        println!(
            "(no `snapshot_delta` section — run `cargo bench -p bench --bench snapshot_delta`)"
        );
        return;
    };
    println!("delta-encoded snapshot publishing (per-epoch vs full rebuild at the same state):");
    println!(
        "  {:<10} {:>7} {:>7} {:>14} {:>14} {:>9} {:>7}",
        "world", "epochs", "deltas", "publish ns", "full ns", "speedup", "reuse"
    );
    let Some(Json::Arr(worlds)) = section.get("worlds") else {
        return;
    };
    for world in worlds {
        println!(
            "  {:<10} {:>7} {:>7} {:>14} {:>14} {:>8.1}x {:>7.3}",
            str_of(world.get("world")).unwrap_or("?"),
            int_of(world.get("epochs")).unwrap_or(0),
            int_of(world.get("delta_epochs")).unwrap_or(0),
            int_of(world.get("steady_state_publish_ns")).unwrap_or(0),
            int_of(world.get("steady_state_full_rebuild_ns")).unwrap_or(0),
            float_of(world.get("speedup_delta_vs_full")).unwrap_or(0.0),
            float_of(world.get("steady_state_chunk_reuse")).unwrap_or(0.0),
        );
    }
    println!(
        "  (steady state = last quarter of epochs; speedup = median of per-epoch paired ratios)"
    );
}

fn print_reassemble(root: &Json) {
    let Some(section) = root.get("reassemble") else {
        println!(
            "(no `reassemble` section — run `cargo bench -p bench --bench reassemble_scaling`)"
        );
        return;
    };
    println!("dirty-driven report reassembly (per-epoch vs full rescan of the same state):");
    println!(
        "  {:<10} {:>7} {:>14} {:>14} {:>9} {:>7}",
        "world", "epochs", "reassemble ns", "full ns", "speedup", "dirty"
    );
    let Some(Json::Arr(worlds)) = section.get("worlds") else {
        return;
    };
    for world in worlds {
        println!(
            "  {:<10} {:>7} {:>14} {:>14} {:>8.1}x {:>7.4}",
            str_of(world.get("world")).unwrap_or("?"),
            int_of(world.get("epochs")).unwrap_or(0),
            int_of(world.get("steady_state_reassemble_ns")).unwrap_or(0),
            int_of(world.get("steady_state_full_rescan_ns")).unwrap_or(0),
            float_of(world.get("speedup_incremental_vs_full")).unwrap_or(0.0),
            float_of(world.get("steady_state_dirty_fraction")).unwrap_or(0.0),
        );
    }
    println!(
        "  (steady state = last quarter of epochs; speedup = median of per-epoch paired ratios)"
    );
}

fn print_observability(root: &Json) {
    let Some(section) = root.get("observability") else {
        println!("(no `observability` section — run `cargo bench -p bench --bench observability`)");
        return;
    };
    let mode = str_of(section.get("mode")).unwrap_or("?");
    println!("observability overhead (mode: {mode}):");
    println!(
        "  per-op: counter {:.1} ns, histogram {:.1} ns, span {:.1} ns, trace span {:.1} ns",
        float_of(section.get("counter_add_ns")).unwrap_or(0.0),
        float_of(section.get("histogram_record_ns")).unwrap_or(0.0),
        float_of(section.get("span_guard_ns")).unwrap_or(0.0),
        float_of(section.get("trace_span_ns")).unwrap_or(0.0),
    );
    println!(
        "  snapshot: {:.3} ms over {} metrics",
        ms(int_of(section.get("snapshot_ns")).unwrap_or(0)),
        int_of(section.get("snapshot_metrics")).unwrap_or(0),
    );
    if let (Some(on), Some(off), Some(pct)) = (
        int_of(section.get("large_world_instrumented_ns")),
        int_of(section.get("large_world_recording_off_ns")),
        float_of(section.get("overhead_pct")),
    ) {
        println!(
            "  large world end-to-end: instrumented {:.1} ms vs recording-off {:.1} ms ({:+.2}%)",
            ms(on),
            ms(off),
            pct
        );
    }
    print_health(section);
}

/// The latest health/SLO report the observability bench's streamed pass
/// recorded: one row per objective, mirroring `HealthReport::render_text`.
fn print_health(section: &Json) {
    let Some(health) = section.get("health") else {
        return;
    };
    let healthy = matches!(health.get("healthy"), Some(Json::Bool(true)));
    println!(
        "  health: {} after {} per-epoch SLO evaluations",
        if healthy { "HEALTHY" } else { "UNHEALTHY" },
        int_of(health.get("evaluations")).unwrap_or(0),
    );
    let Some(Json::Arr(verdicts)) = health.get("verdicts") else {
        return;
    };
    for verdict in verdicts {
        println!(
            "    [{}] {:<16} observed {:>12} threshold {:>12} burn {} (total {})",
            if matches!(verdict.get("healthy"), Some(Json::Bool(true))) { " ok " } else { "FAIL" },
            str_of(verdict.get("slo")).unwrap_or("?"),
            int_of(verdict.get("observed")).unwrap_or(0),
            int_of(verdict.get("threshold")).unwrap_or(0),
            int_of(verdict.get("burn")).unwrap_or(0),
            int_of(verdict.get("total_burn")).unwrap_or(0),
        );
    }
}

fn main() {
    let path = results_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(error) => {
            println!("no results file at {} ({error}); nothing to summarize", path.display());
            return;
        }
    };
    let root = match parse(&text) {
        Ok(root) => root,
        Err(error) => {
            println!("could not parse {}: {error}", path.display());
            return;
        }
    };
    println!("== perf summary ({}) ==", path.display());
    print_stage_table(&root);
    println!();
    print_ingest_table(&root);
    println!();
    print_scale_baselines(&root);
    println!();
    print_snapshot_delta(&root);
    println!();
    print_reassemble(&root);
    println!();
    print_observability(&root);
}
