//! A minimal JSON value, renderer and parser.
//!
//! The workspace's `serde` is an offline marker shim with no serializer, so
//! the benchmark results file (`BENCH_results.json`) is produced through this
//! self-contained module instead: enough JSON to render the perf sections,
//! and a parser so separate producers (the `experiments` binary, the
//! streaming bench) can merge their sections into one file.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order is not required for the
/// results file, so they are kept sorted (BTreeMap) for stable output.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (kept exact; nanosecond timings exceed f64's 2^53 comfort
    /// zone less often than not, but exact is exact).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Insert a key into an object (panics on non-objects — construction
    /// bug, not data).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value);
            }
            other => panic!("Json::set on a non-object: {other:?}"),
        }
        self
    }

    /// Fetch a key from an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if !f.is_finite() {
                    // JSON has no Inf/NaN; null is the least-wrong encoding.
                    out.push_str("null");
                } else if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep integral floats distinguishable from Ints.
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in map.iter().enumerate() {
                    out.push_str(&pad_in);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns `Err` with a short reason on malformed
/// input; used only to merge our own output, so coverage of exotic inputs
/// (huge exponents, surrogate escapes) errs rather than guesses.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']', found {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' after key at byte {pos}"));
                }
                *pos += 1;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    other => return Err(format!("expected ',' or '}}', found {other:?}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&byte) = bytes.get(*pos) {
        match byte {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unexpected end of string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if text.contains(['.', 'e', 'E']) {
        text.parse::<f64>().map(Json::Float).map_err(|e| e.to_string())
    } else {
        text.parse::<i64>().map(Json::Int).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let mut obj = Json::object();
        obj.set("name", Json::Str("stream \"bench\"\n".to_string()));
        obj.set("count", Json::Int(12_345_678_901_234));
        obj.set("ratio", Json::Float(0.125));
        obj.set("whole", Json::Float(3.0));
        obj.set("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        obj.set("empty_arr", Json::Arr(vec![]));
        obj.set("nested", {
            let mut inner = Json::object();
            inner.set("k", Json::Int(-7));
            inner
        });
        let rendered = obj.render();
        let parsed = parse(&rendered).expect("round trip parses");
        assert_eq!(parsed, obj);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn get_and_set_access_objects() {
        let mut obj = Json::object();
        obj.set("a", Json::Int(1));
        assert_eq!(obj.get("a"), Some(&Json::Int(1)));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(Json::Null.get("a"), None);
    }
}
