//! `BENCH_results.json`: the machine-readable perf trajectory.
//!
//! Every perf producer — the `experiments` binary (stage timings, streaming
//! epochs) and the streaming-throughput bench — merges its section into one
//! JSON object keyed by section name, so CI can upload a single artifact and
//! downstream tooling can diff numbers PR over PR.

use std::path::{Path, PathBuf};

use crate::json::{parse, Json};

/// Environment variable overriding where the results file is written.
pub const RESULTS_PATH_ENV: &str = "BENCH_RESULTS_PATH";

/// Default results file name.
pub const RESULTS_FILE: &str = "BENCH_results.json";

/// Where to write results: `$BENCH_RESULTS_PATH`, or `BENCH_results.json` at
/// the workspace root. The root is resolved from this crate's manifest dir,
/// not the current directory — `cargo run` and `cargo bench` execute with
/// different working directories, and every producer must hit the same file.
pub fn results_path() -> PathBuf {
    if let Some(path) = std::env::var_os(RESULTS_PATH_ENV) {
        return PathBuf::from(path);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(RESULTS_FILE)
}

/// Environment variable overriding where the Chrome trace export is written.
pub const TRACE_PATH_ENV: &str = "CHROME_TRACE_PATH";

/// Where the observability bench writes its Chrome trace-event export:
/// `$CHROME_TRACE_PATH`, or `chrome_trace.json` under `target/` at the
/// workspace root. The same variable points the repo-level `trace_export`
/// gate at the file, so producer and validator agree by construction.
pub fn trace_path() -> PathBuf {
    if let Some(path) = std::env::var_os(TRACE_PATH_ENV) {
        return PathBuf::from(path);
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("target").join("chrome_trace.json")
}

/// Merge `section` into the JSON object at `path`, replacing any previous
/// value under that key. A missing or unparseable file starts a fresh object
/// (the file is a build artifact, not a source of truth).
///
/// # Errors
///
/// Propagates I/O errors from reading or writing the file.
pub fn merge_section(path: &Path, section: &str, value: Json) -> std::io::Result<()> {
    let mut root = match std::fs::read_to_string(path) {
        Ok(text) => parse(&text).unwrap_or_else(|_| Json::object()),
        Err(_) => Json::object(),
    };
    if !matches!(root, Json::Obj(_)) {
        root = Json::object();
    }
    root.set(section, value);
    std::fs::write(path, root.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_accumulate_and_replace() {
        let dir = std::env::temp_dir().join(format!("bench-results-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        let _ = std::fs::remove_file(&path);

        let mut stages = Json::object();
        stages.set("detect_ns", Json::Int(123));
        merge_section(&path, "stages", stages.clone()).unwrap();

        let mut streaming = Json::object();
        streaming.set("blocks_per_sec", Json::Float(1_000.5));
        merge_section(&path, "streaming", streaming).unwrap();

        let merged = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.get("stages"), Some(&stages));
        assert!(merged.get("streaming").is_some());

        // Replacing a section keeps the others.
        let mut stages2 = Json::object();
        stages2.set("detect_ns", Json::Int(456));
        merge_section(&path, "stages", stages2.clone()).unwrap();
        let merged = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(merged.get("stages"), Some(&stages2));
        assert!(merged.get("streaming").is_some());

        std::fs::remove_file(&path).unwrap();
    }
}
