//! Shared helpers for the benchmark suite and the `experiments` binary:
//! world construction at standard scales, pipeline execution, the paper's
//! reference values for every table and figure, and the machine-readable
//! results file ([`results`], [`json`]) tracking the perf trajectory.

pub mod json;
pub mod results;

use washtrade::dataset::{Dataset, NftTransfer};
use washtrade::pipeline::{analyze, AnalysisInput, AnalysisReport};
use workload::{WorkloadConfig, World, WorldScale};

/// Build a world at one of the standard experiment scales.
///
/// `scale` is the fraction of the paper's 12,413 activities to generate; the
/// proportions (venue mix, evidence mix, pattern mix, lifetimes) are
/// preserved at any scale.
pub fn build_world(scale: f64, seed: u64) -> World {
    World::generate(WorkloadConfig::paper_scaled(seed, scale)).expect("world generation succeeds")
}

/// Build the small test-sized world used by the cheaper benchmarks.
pub fn build_small_world(seed: u64) -> World {
    World::generate(WorkloadConfig::small(seed)).expect("world generation succeeds")
}

/// The standard seed every scale-sweep world uses, so numbers recorded at
/// different times (and the [`pr4_baseline`] constants) describe the same
/// chains.
pub const SWEEP_SEED: u64 = 7;

/// Build one of the three standard sweep worlds ([`WorldScale`]) at the
/// standard seed.
pub fn build_sized_world(scale: WorldScale) -> World {
    World::generate(scale.config(SWEEP_SEED)).expect("world generation succeeds")
}

/// The serial, materializing ingest path as it shipped before the two-phase
/// sharded pipeline: `chain.logs` clones every matching log into a
/// `Vec<LogEntry>`, a first pass probes compliance per entry, a second pass
/// re-looks the transaction up by hash and re-scans its ERC-20 payment logs
/// for every ERC-721 log it carries.
///
/// Kept (in the bench crate only) as the same-binary baseline the
/// ingest-throughput sweep measures against; `sweeps_match_the_sharded_path`
/// pins it bit-identical to the production path.
pub mod legacy {
    use super::*;
    use ethsim::{Chain, Wei};
    use marketplace::MarketplaceDirectory;
    use tokens::NftId;

    /// Build a dataset through the pre-sharding ingest path.
    pub fn materializing_ingest(chain: &Chain, directory: &MarketplaceDirectory) -> Dataset {
        let entries = chain.logs(&Dataset::transfer_filter());
        let mut dataset = Dataset::default();
        dataset.raw_transfer_events += entries.len();
        for entry in &entries {
            let contract = entry.log.address;
            if dataset.compliant_contracts.contains(&contract)
                || dataset.non_compliant_contracts.contains(&contract)
            {
                continue;
            }
            let supports = chain
                .code_at(contract)
                .map(tokens::compliance::supports_erc721_interface)
                .unwrap_or(false);
            if supports {
                dataset.compliant_contracts.insert(contract);
            } else {
                dataset.non_compliant_contracts.insert(contract);
            }
        }
        for entry in &entries {
            let Some(decoded) = entry.log.decode_erc721_transfer() else {
                continue;
            };
            if !dataset.compliant_contracts.contains(&decoded.contract) {
                continue;
            }
            let tx = chain.transaction(entry.tx_hash).expect("log entries have transactions");
            let price = if !tx.value.is_zero() {
                tx.value
            } else {
                let erc20_paid: u128 = tx
                    .logs
                    .iter()
                    .filter_map(|log| log.decode_erc20_transfer())
                    .filter(|t| t.from == decoded.to)
                    .map(|t| t.amount)
                    .sum();
                Wei::new(erc20_paid)
            };
            let marketplace = tx.to.filter(|to| directory.by_contract(*to).is_some());
            dataset.push_transfer(&NftTransfer {
                nft: NftId::new(decoded.contract, decoded.token_id),
                from: decoded.from,
                to: decoded.to,
                tx_hash: entry.tx_hash,
                block: entry.block,
                timestamp: entry.timestamp,
                price,
                marketplace,
            });
        }
        dataset
    }
}

/// The `build_dataset` stage of the PR-4 binary (the commit immediately
/// before the two-phase sharded ingest landed), measured on the single-core
/// reference machine over the exact sweep worlds ([`WorldScale`] × seed
/// [`SWEEP_SEED`]) right before this PR's changes — the cross-PR trajectory
/// baseline the ingest bench reports speedups against, following the
/// [`pr2_baseline`] convention. (The [`legacy`] path is the complementary
/// *same-binary* baseline: the old algorithm recompiled against the current
/// substrate, so both algorithm-level and end-state speedups stay visible.)
pub mod pr4_baseline {
    /// `(scale label, build_dataset wall ns, compliant transfers)` per sweep
    /// world.
    pub const BUILD_DATASET_NS: [(&str, u64, u64); 3] = [
        ("small", 4_237_411, 4_352),
        ("medium", 23_617_846, 17_819),
        ("large", 57_541_310, 40_151),
    ];

    /// The recorded baseline for one scale label.
    pub fn for_scale(label: &str) -> Option<(u64, u64)> {
        BUILD_DATASET_NS
            .iter()
            .find(|(scale, _, _)| *scale == label)
            .map(|(_, ns, transfers)| (*ns, *transfers))
    }
}

/// The staged pipeline's timings on the **large** sweep world
/// ([`WorldScale::Large`] × seed [`SWEEP_SEED`]) as of PR 5 — the
/// `columnar_large` section of `BENCH_results.json` measured on the
/// single-core reference machine immediately before the parallel-commit +
/// arena-graph PR landed, best of five passes per stage to filter scheduler
/// noise. The `pipeline_throughput` bench reports `speedup_vs_pr5` against
/// these numbers: refine and graph construction were the rising hotspots
/// this PR attacks, so their trajectory is the headline.
pub mod pr5_baseline {
    /// `(stage name, wall-time ns)` per pipeline stage, in execution order.
    pub const STAGES_NS: [(&str, u64); 6] = [
        ("build_dataset", 22_229_824),
        ("build_graphs", 17_358_180),
        ("refine", 22_000_782),
        ("detect", 10_065_224),
        ("characterize", 18_483_705),
        ("profit", 8_232_889),
    ];
    /// Sum of the stage timings, nanoseconds.
    pub const STAGE_TOTAL_NS: u64 = 98_370_604;
    /// Compliant transfers in the large sweep world at that commit.
    pub const TRANSFERS: u64 = 40_151;

    /// The recorded baseline for one stage name.
    pub fn for_stage(name: &str) -> Option<u64> {
        STAGES_NS.iter().find(|(stage, _)| *stage == name).map(|(_, ns)| *ns)
    }
}

/// The [`AnalysisInput`] view of a world — one place to keep the field
/// plumbing when `AnalysisInput` grows.
pub fn input_of(world: &World) -> AnalysisInput<'_> {
    AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    }
}

/// Run the full analysis pipeline over a world.
pub fn analyze_world(world: &World) -> AnalysisReport {
    analyze(input_of(world))
}

/// The paper's reference values, used by the `experiments` binary to print
/// measured-vs-paper comparisons and by EXPERIMENTS.md.
pub mod paper {
    /// Table II: share of each marketplace's volume that is wash trading.
    pub const WASH_SHARE_LOOKSRARE: f64 = 0.8479;
    /// Table II: OpenSea wash share of its total volume.
    pub const WASH_SHARE_OPENSEA: f64 = 0.0049;
    /// Fraction of all wash-trading volume generated on LooksRare.
    pub const LOOKSRARE_SHARE_OF_WASH_VOLUME: f64 = 0.9741;
    /// Fig. 2: total activities confirmed by at least one flow method.
    pub const VENN_TOTAL: usize = 11_454;
    /// Fig. 2 buckets: (zero-risk only, funder only, exit only, z∩f, z∩e, f∩e, all).
    pub const VENN_BUCKETS: [usize; 7] = [256, 536, 2_777, 253, 582, 5_020, 2_030];
    /// Fraction of activities detected by at least two approaches.
    pub const AT_LEAST_TWO_METHODS: f64 = 0.68;
    /// Fig. 4: fraction of activities lasting at most one day.
    pub const LIFETIME_ONE_DAY: f64 = 0.33;
    /// Fig. 4: fraction of activities lasting less than ten days.
    pub const LIFETIME_TEN_DAYS: f64 = 0.5167;
    /// Fig. 6: fraction of activities performed by exactly two accounts.
    pub const TWO_ACCOUNT_FRACTION: f64 = 0.5986;
    /// Fig. 7: occurrences per pattern id.
    pub const PATTERN_OCCURRENCES: [(usize, usize); 12] = [
        (0, 942),
        (1, 7_431),
        (2, 1_592),
        (3, 786),
        (4, 17),
        (5, 450),
        (6, 146),
        (7, 134),
        (8, 9),
        (9, 4),
        (10, 115),
        (11, 22),
    ];
    /// §V-D: fraction of involved accounts that are serial wash traders.
    pub const SERIAL_ACCOUNT_FRACTION: f64 = 0.2716;
    /// §V-D: fraction of activities involving serial wash traders.
    pub const SERIAL_ACTIVITY_FRACTION: f64 = 0.7293;
    /// Table III: success rate of claimed reward-farming activities on
    /// LooksRare (365 of 457).
    pub const LOOKSRARE_REWARD_SUCCESS: f64 = 0.80;
    /// Table III: success rate on Rarible (107 of 113).
    pub const RARIBLE_REWARD_SUCCESS: f64 = 0.93;
    /// §VI-B: fraction of resale-venue activities not followed by a sale.
    pub const NOT_RESOLD_FRACTION: f64 = 0.647;
    /// §VI-B: fraction of resold activities that profit once fees are counted.
    pub const RESALE_PROFIT_FRACTION: f64 = 0.504;
    /// §V-B: fraction of NFTs bought the same day the manipulation started.
    pub const ACQUIRED_SAME_DAY: f64 = 0.39;
}

/// The PR-2 (address-keyed, map-based) pipeline's timings on the standard
/// experiments workload (`paper_scaled(7, 0.02)`, single-core reference
/// machine), recorded from `BENCH_results.json` immediately before the
/// interned-ID columnar core landed. The `pipeline_throughput` bench reports
/// the columnar pipeline's speedup against these numbers so the perf
/// trajectory stays visible PR over PR.
pub mod pr2_baseline {
    /// `(stage name, wall-time ns)` per pipeline stage, in execution order.
    pub const STAGES_NS: [(&str, u64); 6] = [
        ("build_dataset", 11_424_256),
        ("build_graphs", 3_056_126),
        ("refine", 3_850_612),
        ("detect", 2_309_878),
        ("characterize", 37_431_393),
        ("profit", 2_031_417),
    ];
    /// End-to-end wall time (sum of the stage timings), nanoseconds.
    pub const END_TO_END_NS: u64 = 60_103_682;
    /// Compliant transfers in the workload at that scale.
    pub const TRANSFERS: u64 = 8_248;
    /// The epoch-sliced streaming pass over the same world, nanoseconds.
    pub const STREAM_TOTAL_NS: u64 = 151_004_424;
}

/// Format a measured-vs-paper comparison line.
pub fn compare(label: &str, measured: f64, paper: f64, unit: &str) -> String {
    format!("  {label:<52} measured: {measured:>10.3}{unit}   paper: {paper:>10.3}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_analysis_round_trips() {
        let world = build_small_world(3);
        let report = analyze_world(&world);
        assert!(!report.detection.confirmed.is_empty());
    }

    #[test]
    fn paper_venn_buckets_sum_to_total() {
        assert_eq!(paper::VENN_BUCKETS.iter().sum::<usize>(), paper::VENN_TOTAL);
    }

    #[test]
    fn legacy_ingest_matches_the_sharded_path() {
        let world = build_small_world(9);
        let baseline = legacy::materializing_ingest(&world.chain, &world.directory);
        let sharded = Dataset::build_with(
            &world.chain,
            &world.directory,
            &washtrade::parallel::Executor::new(4),
        );
        assert_eq!(baseline, sharded, "legacy baseline drifted from the production ingest");
    }

    #[test]
    fn pr5_baseline_stages_are_consistent() {
        assert_eq!(pr5_baseline::STAGES_NS.iter().map(|(_, ns)| ns).sum::<u64>(), {
            pr5_baseline::STAGE_TOTAL_NS
        });
        assert_eq!(pr5_baseline::for_stage("refine"), Some(22_000_782));
        assert!(pr5_baseline::for_stage("galactic").is_none());
        // The baseline describes the same world the pr4 sweep constants do.
        let (_, pr4_transfers) = pr4_baseline::for_scale("large").unwrap();
        assert_eq!(pr5_baseline::TRANSFERS, pr4_transfers);
    }

    #[test]
    fn pr4_baseline_covers_every_sweep_scale() {
        for scale in WorldScale::ALL {
            assert!(pr4_baseline::for_scale(scale.label()).is_some(), "{:?}", scale);
        }
        assert!(pr4_baseline::for_scale("galactic").is_none());
    }
}
