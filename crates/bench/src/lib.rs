//! Shared helpers for the benchmark suite and the `experiments` binary:
//! world construction at standard scales, pipeline execution, the paper's
//! reference values for every table and figure, and the machine-readable
//! results file ([`results`], [`json`]) tracking the perf trajectory.

pub mod json;
pub mod results;

use washtrade::pipeline::{analyze, AnalysisInput, AnalysisReport};
use workload::{WorkloadConfig, World};

/// Build a world at one of the standard experiment scales.
///
/// `scale` is the fraction of the paper's 12,413 activities to generate; the
/// proportions (venue mix, evidence mix, pattern mix, lifetimes) are
/// preserved at any scale.
pub fn build_world(scale: f64, seed: u64) -> World {
    World::generate(WorkloadConfig::paper_scaled(seed, scale)).expect("world generation succeeds")
}

/// Build the small test-sized world used by the cheaper benchmarks.
pub fn build_small_world(seed: u64) -> World {
    World::generate(WorkloadConfig::small(seed)).expect("world generation succeeds")
}

/// The [`AnalysisInput`] view of a world — one place to keep the field
/// plumbing when `AnalysisInput` grows.
pub fn input_of(world: &World) -> AnalysisInput<'_> {
    AnalysisInput {
        chain: &world.chain,
        labels: &world.labels,
        directory: &world.directory,
        oracle: &world.oracle,
    }
}

/// Run the full analysis pipeline over a world.
pub fn analyze_world(world: &World) -> AnalysisReport {
    analyze(input_of(world))
}

/// The paper's reference values, used by the `experiments` binary to print
/// measured-vs-paper comparisons and by EXPERIMENTS.md.
pub mod paper {
    /// Table II: share of each marketplace's volume that is wash trading.
    pub const WASH_SHARE_LOOKSRARE: f64 = 0.8479;
    /// Table II: OpenSea wash share of its total volume.
    pub const WASH_SHARE_OPENSEA: f64 = 0.0049;
    /// Fraction of all wash-trading volume generated on LooksRare.
    pub const LOOKSRARE_SHARE_OF_WASH_VOLUME: f64 = 0.9741;
    /// Fig. 2: total activities confirmed by at least one flow method.
    pub const VENN_TOTAL: usize = 11_454;
    /// Fig. 2 buckets: (zero-risk only, funder only, exit only, z∩f, z∩e, f∩e, all).
    pub const VENN_BUCKETS: [usize; 7] = [256, 536, 2_777, 253, 582, 5_020, 2_030];
    /// Fraction of activities detected by at least two approaches.
    pub const AT_LEAST_TWO_METHODS: f64 = 0.68;
    /// Fig. 4: fraction of activities lasting at most one day.
    pub const LIFETIME_ONE_DAY: f64 = 0.33;
    /// Fig. 4: fraction of activities lasting less than ten days.
    pub const LIFETIME_TEN_DAYS: f64 = 0.5167;
    /// Fig. 6: fraction of activities performed by exactly two accounts.
    pub const TWO_ACCOUNT_FRACTION: f64 = 0.5986;
    /// Fig. 7: occurrences per pattern id.
    pub const PATTERN_OCCURRENCES: [(usize, usize); 12] = [
        (0, 942),
        (1, 7_431),
        (2, 1_592),
        (3, 786),
        (4, 17),
        (5, 450),
        (6, 146),
        (7, 134),
        (8, 9),
        (9, 4),
        (10, 115),
        (11, 22),
    ];
    /// §V-D: fraction of involved accounts that are serial wash traders.
    pub const SERIAL_ACCOUNT_FRACTION: f64 = 0.2716;
    /// §V-D: fraction of activities involving serial wash traders.
    pub const SERIAL_ACTIVITY_FRACTION: f64 = 0.7293;
    /// Table III: success rate of claimed reward-farming activities on
    /// LooksRare (365 of 457).
    pub const LOOKSRARE_REWARD_SUCCESS: f64 = 0.80;
    /// Table III: success rate on Rarible (107 of 113).
    pub const RARIBLE_REWARD_SUCCESS: f64 = 0.93;
    /// §VI-B: fraction of resale-venue activities not followed by a sale.
    pub const NOT_RESOLD_FRACTION: f64 = 0.647;
    /// §VI-B: fraction of resold activities that profit once fees are counted.
    pub const RESALE_PROFIT_FRACTION: f64 = 0.504;
    /// §V-B: fraction of NFTs bought the same day the manipulation started.
    pub const ACQUIRED_SAME_DAY: f64 = 0.39;
}

/// The PR-2 (address-keyed, map-based) pipeline's timings on the standard
/// experiments workload (`paper_scaled(7, 0.02)`, single-core reference
/// machine), recorded from `BENCH_results.json` immediately before the
/// interned-ID columnar core landed. The `pipeline_throughput` bench reports
/// the columnar pipeline's speedup against these numbers so the perf
/// trajectory stays visible PR over PR.
pub mod pr2_baseline {
    /// `(stage name, wall-time ns)` per pipeline stage, in execution order.
    pub const STAGES_NS: [(&str, u64); 6] = [
        ("build_dataset", 11_424_256),
        ("build_graphs", 3_056_126),
        ("refine", 3_850_612),
        ("detect", 2_309_878),
        ("characterize", 37_431_393),
        ("profit", 2_031_417),
    ];
    /// End-to-end wall time (sum of the stage timings), nanoseconds.
    pub const END_TO_END_NS: u64 = 60_103_682;
    /// Compliant transfers in the workload at that scale.
    pub const TRANSFERS: u64 = 8_248;
    /// The epoch-sliced streaming pass over the same world, nanoseconds.
    pub const STREAM_TOTAL_NS: u64 = 151_004_424;
}

/// Format a measured-vs-paper comparison line.
pub fn compare(label: &str, measured: f64, paper: f64, unit: &str) -> String {
    format!("  {label:<52} measured: {measured:>10.3}{unit}   paper: {paper:>10.3}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_world_analysis_round_trips() {
        let world = build_small_world(3);
        let report = analyze_world(&world);
        assert!(!report.detection.confirmed.is_empty());
    }

    #[test]
    fn paper_venn_buckets_sum_to_total() {
        assert_eq!(paper::VENN_BUCKETS.iter().sum::<usize>(), paper::VENN_TOTAL);
    }
}
