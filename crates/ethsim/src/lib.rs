//! # ethsim — an in-memory Ethereum-like blockchain substrate
//!
//! The paper *"A Game of NFTs: Characterizing NFT Wash Trading in the Ethereum
//! Blockchain"* (ICDCS 2023) analyses the real Ethereum chain through a local
//! Geth full node queried via Web3. This crate is the reproduction's
//! substitute for that substrate: a deterministic, in-memory chain with
//!
//! * EOA and contract accounts (contracts are distinguished by bytecode,
//!   exactly as the paper's refinement step does),
//! * blocks, transactions, ETH accounting, gas fees and internal transfers,
//! * event logs with the real ERC-20 / ERC-721 / ERC-1155 `Transfer`
//!   signatures (a from-scratch Keccak-256 in [`keccak`] makes those genuine),
//! * a query API ([`chain::LogFilter`], [`Chain::logs`],
//!   [`Chain::transactions_of`]) mirroring the `eth_getLogs` / account-scan
//!   workflow the paper uses to build its dataset.
//!
//! Higher-level crates (`tokens`, `marketplace`, `workload`) build simulated
//! contract behaviour on top of [`TxRequest`]s; the `washtrade` crate then
//! runs the paper's detection pipeline against the resulting chain.
//!
//! # Quick example
//!
//! ```
//! use ethsim::prelude::*;
//!
//! # fn main() -> Result<(), ethsim::chain::ChainError> {
//! let mut chain = Chain::new(Timestamp::from_secs(1_640_995_200));
//! let alice = chain.create_eoa("alice")?;
//! let bob = chain.create_eoa("bob")?;
//! chain.fund(alice, Wei::from_eth(5.0));
//! chain.submit(TxRequest::ether_transfer(alice, bob, Wei::from_eth(1.0), Wei::from_gwei(30)))?;
//! assert_eq!(chain.balance(bob), Wei::from_eth(1.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod block;
pub mod chain;
pub mod fxhash;
pub mod keccak;
pub mod log;
pub mod transaction;
pub mod types;

pub use account::{Account, AccountKind};
pub use block::Block;
pub use chain::{BlockSpan, Chain, ChainError, ChainStats, LogEntry, LogFilter};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use log::{Erc20Transfer, Erc721Transfer, Log};
pub use transaction::{InternalTransfer, Transaction, TxRequest};
pub use types::{Address, BlockNumber, Selector, Timestamp, TxHash, Wei, B256};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::chain::{Chain, ChainError, LogEntry, LogFilter};
    pub use crate::log::Log;
    pub use crate::transaction::{Transaction, TxRequest};
    pub use crate::types::{Address, BlockNumber, Selector, Timestamp, TxHash, Wei, B256};
}
