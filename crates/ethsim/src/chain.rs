//! The in-memory chain: account state, blocks, transaction execution and
//! indexing.
//!
//! [`Chain`] plays the role of the local Geth full node in the paper's
//! methodology: higher layers submit [`TxRequest`]s, the chain performs ETH
//! accounting, assigns hashes/blocks/timestamps, and maintains the indexes
//! that the `node` query API (the Web3 substitute) exposes.

use serde::{Deserialize, Serialize};

use crate::account::{Account, AccountKind};
use crate::block::Block;
use crate::fxhash::FxHashMap;
use crate::log::Log;
use crate::transaction::{Transaction, TxRequest};
use crate::types::{Address, BlockNumber, Timestamp, TxHash, Wei, B256};

/// Errors produced when mutating the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The sender (or an internal-transfer source) does not exist.
    UnknownAccount(Address),
    /// An account attempted to spend more ETH than it holds.
    InsufficientBalance {
        /// The overdrawn account.
        account: Address,
        /// What the transfer needed.
        needed: Wei,
        /// What the account held.
        available: Wei,
    },
    /// An account with this address already exists.
    AccountExists(Address),
    /// Attempted to seal a block with a timestamp earlier than the current one.
    NonMonotonicTimestamp {
        /// Timestamp of the currently open block.
        current: Timestamp,
        /// The (earlier) timestamp that was requested.
        requested: Timestamp,
    },
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::UnknownAccount(a) => write!(f, "unknown account {a}"),
            ChainError::InsufficientBalance { account, needed, available } => write!(
                f,
                "insufficient balance for {account}: needed {needed}, available {available}"
            ),
            ChainError::AccountExists(a) => write!(f, "account {a} already exists"),
            ChainError::NonMonotonicTimestamp { current, requested } => write!(
                f,
                "block timestamp must not decrease (current {current}, requested {requested})"
            ),
        }
    }
}

impl std::error::Error for ChainError {}

/// A log together with its provenance (transaction, block, position).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Hash of the transaction that emitted the log.
    pub tx_hash: TxHash,
    /// Block of that transaction.
    pub block: BlockNumber,
    /// Timestamp of that block.
    pub timestamp: Timestamp,
    /// Index of the log within the transaction.
    pub log_index: usize,
    /// The log itself.
    pub log: crate::log::Log,
}

/// A filter over event logs, mirroring `eth_getLogs`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogFilter {
    /// Only logs whose first topic equals this value.
    pub topic0: Option<B256>,
    /// Only logs emitted by this contract.
    pub address: Option<Address>,
    /// Only logs with exactly this many topics (the paper distinguishes
    /// ERC-721 from ERC-20 by topic count).
    pub topic_count: Option<usize>,
    /// Inclusive lower block bound.
    pub from_block: Option<BlockNumber>,
    /// Inclusive upper block bound.
    pub to_block: Option<BlockNumber>,
}

impl LogFilter {
    /// A filter matching every log.
    pub fn all() -> Self {
        LogFilter::default()
    }

    /// Restrict to a topic0 value (builder style).
    pub fn with_topic0(mut self, topic0: B256) -> Self {
        self.topic0 = Some(topic0);
        self
    }

    /// Restrict to an emitting contract (builder style).
    pub fn with_address(mut self, address: Address) -> Self {
        self.address = Some(address);
        self
    }

    /// Restrict to a topic count (builder style).
    pub fn with_topic_count(mut self, count: usize) -> Self {
        self.topic_count = Some(count);
        self
    }

    /// Restrict to a block range (builder style, inclusive bounds).
    pub fn with_block_range(mut self, from: BlockNumber, to: BlockNumber) -> Self {
        self.from_block = Some(from);
        self.to_block = Some(to);
        self
    }

    /// Whether a log emitted at `block` matches — the borrow-only form the
    /// visitor scan uses, so matching never requires a materialized
    /// [`LogEntry`].
    #[inline]
    fn matches_log(&self, block: BlockNumber, log: &Log) -> bool {
        // Cheapest discriminator first: the topic count is one integer
        // compare and rejects the bulk of non-matching logs (ERC-20
        // transfers share ERC-721's topic0 but not its topic count).
        if let Some(count) = self.topic_count {
            if log.topics.len() != count {
                return false;
            }
        }
        if let Some(topic0) = self.topic0 {
            if log.topics.first() != Some(&topic0) {
                return false;
            }
        }
        if let Some(address) = self.address {
            if log.address != address {
                return false;
            }
        }
        if let Some(from) = self.from_block {
            if block < from {
                return false;
            }
        }
        if let Some(to) = self.to_block {
            if block > to {
                return false;
            }
        }
        true
    }
}

/// A contiguous, inclusive range of blocks — what [`Chain::shard_blocks`]
/// hands to each parallel decode shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSpan {
    /// First block of the span.
    pub first: BlockNumber,
    /// Last block of the span (inclusive).
    pub last: BlockNumber,
}

/// Aggregate statistics about a chain, used in reports and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainStats {
    /// Number of accounts (EOA + contract).
    pub accounts: usize,
    /// Number of contract accounts.
    pub contracts: usize,
    /// Number of sealed blocks (excluding the open block).
    pub blocks: usize,
    /// Number of executed transactions.
    pub transactions: usize,
    /// Number of emitted logs.
    pub logs: usize,
    /// Total gas fees burned.
    pub gas_burned: Wei,
}

/// The in-memory blockchain.
///
/// Transactions are stored in one `Vec` in execution order — the layout the
/// log scans iterate directly — with a hash → position index on the side for
/// point lookups. Block numbers are non-decreasing along that `Vec`, so any
/// block range maps to a contiguous transaction slice found by binary search.
pub struct Chain {
    accounts: FxHashMap<Address, Account>,
    blocks: Vec<Block>,
    open_block: Block,
    /// All executed transactions, in execution order.
    transactions: Vec<Transaction>,
    /// Hash → position in `transactions`.
    tx_index: FxHashMap<TxHash, u32>,
    /// Positions (into `transactions`) of every transaction an address
    /// participates in — positions, not hashes, so the per-account scan
    /// never re-hashes.
    txs_by_account: FxHashMap<Address, Vec<u32>>,
    log_count: usize,
    gas_burned: Wei,
    hash_salt: u64,
}

impl Chain {
    /// Create a chain whose first (open) block has the given timestamp.
    pub fn new(genesis_timestamp: Timestamp) -> Self {
        Chain {
            accounts: FxHashMap::default(),
            blocks: Vec::new(),
            open_block: Block::new(BlockNumber::GENESIS, genesis_timestamp),
            transactions: Vec::new(),
            tx_index: FxHashMap::default(),
            txs_by_account: FxHashMap::default(),
            log_count: 0,
            gas_burned: Wei::ZERO,
            hash_salt: 0,
        }
    }

    // ------------------------------------------------------------------
    // Account management
    // ------------------------------------------------------------------

    /// Create a fresh EOA derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::AccountExists`] if the derived address collides
    /// with an existing account.
    pub fn create_eoa(&mut self, seed: &str) -> Result<Address, ChainError> {
        let address = Address::derived(seed);
        self.register_eoa(address)?;
        Ok(address)
    }

    /// Register an EOA at a specific address.
    pub fn register_eoa(&mut self, address: Address) -> Result<Address, ChainError> {
        if self.accounts.contains_key(&address) {
            return Err(ChainError::AccountExists(address));
        }
        self.accounts.insert(address, Account::new_eoa(address));
        Ok(address)
    }

    /// Deploy a contract account derived from `seed` holding `code`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::AccountExists`] on address collision.
    pub fn deploy_contract(&mut self, seed: &str, code: Vec<u8>) -> Result<Address, ChainError> {
        let address = Address::derived(&format!("contract:{seed}"));
        if self.accounts.contains_key(&address) {
            return Err(ChainError::AccountExists(address));
        }
        self.accounts.insert(address, Account::new_contract(address, code));
        Ok(address)
    }

    /// Credit `amount` to an account outside of any transaction (genesis
    /// allocation / faucet). Creates the account as an EOA if needed.
    pub fn fund(&mut self, address: Address, amount: Wei) {
        let account = self.accounts.entry(address).or_insert_with(|| Account::new_eoa(address));
        account.balance += amount;
    }

    /// Look up an account.
    pub fn account(&self, address: Address) -> Option<&Account> {
        self.accounts.get(&address)
    }

    /// Whether an account exists.
    pub fn has_account(&self, address: Address) -> bool {
        self.accounts.contains_key(&address)
    }

    /// Current ETH balance of an account (zero if unknown).
    pub fn balance(&self, address: Address) -> Wei {
        self.accounts.get(&address).map(|a| a.balance).unwrap_or(Wei::ZERO)
    }

    /// The deployed bytecode at an address, if any. Mirrors `eth_getCode`.
    pub fn code_at(&self, address: Address) -> Option<&[u8]> {
        self.accounts.get(&address).and_then(|a| a.code())
    }

    /// Whether the address holds bytecode (the refinement step's contract test).
    pub fn is_contract(&self, address: Address) -> bool {
        self.code_at(address).is_some()
    }

    /// Iterate over all accounts.
    pub fn accounts(&self) -> impl Iterator<Item = &Account> {
        self.accounts.values()
    }

    // ------------------------------------------------------------------
    // Block production
    // ------------------------------------------------------------------

    /// The timestamp of the currently open block.
    pub fn current_timestamp(&self) -> Timestamp {
        self.open_block.timestamp
    }

    /// The number of the currently open block.
    pub fn current_block_number(&self) -> BlockNumber {
        self.open_block.number
    }

    /// Seal the open block and start a new one at `timestamp`.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::NonMonotonicTimestamp`] if `timestamp` is earlier
    /// than the open block's timestamp.
    pub fn seal_block(&mut self, timestamp: Timestamp) -> Result<BlockNumber, ChainError> {
        if timestamp < self.open_block.timestamp {
            return Err(ChainError::NonMonotonicTimestamp {
                current: self.open_block.timestamp,
                requested: timestamp,
            });
        }
        let next_number = self.open_block.number.next();
        let sealed = std::mem::replace(&mut self.open_block, Block::new(next_number, timestamp));
        let sealed_number = sealed.number;
        self.blocks.push(sealed);
        Ok(sealed_number)
    }

    /// Seal blocks until the open block's timestamp is at least `timestamp`.
    /// Convenience for workload generators that think in wall-clock time.
    pub fn advance_to(&mut self, timestamp: Timestamp) -> Result<(), ChainError> {
        if timestamp < self.open_block.timestamp {
            return Err(ChainError::NonMonotonicTimestamp {
                current: self.open_block.timestamp,
                requested: timestamp,
            });
        }
        if timestamp > self.open_block.timestamp {
            self.seal_block(timestamp)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transaction execution
    // ------------------------------------------------------------------

    /// Execute a transaction request in the currently open block.
    ///
    /// The sender pays `value + gas fee`; internal transfers are applied in
    /// order. Recipient accounts that do not exist yet are created as EOAs
    /// (as on the real chain, where sending ETH to a fresh address
    /// instantiates it).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnknownAccount`] if the sender does not exist and
    /// [`ChainError::InsufficientBalance`] if any debit exceeds the payer's
    /// balance. On error the chain state is unchanged.
    pub fn submit(&mut self, request: TxRequest) -> Result<TxHash, ChainError> {
        // Validate without mutating: simulate the balance changes first.
        let sender =
            self.accounts.get(&request.from).ok_or(ChainError::UnknownAccount(request.from))?;
        let fee = request.fee();
        let mut deltas: FxHashMap<Address, i128> = FxHashMap::default();
        *deltas.entry(request.from).or_insert(0) -= (request.value.raw() + fee.raw()) as i128;
        if let Some(to) = request.to {
            *deltas.entry(to).or_insert(0) += request.value.raw() as i128;
        }
        // Check the sender first for a precise error.
        let sender_needed = request.value + fee;
        if sender.balance < sender_needed {
            return Err(ChainError::InsufficientBalance {
                account: request.from,
                needed: sender_needed,
                available: sender.balance,
            });
        }
        // Apply internal transfers sequentially on top of the projection.
        for transfer in &request.internal_transfers {
            if !self.accounts.contains_key(&transfer.from) {
                return Err(ChainError::UnknownAccount(transfer.from));
            }
            let projected = self.balance(transfer.from).raw() as i128
                + deltas.get(&transfer.from).copied().unwrap_or(0);
            if projected < transfer.value.raw() as i128 {
                return Err(ChainError::InsufficientBalance {
                    account: transfer.from,
                    needed: transfer.value,
                    available: Wei(projected.max(0) as u128),
                });
            }
            *deltas.entry(transfer.from).or_insert(0) -= transfer.value.raw() as i128;
            *deltas.entry(transfer.to).or_insert(0) += transfer.value.raw() as i128;
        }

        // Commit: apply deltas, bump nonce, record the transaction.
        for (address, delta) in &deltas {
            let account =
                self.accounts.entry(*address).or_insert_with(|| Account::new_eoa(*address));
            let new_balance = account.balance.raw() as i128 + delta;
            debug_assert!(new_balance >= 0, "balance projection must be non-negative");
            account.balance = Wei(new_balance.max(0) as u128);
        }
        self.gas_burned += fee;
        let nonce = {
            let sender = self.accounts.get_mut(&request.from).expect("sender exists");
            let nonce = sender.nonce;
            sender.nonce += 1;
            nonce
        };

        self.hash_salt += 1;
        let mut hash_input = Vec::with_capacity(64);
        hash_input.extend_from_slice(request.from.as_bytes());
        hash_input.extend_from_slice(&nonce.to_be_bytes());
        hash_input.extend_from_slice(&self.hash_salt.to_be_bytes());
        let hash = TxHash::hash_of(&hash_input);

        let tx = Transaction {
            hash,
            block: self.open_block.number,
            timestamp: self.open_block.timestamp,
            from: request.from,
            to: request.to,
            value: request.value,
            gas_used: request.gas_used,
            gas_price: request.gas_price,
            input: request.input,
            logs: request.logs,
            internal_transfers: request.internal_transfers,
        };
        self.log_count += tx.logs.len();
        let position = u32::try_from(self.transactions.len()).expect("tx space fits u32");
        self.index_transaction(&tx, position);
        self.open_block.transactions.push(hash);
        self.tx_index.insert(hash, position);
        self.transactions.push(tx);
        Ok(hash)
    }

    fn index_transaction(&mut self, tx: &Transaction, position: u32) {
        let mut participants = vec![tx.from];
        if let Some(to) = tx.to {
            participants.push(to);
        }
        for transfer in &tx.internal_transfers {
            participants.push(transfer.from);
            participants.push(transfer.to);
        }
        for log in &tx.logs {
            if let Some(t) = log.decode_erc721_transfer() {
                participants.push(t.from);
                participants.push(t.to);
            } else if let Some(t) = log.decode_erc20_transfer() {
                participants.push(t.from);
                participants.push(t.to);
            }
        }
        participants.sort();
        participants.dedup();
        for address in participants {
            self.txs_by_account.entry(address).or_default().push(position);
        }
    }

    // ------------------------------------------------------------------
    // Queries (the node / Web3 substitute)
    // ------------------------------------------------------------------

    /// Fetch a transaction by hash.
    pub fn transaction(&self, hash: TxHash) -> Option<&Transaction> {
        self.tx_index.get(&hash).map(|&position| &self.transactions[position as usize])
    }

    /// All transactions in execution order.
    pub fn transactions(&self) -> impl Iterator<Item = &Transaction> {
        self.transactions.iter()
    }

    /// All transactions in which `address` participates (sender, recipient,
    /// internal-transfer party, or ERC-20/ERC-721 transfer party), in
    /// execution order.
    pub fn transactions_of(&self, address: Address) -> Vec<&Transaction> {
        self.txs_by_account
            .get(&address)
            .map(|positions| {
                positions.iter().map(|&position| &self.transactions[position as usize]).collect()
            })
            .unwrap_or_default()
    }

    /// A sealed block by number.
    pub fn block(&self, number: BlockNumber) -> Option<&Block> {
        self.blocks.get(number.0 as usize)
    }

    /// All sealed blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Scan logs matching `filter`, in execution order. Mirrors `eth_getLogs`.
    pub fn logs(&self, filter: &LogFilter) -> Vec<LogEntry> {
        let mut out = Vec::new();
        for tx in &self.transactions {
            collect_tx_logs(tx, filter, &mut out);
        }
        out
    }

    /// The contiguous slice of `transactions` whose blocks fall in
    /// `[from, to]`. Block numbers are non-decreasing in execution order, so
    /// the range is found by binary search — O(log txs), independent of the
    /// range size.
    fn txs_in_blocks(&self, from: BlockNumber, to: BlockNumber) -> &[Transaction] {
        if from > to {
            return &[];
        }
        let start = self.transactions.partition_point(|tx| tx.block < from);
        let end = self.transactions.partition_point(|tx| tx.block <= to);
        &self.transactions[start..end]
    }

    /// Number of transactions executed in blocks `[from, to]` — the size
    /// hint a decode shard pre-allocates from.
    pub fn transaction_count_in_blocks(&self, from: BlockNumber, to: BlockNumber) -> usize {
        self.txs_in_blocks(from, to).len()
    }

    /// Scan logs of the blocks in `[from, to]` (inclusive; the open block
    /// included when it falls in range), in execution order.
    ///
    /// Equivalent to [`Chain::logs`] with a block-range filter, but touches
    /// only the requested blocks instead of the whole transaction history —
    /// the access path a block cursor tailing the chain epoch by epoch needs
    /// to keep per-epoch cost proportional to the epoch, not the chain.
    pub fn logs_in_blocks(
        &self,
        from: BlockNumber,
        to: BlockNumber,
        filter: &LogFilter,
    ) -> Vec<LogEntry> {
        let mut out = Vec::new();
        for tx in self.txs_in_blocks(from, to) {
            collect_tx_logs(tx, filter, &mut out);
        }
        out
    }

    /// Visit every log of the blocks in `[from, to]` that matches `filter`,
    /// in execution order, without materializing anything: the visitor
    /// borrows the owning transaction (so per-transaction context — value,
    /// payment logs, recipient — is in hand with no hash lookup), the log's
    /// index within it, and the log itself.
    ///
    /// This is the non-allocating sibling of [`Chain::logs_in_blocks`] the
    /// ingest decode shards run on: a shard scans its blocks borrowing every
    /// log instead of cloning a `Vec<LogEntry>` of them.
    pub fn for_each_log_in_blocks<F>(
        &self,
        from: BlockNumber,
        to: BlockNumber,
        filter: &LogFilter,
        mut visit: F,
    ) where
        F: FnMut(&Transaction, usize, &Log),
    {
        for tx in self.txs_in_blocks(from, to) {
            for (log_index, log) in tx.logs.iter().enumerate() {
                if filter.matches_log(tx.block, log) {
                    visit(tx, log_index, log);
                }
            }
        }
    }

    /// Split the blocks of `[from, to]` into at most `parts` contiguous,
    /// non-overlapping spans that together cover the range exactly, balanced
    /// by transaction count (block boundaries are respected, so a busy block
    /// is never split). Returns a single span when the range holds too few
    /// transactions to split further.
    ///
    /// This is the shard planner for parallel ingest: each span is scanned
    /// independently via [`Chain::for_each_log_in_blocks`], and concatenating
    /// the spans' results in order reproduces the serial scan exactly.
    pub fn shard_blocks(&self, from: BlockNumber, to: BlockNumber, parts: usize) -> Vec<BlockSpan> {
        if from > to {
            return Vec::new();
        }
        let txs = self.txs_in_blocks(from, to);
        let parts = parts.max(1);
        if parts == 1 || txs.len() < 2 {
            return vec![BlockSpan { first: from, last: to }];
        }
        let mut spans = Vec::with_capacity(parts);
        let mut span_first = from;
        let mut consumed = 0usize;
        for part in 1..=parts {
            // Ideal cut: an even split of the transaction range…
            let target = (txs.len() * part).div_ceil(parts);
            if target <= consumed {
                continue;
            }
            // …snapped forward to the end of the block holding the cut, so
            // spans stay block-aligned.
            let boundary = txs[target - 1].block;
            let mut end = target;
            while end < txs.len() && txs[end].block == boundary {
                end += 1;
            }
            // Trailing transaction-free blocks belong to the final span.
            let span_last = if end == txs.len() { to } else { boundary };
            spans.push(BlockSpan { first: span_first, last: span_last });
            span_first = BlockNumber(span_last.0 + 1);
            consumed = end;
            if end == txs.len() {
                break;
            }
        }
        spans
    }

    /// Aggregate statistics for reporting.
    pub fn stats(&self) -> ChainStats {
        ChainStats {
            accounts: self.accounts.len(),
            contracts: self
                .accounts
                .values()
                .filter(|a| matches!(a.kind, AccountKind::Contract { .. }))
                .count(),
            blocks: self.blocks.len(),
            transactions: self.transactions.len(),
            logs: self.log_count,
            gas_burned: self.gas_burned,
        }
    }

    /// Sum of all account balances; with the gas burned, conserved against
    /// total funding (used by tests and debug assertions).
    pub fn total_balance(&self) -> Wei {
        self.accounts.values().map(|a| a.balance).sum()
    }
}

/// Materialize the matching logs of one transaction into `out` — the
/// allocating path behind [`Chain::logs`] / [`Chain::logs_in_blocks`].
fn collect_tx_logs(tx: &Transaction, filter: &LogFilter, out: &mut Vec<LogEntry>) {
    for (log_index, log) in tx.logs.iter().enumerate() {
        if filter.matches_log(tx.block, log) {
            out.push(LogEntry {
                tx_hash: tx.hash,
                block: tx.block,
                timestamp: tx.timestamp,
                log_index,
                log: log.clone(),
            });
        }
    }
}

impl std::fmt::Debug for Chain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Chain")
            .field("accounts", &stats.accounts)
            .field("blocks", &stats.blocks)
            .field("transactions", &stats.transactions)
            .field("logs", &stats.logs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Log;

    fn setup() -> (Chain, Address, Address) {
        let mut chain = Chain::new(Timestamp::from_secs(1_600_000_000));
        let alice = chain.create_eoa("alice").unwrap();
        let bob = chain.create_eoa("bob").unwrap();
        chain.fund(alice, Wei::from_eth(10.0));
        (chain, alice, bob)
    }

    #[test]
    fn ether_transfer_updates_balances_and_burns_gas() {
        let (mut chain, alice, bob) = setup();
        let request = TxRequest::ether_transfer(alice, bob, Wei::from_eth(1.0), Wei::from_gwei(10));
        let fee = request.fee();
        chain.submit(request).unwrap();
        assert_eq!(chain.balance(bob), Wei::from_eth(1.0));
        assert_eq!(chain.balance(alice), Wei::from_eth(9.0) - fee);
        assert_eq!(chain.stats().gas_burned, fee);
        assert_eq!(
            chain.total_balance() + fee,
            Wei::from_eth(10.0),
            "value is conserved up to burned gas"
        );
    }

    #[test]
    fn insufficient_balance_is_rejected_without_state_change() {
        let (mut chain, alice, bob) = setup();
        let before = chain.balance(alice);
        let result = chain.submit(TxRequest::ether_transfer(
            alice,
            bob,
            Wei::from_eth(100.0),
            Wei::from_gwei(10),
        ));
        assert!(matches!(result, Err(ChainError::InsufficientBalance { .. })));
        assert_eq!(chain.balance(alice), before);
        assert_eq!(chain.balance(bob), Wei::ZERO);
        assert_eq!(chain.stats().transactions, 0);
    }

    #[test]
    fn unknown_sender_is_rejected() {
        let (mut chain, _, bob) = setup();
        let ghost = Address::derived("ghost");
        let result = chain.submit(TxRequest::ether_transfer(
            ghost,
            bob,
            Wei::from_eth(1.0),
            Wei::from_gwei(1),
        ));
        assert_eq!(result, Err(ChainError::UnknownAccount(ghost)));
    }

    #[test]
    fn internal_transfers_are_applied_and_validated() {
        let (mut chain, alice, bob) = setup();
        let marketplace = chain.deploy_contract("marketplace", vec![0x01]).unwrap();
        let treasury = chain.create_eoa("treasury").unwrap();
        // Alice sends 1 ETH to the marketplace, which forwards 0.975 to Bob
        // and 0.025 to the treasury.
        let request = TxRequest {
            from: alice,
            to: Some(marketplace),
            value: Wei::from_eth(1.0),
            gas_used: 150_000,
            gas_price: Wei::from_gwei(20),
            input: vec![],
            logs: vec![],
            internal_transfers: vec![
                crate::transaction::InternalTransfer {
                    from: marketplace,
                    to: bob,
                    value: Wei::from_eth(0.975),
                },
                crate::transaction::InternalTransfer {
                    from: marketplace,
                    to: treasury,
                    value: Wei::from_eth(0.025),
                },
            ],
        };
        chain.submit(request).unwrap();
        assert_eq!(chain.balance(bob), Wei::from_eth(0.975));
        assert_eq!(chain.balance(treasury), Wei::from_eth(0.025));
        assert_eq!(chain.balance(marketplace), Wei::ZERO);
    }

    #[test]
    fn overdrawn_internal_transfer_is_rejected_atomically() {
        let (mut chain, alice, bob) = setup();
        let marketplace = chain.deploy_contract("marketplace", vec![0x01]).unwrap();
        let request = TxRequest {
            from: alice,
            to: Some(marketplace),
            value: Wei::from_eth(1.0),
            gas_used: 150_000,
            gas_price: Wei::from_gwei(20),
            input: vec![],
            logs: vec![],
            // Forwards more than it received.
            internal_transfers: vec![crate::transaction::InternalTransfer {
                from: marketplace,
                to: bob,
                value: Wei::from_eth(2.0),
            }],
        };
        let before = chain.balance(alice);
        assert!(matches!(chain.submit(request), Err(ChainError::InsufficientBalance { .. })));
        assert_eq!(chain.balance(alice), before);
        assert_eq!(chain.stats().transactions, 0);
    }

    #[test]
    fn blocks_are_monotonic_and_transactions_carry_block_metadata() {
        let (mut chain, alice, bob) = setup();
        let t0 = chain.current_timestamp();
        chain
            .submit(TxRequest::ether_transfer(alice, bob, Wei::from_eth(0.1), Wei::from_gwei(1)))
            .unwrap();
        chain.seal_block(t0.plus_days(1)).unwrap();
        let hash = chain
            .submit(TxRequest::ether_transfer(alice, bob, Wei::from_eth(0.1), Wei::from_gwei(1)))
            .unwrap();
        let tx = chain.transaction(hash).unwrap();
        assert_eq!(tx.block, BlockNumber(1));
        assert_eq!(tx.timestamp, t0.plus_days(1));
        assert!(matches!(
            chain.seal_block(Timestamp::from_secs(0)),
            Err(ChainError::NonMonotonicTimestamp { .. })
        ));
        assert_eq!(chain.blocks().len(), 1);
        assert_eq!(chain.block(BlockNumber(0)).unwrap().len(), 1);
    }

    #[test]
    fn advance_to_is_idempotent_at_same_timestamp() {
        let (mut chain, _, _) = setup();
        let t = chain.current_timestamp();
        chain.advance_to(t).unwrap();
        assert_eq!(chain.blocks().len(), 0, "no block sealed for equal timestamp");
        chain.advance_to(t.plus_secs(60)).unwrap();
        assert_eq!(chain.blocks().len(), 1);
    }

    #[test]
    fn log_filter_by_topic_and_count() {
        let (mut chain, alice, bob) = setup();
        let nft = chain.deploy_contract("nft", vec![0xfe]).unwrap();
        let weth = chain.deploy_contract("weth", vec![0xfe]).unwrap();
        let request = TxRequest {
            from: alice,
            to: Some(nft),
            value: Wei::ZERO,
            gas_used: 90_000,
            gas_price: Wei::from_gwei(10),
            input: vec![],
            logs: vec![
                Log::erc721_transfer(nft, alice, bob, 7),
                Log::erc20_transfer(weth, bob, alice, 1_000),
            ],
            internal_transfers: vec![],
        };
        chain.submit(request).unwrap();

        let all = chain.logs(&LogFilter::all());
        assert_eq!(all.len(), 2);

        let erc721 = chain
            .logs(&LogFilter::all().with_topic0(crate::log::transfer_topic()).with_topic_count(4));
        assert_eq!(erc721.len(), 1);
        assert_eq!(erc721[0].log.address, nft);

        let erc20 = chain
            .logs(&LogFilter::all().with_topic0(crate::log::transfer_topic()).with_topic_count(3));
        assert_eq!(erc20.len(), 1);
        assert_eq!(erc20[0].log.address, weth);

        let by_address = chain.logs(&LogFilter::all().with_address(weth));
        assert_eq!(by_address.len(), 1);
    }

    #[test]
    fn log_filter_by_block_range() {
        let (mut chain, alice, bob) = setup();
        let nft = chain.deploy_contract("nft", vec![0xfe]).unwrap();
        for i in 0..3u64 {
            let request = TxRequest {
                from: alice,
                to: Some(nft),
                value: Wei::ZERO,
                gas_used: 90_000,
                gas_price: Wei::from_gwei(10),
                input: vec![],
                logs: vec![Log::erc721_transfer(nft, alice, bob, i)],
                internal_transfers: vec![],
            };
            chain.submit(request).unwrap();
            chain.seal_block(chain.current_timestamp().plus_secs(13)).unwrap();
        }
        let middle = chain.logs(&LogFilter::all().with_block_range(BlockNumber(1), BlockNumber(1)));
        assert_eq!(middle.len(), 1);
        assert_eq!(middle[0].log.decode_erc721_transfer().unwrap().token_id, 1);
    }

    #[test]
    fn logs_in_blocks_matches_filtered_full_scan() {
        let (mut chain, alice, bob) = setup();
        let nft = chain.deploy_contract("nft", vec![0xfe]).unwrap();
        for i in 0..5u64 {
            let request = TxRequest {
                from: alice,
                to: Some(nft),
                value: Wei::ZERO,
                gas_used: 90_000,
                gas_price: Wei::from_gwei(10),
                input: vec![],
                logs: vec![Log::erc721_transfer(nft, alice, bob, i)],
                internal_transfers: vec![],
            };
            chain.submit(request).unwrap();
            // Leave the last transaction in the open block.
            if i < 4 {
                chain.seal_block(chain.current_timestamp().plus_secs(13)).unwrap();
            }
        }
        let filter = LogFilter::all();
        for (from, to) in [(0, 2), (1, 3), (0, 4), (4, 4), (3, 9)] {
            let fast = chain.logs_in_blocks(BlockNumber(from), BlockNumber(to), &filter);
            let slow =
                chain.logs(&filter.clone().with_block_range(BlockNumber(from), BlockNumber(to)));
            assert_eq!(fast, slow, "range {from}..={to}");
        }
        // The open block (number 4) is covered.
        assert_eq!(chain.logs_in_blocks(BlockNumber(4), BlockNumber(4), &filter).len(), 1);
        // An empty / inverted range yields nothing.
        assert!(chain.logs_in_blocks(BlockNumber(3), BlockNumber(2), &filter).is_empty());
        assert!(chain.logs_in_blocks(BlockNumber(9), BlockNumber(12), &filter).is_empty());
    }

    #[test]
    fn visitor_scan_matches_materializing_scan() {
        let (mut chain, alice, bob) = setup();
        let nft = chain.deploy_contract("nft", vec![0xfe]).unwrap();
        let weth = chain.deploy_contract("weth", vec![0xfe]).unwrap();
        for i in 0..6u64 {
            let request = TxRequest {
                from: alice,
                to: Some(nft),
                value: Wei::ZERO,
                gas_used: 90_000,
                gas_price: Wei::from_gwei(10),
                input: vec![],
                logs: vec![
                    Log::erc721_transfer(nft, alice, bob, i),
                    Log::erc20_transfer(weth, bob, alice, 100 + i as u128),
                ],
                internal_transfers: vec![],
            };
            chain.submit(request).unwrap();
            if i % 2 == 0 {
                chain.seal_block(chain.current_timestamp().plus_secs(13)).unwrap();
            }
        }
        let filter = LogFilter::all().with_topic_count(4);
        for (from, to) in [(0, 0), (0, 3), (1, 2), (2, 9)] {
            let materialized = chain.logs_in_blocks(BlockNumber(from), BlockNumber(to), &filter);
            let mut visited = Vec::new();
            chain.for_each_log_in_blocks(
                BlockNumber(from),
                BlockNumber(to),
                &filter,
                |tx, log_index, log| {
                    visited.push(LogEntry {
                        tx_hash: tx.hash,
                        block: tx.block,
                        timestamp: tx.timestamp,
                        log_index,
                        log: log.clone(),
                    });
                },
            );
            assert_eq!(visited, materialized, "range {from}..={to}");
        }
    }

    #[test]
    fn shard_blocks_partition_the_range_and_reproduce_the_serial_scan() {
        let (mut chain, alice, bob) = setup();
        let nft = chain.deploy_contract("nft", vec![0xfe]).unwrap();
        // Uneven blocks: block i holds i+1 transactions; the last two blocks
        // are empty.
        for block in 0..5u64 {
            for tx in 0..=block {
                let request = TxRequest {
                    from: alice,
                    to: Some(nft),
                    value: Wei::ZERO,
                    gas_used: 90_000,
                    gas_price: Wei::from_gwei(10),
                    input: vec![],
                    logs: vec![Log::erc721_transfer(nft, alice, bob, block * 10 + tx)],
                    internal_transfers: vec![],
                };
                chain.submit(request).unwrap();
            }
            chain.seal_block(chain.current_timestamp().plus_secs(13)).unwrap();
        }
        chain.seal_block(chain.current_timestamp().plus_secs(13)).unwrap();
        let tip = chain.current_block_number();
        let filter = LogFilter::all();
        let serial = chain.logs_in_blocks(BlockNumber(0), tip, &filter);
        for parts in [1, 2, 3, 4, 16] {
            let spans = chain.shard_blocks(BlockNumber(0), tip, parts);
            assert!(!spans.is_empty() && spans.len() <= parts);
            // Contiguous cover of [0, tip], in order.
            assert_eq!(spans.first().unwrap().first, BlockNumber(0));
            assert_eq!(spans.last().unwrap().last, tip);
            for window in spans.windows(2) {
                assert_eq!(window[1].first.0, window[0].last.0 + 1, "parts {parts}");
            }
            // Concatenating per-span scans reproduces the serial scan.
            let sharded: Vec<LogEntry> = spans
                .iter()
                .flat_map(|span| chain.logs_in_blocks(span.first, span.last, &filter))
                .collect();
            assert_eq!(sharded, serial, "parts {parts}");
        }
        assert!(chain.shard_blocks(BlockNumber(3), BlockNumber(2), 4).is_empty());
        // A transaction-free range still yields a covering span.
        assert_eq!(
            chain.shard_blocks(BlockNumber(5), tip, 4),
            vec![BlockSpan { first: BlockNumber(5), last: tip }]
        );
    }

    proptest::proptest! {
        #[test]
        fn shard_blocks_exactly_partition_and_balance_the_range(
            tx_counts in proptest::collection::vec(0usize..6, 1..9),
            parts in 1usize..10
        ) {
            let (mut chain, alice, bob) = setup();
            let nft = chain.deploy_contract("nft", vec![0xfe]).unwrap();
            let mut token = 0u64;
            for &count in &tx_counts {
                for _ in 0..count {
                    let request = TxRequest {
                        from: alice,
                        to: Some(nft),
                        value: Wei::ZERO,
                        gas_used: 90_000,
                        gas_price: Wei::from_gwei(10),
                        input: vec![],
                        logs: vec![Log::erc721_transfer(nft, alice, bob, token)],
                        internal_transfers: vec![],
                    };
                    chain.submit(request).unwrap();
                    token += 1;
                }
                chain.seal_block(chain.current_timestamp().plus_secs(13)).unwrap();
            }
            let tip = chain.current_block_number();
            let spans = chain.shard_blocks(BlockNumber(0), tip, parts);

            // Exact partition: ordered, contiguous, no gap or overlap, and
            // the union covers [0, tip] precisely.
            proptest::prop_assert!(!spans.is_empty());
            proptest::prop_assert!(spans.len() <= parts);
            proptest::prop_assert_eq!(spans.first().unwrap().first, BlockNumber(0));
            proptest::prop_assert_eq!(spans.last().unwrap().last, tip);
            for window in spans.windows(2) {
                proptest::prop_assert!(window[0].last < window[1].first);
                proptest::prop_assert_eq!(window[0].last.0 + 1, window[1].first.0);
            }

            // Balance: once a split actually happens, every span's
            // transaction count stays within a factor 2 of the ideal even
            // chunk — where "ideal" accounts for the busiest block, since
            // blocks are never split across spans.
            if spans.len() > 1 {
                let total = chain.transaction_count_in_blocks(BlockNumber(0), tip);
                let busiest = tx_counts.iter().copied().max().unwrap_or(0);
                let ideal = total.div_ceil(parts).max(busiest).max(1);
                for span in &spans {
                    let span_txs = chain.transaction_count_in_blocks(span.first, span.last);
                    proptest::prop_assert!(
                        span_txs <= 2 * ideal,
                        "span {:?} holds {} txs, ideal {} (total {}, parts {})",
                        span, span_txs, ideal, total, parts
                    );
                }
            }
        }
    }

    #[test]
    fn transactions_of_indexes_all_participants() {
        let (mut chain, alice, bob) = setup();
        let nft = chain.deploy_contract("nft", vec![0xfe]).unwrap();
        let carol = chain.create_eoa("carol").unwrap();
        let request = TxRequest {
            from: alice,
            to: Some(nft),
            value: Wei::ZERO,
            gas_used: 90_000,
            gas_price: Wei::from_gwei(10),
            input: vec![],
            logs: vec![Log::erc721_transfer(nft, carol, bob, 7)],
            internal_transfers: vec![],
        };
        let hash = chain.submit(request).unwrap();
        for address in [alice, bob, carol, nft] {
            let txs = chain.transactions_of(address);
            assert_eq!(txs.len(), 1, "{address} should be indexed");
            assert_eq!(txs[0].hash, hash);
        }
        assert!(chain.transactions_of(Address::derived("stranger")).is_empty());
    }

    #[test]
    fn duplicate_account_creation_fails() {
        let (mut chain, _, _) = setup();
        assert!(matches!(chain.create_eoa("alice"), Err(ChainError::AccountExists(_))));
        assert!(matches!(
            chain.deploy_contract("nft", vec![1]).and(chain.deploy_contract("nft", vec![1])),
            Err(ChainError::AccountExists(_))
        ));
    }

    #[test]
    fn stats_reflect_activity() {
        let (mut chain, alice, bob) = setup();
        chain
            .submit(TxRequest::ether_transfer(alice, bob, Wei::from_eth(0.5), Wei::from_gwei(5)))
            .unwrap();
        let stats = chain.stats();
        assert_eq!(stats.transactions, 1);
        assert_eq!(stats.accounts, 2);
        assert_eq!(stats.contracts, 0);
        assert!(stats.gas_burned > Wei::ZERO);
    }
}
