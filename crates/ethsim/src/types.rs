//! Primitive Ethereum value types: addresses, 32-byte words, wei amounts,
//! block numbers, timestamps and function selectors.
//!
//! All types are small `Copy` newtypes with the common trait set
//! (`Debug`, `Display`, `Eq`, `Ord`, `Hash`, `serde`), so they can be used
//! directly as map keys and in serialized reports.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::keccak::keccak256;

/// Number of wei per ether (10^18).
pub const WEI_PER_ETH: u128 = 1_000_000_000_000_000_000;
/// Number of wei per gwei (10^9).
pub const WEI_PER_GWEI: u128 = 1_000_000_000;
/// Number of seconds per day, used to bucket activity by day as the paper does.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// A 20-byte Ethereum account address.
///
/// # Examples
///
/// ```
/// use ethsim::types::Address;
/// let a = Address::derived("wash-trader-1");
/// assert!(!a.is_null());
/// assert!(a.to_string().starts_with("0x"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The Ethereum null address (`0x0000…0000`), used as mint source and burn
    /// destination.
    pub const NULL: Address = Address([0u8; 20]);

    /// Create an address from raw bytes.
    pub fn from_bytes(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// Deterministically derive an address from a seed string by taking the
    /// last 20 bytes of its Keccak-256 digest (mirroring how real addresses
    /// are the last 20 bytes of the Keccak of a public key).
    pub fn derived(seed: &str) -> Self {
        let digest = keccak256(seed.as_bytes());
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(&digest[12..32]);
        Address(bytes)
    }

    /// Derive an address from arbitrary bytes (e.g. deployer ++ nonce).
    pub fn derived_from_bytes(seed: &[u8]) -> Self {
        let digest = keccak256(seed);
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(&digest[12..32]);
        Address(bytes)
    }

    /// Whether this is the null address.
    pub fn is_null(&self) -> bool {
        self.0 == [0u8; 20]
    }

    /// Hex representation with `0x` prefix (42 characters total).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(42);
        s.push_str("0x");
        for byte in self.0 {
            s.push_str(&format!("{byte:02x}"));
        }
        s
    }

    /// The raw bytes of the address.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({})", self.to_hex())
    }
}

/// Error returned when parsing an [`Address`] or [`B256`] from a hex string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseHexError {
    kind: &'static str,
    reason: String,
}

impl fmt::Display for ParseHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} hex string: {}", self.kind, self.reason)
    }
}

impl std::error::Error for ParseHexError {}

fn parse_hex(kind: &'static str, s: &str, expected_len: usize) -> Result<Vec<u8>, ParseHexError> {
    let stripped = s.strip_prefix("0x").unwrap_or(s);
    if stripped.len() != expected_len * 2 {
        return Err(ParseHexError {
            kind,
            reason: format!(
                "expected {} hex characters, found {}",
                expected_len * 2,
                stripped.len()
            ),
        });
    }
    let mut out = Vec::with_capacity(expected_len);
    let bytes = stripped.as_bytes();
    for i in 0..expected_len {
        let hi = (bytes[2 * i] as char).to_digit(16);
        let lo = (bytes[2 * i + 1] as char).to_digit(16);
        match (hi, lo) {
            (Some(h), Some(l)) => out.push(((h << 4) | l) as u8),
            _ => {
                return Err(ParseHexError {
                    kind,
                    reason: format!("non-hex character at position {}", 2 * i),
                })
            }
        }
    }
    Ok(out)
}

impl FromStr for Address {
    type Err = ParseHexError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = parse_hex("address", s, 20)?;
        let mut arr = [0u8; 20];
        arr.copy_from_slice(&bytes);
        Ok(Address(arr))
    }
}

/// A 32-byte word: transaction hashes, log topics, storage keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct B256(pub [u8; 32]);

impl B256 {
    /// The all-zero word.
    pub const ZERO: B256 = B256([0u8; 32]);

    /// Create from raw bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        B256(bytes)
    }

    /// Keccak-256 of arbitrary bytes.
    pub fn hash_of(data: &[u8]) -> Self {
        B256(keccak256(data))
    }

    /// Left-pad a 20-byte address into a 32-byte topic, as the EVM does for
    /// indexed `address` event parameters.
    pub fn from_address(address: Address) -> Self {
        let mut bytes = [0u8; 32];
        bytes[12..32].copy_from_slice(address.as_bytes());
        B256(bytes)
    }

    /// Encode a u128 as a big-endian 32-byte word (indexed `uint256` topics).
    pub fn from_u128(value: u128) -> Self {
        let mut bytes = [0u8; 32];
        bytes[16..32].copy_from_slice(&value.to_be_bytes());
        B256(bytes)
    }

    /// Interpret the low 16 bytes as a big-endian u128. Returns `None` if any
    /// of the high 16 bytes are non-zero (value does not fit).
    pub fn to_u128(&self) -> Option<u128> {
        if self.0[..16].iter().any(|b| *b != 0) {
            return None;
        }
        let mut low = [0u8; 16];
        low.copy_from_slice(&self.0[16..32]);
        Some(u128::from_be_bytes(low))
    }

    /// Extract the trailing 20 bytes as an address (inverse of [`B256::from_address`]).
    pub fn to_address(&self) -> Address {
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(&self.0[12..32]);
        Address(bytes)
    }

    /// Hex representation with `0x` prefix (66 characters total).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(66);
        s.push_str("0x");
        for byte in self.0 {
            s.push_str(&format!("{byte:02x}"));
        }
        s
    }
}

impl fmt::Display for B256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for B256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B256({})", self.to_hex())
    }
}

impl FromStr for B256 {
    type Err = ParseHexError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = parse_hex("b256", s, 32)?;
        let mut arr = [0u8; 32];
        arr.copy_from_slice(&bytes);
        Ok(B256(arr))
    }
}

/// A transaction hash. Newtype over [`B256`] for static distinction from
/// topics and other 32-byte words.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct TxHash(pub B256);

impl TxHash {
    /// Hash arbitrary bytes into a transaction hash.
    pub fn hash_of(data: &[u8]) -> Self {
        TxHash(B256::hash_of(data))
    }

    /// Hex representation with `0x` prefix.
    pub fn to_hex(&self) -> String {
        self.0.to_hex()
    }
}

impl fmt::Display for TxHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.to_hex())
    }
}

impl fmt::Debug for TxHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TxHash({})", self.0.to_hex())
    }
}

/// An amount of wei (10^-18 ETH). Arithmetic is checked in debug builds and
/// saturating via the explicit `saturating_*` helpers.
///
/// # Examples
///
/// ```
/// use ethsim::types::Wei;
/// let one_eth = Wei::from_eth(1.0);
/// assert_eq!(one_eth.to_eth(), 1.0);
/// assert_eq!(one_eth + one_eth, Wei::from_eth(2.0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct Wei(pub u128);

impl Wei {
    /// Zero wei.
    pub const ZERO: Wei = Wei(0);

    /// Construct from a raw wei amount.
    pub fn new(wei: u128) -> Self {
        Wei(wei)
    }

    /// Construct from a (non-negative) amount of ETH.
    ///
    /// # Panics
    ///
    /// Panics if `eth` is negative or not finite.
    pub fn from_eth(eth: f64) -> Self {
        assert!(eth.is_finite() && eth >= 0.0, "ETH amount must be non-negative and finite");
        Wei((eth * WEI_PER_ETH as f64).round() as u128)
    }

    /// Construct from an amount of gwei.
    pub fn from_gwei(gwei: u64) -> Self {
        Wei(gwei as u128 * WEI_PER_GWEI)
    }

    /// The value in ETH as a float (lossy for very large amounts, fine for
    /// reporting).
    pub fn to_eth(&self) -> f64 {
        self.0 as f64 / WEI_PER_ETH as f64
    }

    /// The raw wei amount.
    pub fn raw(&self) -> u128 {
        self.0
    }

    /// Whether the amount is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Wei) -> Wei {
        Wei(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Wei) -> Wei {
        Wei(self.0.saturating_add(rhs.0))
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(self, rhs: Wei) -> Option<Wei> {
        self.0.checked_sub(rhs.0).map(Wei)
    }

    /// Multiply by a basis-point fraction (1 bps = 0.01%), rounding down.
    /// Used for marketplace fee computation.
    pub fn bps(self, basis_points: u32) -> Wei {
        Wei(self.0 / 10_000 * basis_points as u128
            + self.0 % 10_000 * basis_points as u128 / 10_000)
    }
}

impl std::ops::Add for Wei {
    type Output = Wei;
    fn add(self, rhs: Wei) -> Wei {
        Wei(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Wei {
    fn add_assign(&mut self, rhs: Wei) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Wei {
    type Output = Wei;
    fn sub(self, rhs: Wei) -> Wei {
        Wei(self.0 - rhs.0)
    }
}

impl std::ops::SubAssign for Wei {
    fn sub_assign(&mut self, rhs: Wei) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for Wei {
    fn sum<I: Iterator<Item = Wei>>(iter: I) -> Wei {
        iter.fold(Wei::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for Wei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} ETH", self.to_eth())
    }
}

impl fmt::Debug for Wei {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Wei({} = {:.6} ETH)", self.0, self.to_eth())
    }
}

/// A block number.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct BlockNumber(pub u64);

impl BlockNumber {
    /// The genesis block number.
    pub const GENESIS: BlockNumber = BlockNumber(0);

    /// The next block number.
    pub fn next(&self) -> BlockNumber {
        BlockNumber(self.0 + 1)
    }
}

impl fmt::Display for BlockNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A unix timestamp in seconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Construct from unix seconds.
    pub fn from_secs(secs: u64) -> Self {
        Timestamp(secs)
    }

    /// Unix seconds value.
    pub fn secs(&self) -> u64 {
        self.0
    }

    /// The day index (days since the unix epoch); the paper buckets activity
    /// and reward distribution by day.
    pub fn day(&self) -> u64 {
        self.0 / SECONDS_PER_DAY
    }

    /// A timestamp this many seconds later.
    pub fn plus_secs(&self, secs: u64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// A timestamp this many whole days later.
    pub fn plus_days(&self, days: u64) -> Timestamp {
        Timestamp(self.0 + days * SECONDS_PER_DAY)
    }

    /// Seconds elapsed since an earlier timestamp (saturating).
    pub fn seconds_since(&self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Whole days elapsed since an earlier timestamp (saturating).
    pub fn days_since(&self, earlier: Timestamp) -> u64 {
        self.seconds_since(earlier) / SECONDS_PER_DAY
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

/// A 4-byte function selector.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct Selector(pub [u8; 4]);

impl Selector {
    /// Compute the selector of a canonical Solidity signature.
    pub fn of(signature: &str) -> Self {
        Selector(crate::keccak::selector(signature))
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:02x}{:02x}{:02x}{:02x}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_derivation_is_deterministic_and_distinct() {
        let a = Address::derived("alice");
        let b = Address::derived("alice");
        let c = Address::derived("bob");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_null());
    }

    #[test]
    fn null_address_roundtrip() {
        assert!(Address::NULL.is_null());
        assert_eq!(Address::NULL.to_hex(), format!("0x{}", "00".repeat(20)));
    }

    #[test]
    fn address_hex_roundtrip() {
        let a = Address::derived("roundtrip");
        let parsed: Address = a.to_hex().parse().expect("parse");
        assert_eq!(a, parsed);
    }

    #[test]
    fn address_parse_rejects_bad_input() {
        assert!("0x1234".parse::<Address>().is_err());
        assert!("0xzz00000000000000000000000000000000000000".parse::<Address>().is_err());
    }

    #[test]
    fn b256_address_roundtrip() {
        let a = Address::derived("topic");
        let topic = B256::from_address(a);
        assert_eq!(topic.to_address(), a);
    }

    #[test]
    fn b256_u128_roundtrip() {
        let v = 123_456_789_u128;
        assert_eq!(B256::from_u128(v).to_u128(), Some(v));
        // A hash will essentially never fit in the low 16 bytes.
        assert_eq!(B256::hash_of(b"big").to_u128(), None);
    }

    #[test]
    fn wei_eth_conversion() {
        assert_eq!(Wei::from_eth(1.5).raw(), 1_500_000_000_000_000_000);
        assert!((Wei::new(2_500_000_000_000_000_000).to_eth() - 2.5).abs() < 1e-12);
        assert_eq!(Wei::from_gwei(30).raw(), 30_000_000_000);
    }

    #[test]
    #[should_panic]
    fn wei_from_negative_eth_panics() {
        let _ = Wei::from_eth(-1.0);
    }

    #[test]
    fn wei_bps_fee() {
        // 2.5% of 1 ETH is 0.025 ETH.
        let fee = Wei::from_eth(1.0).bps(250);
        assert_eq!(fee, Wei::from_eth(0.025));
        // 2% of 100 ETH is 2 ETH.
        assert_eq!(Wei::from_eth(100.0).bps(200), Wei::from_eth(2.0));
        assert_eq!(Wei::ZERO.bps(250), Wei::ZERO);
    }

    #[test]
    fn wei_arithmetic() {
        let a = Wei::from_eth(3.0);
        let b = Wei::from_eth(1.0);
        assert_eq!(a - b, Wei::from_eth(2.0));
        assert_eq!(a.saturating_sub(Wei::from_eth(5.0)), Wei::ZERO);
        assert_eq!(b.checked_sub(a), None);
        let total: Wei = vec![a, b, b].into_iter().sum();
        assert_eq!(total, Wei::from_eth(5.0));
    }

    #[test]
    fn timestamp_day_math() {
        let t = Timestamp::from_secs(10 * SECONDS_PER_DAY + 5);
        assert_eq!(t.day(), 10);
        assert_eq!(t.plus_days(2).day(), 12);
        assert_eq!(t.plus_days(2).days_since(t), 2);
        assert_eq!(t.days_since(t.plus_days(2)), 0, "saturating");
    }

    #[test]
    fn selector_display() {
        let sel = Selector::of("supportsInterface(bytes4)");
        assert_eq!(sel.to_string(), "0x01ffc9a7");
    }
}
