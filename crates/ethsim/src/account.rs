//! Account state: externally owned accounts (EOAs) and contract accounts.
//!
//! The paper's refinement step (§IV-B) distinguishes contract accounts from
//! EOAs by the presence of bytecode; this module models exactly that.

use serde::{Deserialize, Serialize};

use crate::types::{Address, Wei};

/// The kind of an Ethereum account.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccountKind {
    /// An externally owned account, controlled by a private key.
    Eoa,
    /// A contract account, identified by the presence of bytecode.
    Contract {
        /// The (simulated) deployed bytecode. Non-empty by construction.
        code: Vec<u8>,
    },
}

/// The state of a single account on the chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Account {
    /// The account address.
    pub address: Address,
    /// EOA or contract.
    pub kind: AccountKind,
    /// Current ETH balance.
    pub balance: Wei,
    /// Number of transactions sent from this account.
    pub nonce: u64,
}

impl Account {
    /// Create a fresh externally owned account with zero balance.
    pub fn new_eoa(address: Address) -> Self {
        Account { address, kind: AccountKind::Eoa, balance: Wei::ZERO, nonce: 0 }
    }

    /// Create a fresh contract account holding `code`.
    ///
    /// # Panics
    ///
    /// Panics if `code` is empty: a contract account is *defined* by having
    /// bytecode, and an empty-code "contract" would be indistinguishable from
    /// an EOA in the refinement step.
    pub fn new_contract(address: Address, code: Vec<u8>) -> Self {
        assert!(!code.is_empty(), "contract account must have non-empty bytecode");
        Account { address, kind: AccountKind::Contract { code }, balance: Wei::ZERO, nonce: 0 }
    }

    /// Whether the account holds bytecode (i.e. is a contract account).
    pub fn has_code(&self) -> bool {
        matches!(self.kind, AccountKind::Contract { .. })
    }

    /// The bytecode, if this is a contract account.
    pub fn code(&self) -> Option<&[u8]> {
        match &self.kind {
            AccountKind::Contract { code } => Some(code),
            AccountKind::Eoa => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eoa_has_no_code() {
        let account = Account::new_eoa(Address::derived("eoa"));
        assert!(!account.has_code());
        assert_eq!(account.code(), None);
        assert_eq!(account.balance, Wei::ZERO);
        assert_eq!(account.nonce, 0);
    }

    #[test]
    fn contract_has_code() {
        let account = Account::new_contract(Address::derived("contract"), vec![0x60, 0x80]);
        assert!(account.has_code());
        assert_eq!(account.code(), Some(&[0x60u8, 0x80u8][..]));
    }

    #[test]
    #[should_panic]
    fn contract_with_empty_code_is_rejected() {
        let _ = Account::new_contract(Address::derived("bad"), vec![]);
    }
}
