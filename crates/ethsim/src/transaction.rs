//! Transactions and transaction requests.
//!
//! A [`TxRequest`] is what higher-level crates (token contracts, marketplace
//! engine, workload generator) build and submit to the chain; the chain turns
//! it into an immutable [`Transaction`] with a hash, block number and
//! timestamp after performing ETH accounting.
//!
//! Besides the top-level `value` transfer, a transaction can carry *internal
//! transfers* — ETH moved by contract code during execution (e.g. a
//! marketplace contract forwarding the sale price to the seller and the fee
//! to its treasury). Real Ethereum exposes these through call traces; the
//! paper's payment analysis depends on them, so the simulator models them
//! explicitly.

use serde::{Deserialize, Serialize};

use crate::log::Log;
use crate::types::{Address, BlockNumber, Selector, Timestamp, TxHash, Wei};

/// An ETH transfer performed by contract code during transaction execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InternalTransfer {
    /// Account debited.
    pub from: Address,
    /// Account credited.
    pub to: Address,
    /// Amount moved.
    pub value: Wei,
}

/// A request to execute a transaction, before it is included in a block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxRequest {
    /// Sender account; pays `value` plus the gas fee.
    pub from: Address,
    /// Recipient account; `None` models contract creation.
    pub to: Option<Address>,
    /// ETH transferred from sender to recipient.
    pub value: Wei,
    /// Gas units consumed by the transaction.
    pub gas_used: u64,
    /// Price per gas unit.
    pub gas_price: Wei,
    /// Call data; the first four bytes are the function selector for
    /// contract calls.
    pub input: Vec<u8>,
    /// Event logs emitted during execution (produced by the simulated
    /// contract logic in higher-level crates).
    pub logs: Vec<Log>,
    /// ETH moved by contract code during execution, applied in order after
    /// the top-level `value` transfer.
    pub internal_transfers: Vec<InternalTransfer>,
}

impl TxRequest {
    /// A plain ETH transfer with a default gas cost of 21,000 units.
    pub fn ether_transfer(from: Address, to: Address, value: Wei, gas_price: Wei) -> Self {
        TxRequest {
            from,
            to: Some(to),
            value,
            gas_used: 21_000,
            gas_price,
            input: Vec::new(),
            logs: Vec::new(),
            internal_transfers: Vec::new(),
        }
    }

    /// A contract call carrying a selector, optional ETH value and logs.
    pub fn contract_call(
        from: Address,
        contract: Address,
        selector: Selector,
        value: Wei,
        gas_used: u64,
        gas_price: Wei,
    ) -> Self {
        TxRequest {
            from,
            to: Some(contract),
            value,
            gas_used,
            gas_price,
            input: selector.0.to_vec(),
            logs: Vec::new(),
            internal_transfers: Vec::new(),
        }
    }

    /// Attach a log to the request (builder style).
    pub fn with_log(mut self, log: Log) -> Self {
        self.logs.push(log);
        self
    }

    /// Attach several logs to the request (builder style).
    pub fn with_logs<I: IntoIterator<Item = Log>>(mut self, logs: I) -> Self {
        self.logs.extend(logs);
        self
    }

    /// Attach an internal ETH transfer (builder style).
    pub fn with_internal_transfer(mut self, from: Address, to: Address, value: Wei) -> Self {
        self.internal_transfers.push(InternalTransfer { from, to, value });
        self
    }

    /// The total gas fee this request will pay.
    pub fn fee(&self) -> Wei {
        Wei(self.gas_used as u128 * self.gas_price.raw())
    }
}

/// A transaction included in a block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// The transaction hash.
    pub hash: TxHash,
    /// The block this transaction was included in.
    pub block: BlockNumber,
    /// The timestamp of that block.
    pub timestamp: Timestamp,
    /// Sender account.
    pub from: Address,
    /// Recipient account (`None` for contract creation).
    pub to: Option<Address>,
    /// ETH transferred.
    pub value: Wei,
    /// Gas consumed.
    pub gas_used: u64,
    /// Gas price paid.
    pub gas_price: Wei,
    /// Call data.
    pub input: Vec<u8>,
    /// Emitted event logs.
    pub logs: Vec<Log>,
    /// ETH moved by contract code during execution.
    pub internal_transfers: Vec<InternalTransfer>,
}

impl Transaction {
    /// The total gas fee paid by the sender.
    pub fn fee(&self) -> Wei {
        Wei(self.gas_used as u128 * self.gas_price.raw())
    }

    /// The 4-byte function selector, if the call data carries one.
    pub fn selector(&self) -> Option<Selector> {
        if self.input.len() >= 4 {
            Some(Selector([self.input[0], self.input[1], self.input[2], self.input[3]]))
        } else {
            None
        }
    }

    /// Whether this transaction moves ETH or any ERC-20 tokens (i.e. carries
    /// economic value). Used by the zero-volume refinement step.
    pub fn moves_value(&self) -> bool {
        !self.value.is_zero()
            || self.internal_transfers.iter().any(|t| !t.value.is_zero())
            || self
                .logs
                .iter()
                .any(|log| log.decode_erc20_transfer().map(|t| t.amount > 0).unwrap_or(false))
    }

    /// Total ETH credited to `account` by this transaction (top-level value
    /// plus internal transfers), ignoring ERC-20 flows.
    pub fn ether_received_by(&self, account: Address) -> Wei {
        let mut total = Wei::ZERO;
        if self.to == Some(account) {
            total += self.value;
        }
        for transfer in &self.internal_transfers {
            if transfer.to == account {
                total += transfer.value;
            }
        }
        total
    }

    /// Total ETH debited from `account` by this transaction (top-level value
    /// plus internal transfers), excluding the gas fee.
    pub fn ether_sent_by(&self, account: Address) -> Wei {
        let mut total = Wei::ZERO;
        if self.from == account {
            total += self.value;
        }
        for transfer in &self.internal_transfers {
            if transfer.from == account {
                total += transfer.value;
            }
        }
        total
    }

    /// Whether the transaction transfers ETH or ERC-20 tokens to `account`
    /// and does not move any NFT: the paper's definition of a *funding
    /// transaction* for that account.
    pub fn is_funding_of(&self, account: Address) -> bool {
        let moves_nft = self.logs.iter().any(|log| log.is_erc721_transfer());
        if moves_nft {
            return false;
        }
        let ether_in = !self.ether_received_by(account).is_zero();
        let erc20_in = self.logs.iter().any(|log| {
            log.decode_erc20_transfer().map(|t| t.to == account && t.amount > 0).unwrap_or(false)
        });
        ether_in || erc20_in
    }

    /// Whether the transaction transfers ETH or ERC-20 tokens *from*
    /// `account` to `recipient` without moving any NFT: the shape of an
    /// *exit transaction* in the common-exit heuristic.
    pub fn is_exit_from_to(&self, account: Address, recipient: Address) -> bool {
        let moves_nft = self.logs.iter().any(|log| log.is_erc721_transfer());
        if moves_nft {
            return false;
        }
        let ether_out =
            (self.from == account && self.to == Some(recipient) && !self.value.is_zero())
                || self
                    .internal_transfers
                    .iter()
                    .any(|t| t.from == account && t.to == recipient && !t.value.is_zero());
        let erc20_out = self.logs.iter().any(|log| {
            log.decode_erc20_transfer()
                .map(|t| t.from == account && t.to == recipient && t.amount > 0)
                .unwrap_or(false)
        });
        ether_out || erc20_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Log;

    fn mk_tx(request: TxRequest) -> Transaction {
        Transaction {
            hash: TxHash::hash_of(b"test"),
            block: BlockNumber(1),
            timestamp: Timestamp::from_secs(1000),
            from: request.from,
            to: request.to,
            value: request.value,
            gas_used: request.gas_used,
            gas_price: request.gas_price,
            input: request.input,
            logs: request.logs,
            internal_transfers: request.internal_transfers,
        }
    }

    #[test]
    fn fee_is_gas_times_price() {
        let request = TxRequest::ether_transfer(
            Address::derived("a"),
            Address::derived("b"),
            Wei::from_eth(1.0),
            Wei::from_gwei(50),
        );
        assert_eq!(request.fee(), Wei(21_000 * 50_000_000_000));
        assert_eq!(mk_tx(request).fee(), Wei(21_000 * 50_000_000_000));
    }

    #[test]
    fn selector_extraction() {
        let request = TxRequest::contract_call(
            Address::derived("a"),
            Address::derived("contract"),
            Selector::of("claim()"),
            Wei::ZERO,
            60_000,
            Wei::from_gwei(40),
        );
        let tx = mk_tx(request);
        assert_eq!(tx.selector(), Some(Selector::of("claim()")));
        let plain = mk_tx(TxRequest::ether_transfer(
            Address::derived("a"),
            Address::derived("b"),
            Wei::ZERO,
            Wei::from_gwei(1),
        ));
        assert_eq!(plain.selector(), None);
    }

    #[test]
    fn funding_detection_ether() {
        let funder = Address::derived("funder");
        let trader = Address::derived("trader");
        let tx = mk_tx(TxRequest::ether_transfer(
            funder,
            trader,
            Wei::from_eth(2.0),
            Wei::from_gwei(10),
        ));
        assert!(tx.is_funding_of(trader));
        assert!(!tx.is_funding_of(funder));
    }

    #[test]
    fn funding_detection_erc20() {
        let funder = Address::derived("funder");
        let trader = Address::derived("trader");
        let weth = Address::derived("weth");
        let request = TxRequest {
            from: funder,
            to: Some(weth),
            value: Wei::ZERO,
            gas_used: 50_000,
            gas_price: Wei::from_gwei(20),
            input: vec![],
            logs: vec![Log::erc20_transfer(weth, funder, trader, 10)],
            internal_transfers: vec![],
        };
        assert!(mk_tx(request).is_funding_of(trader));
    }

    #[test]
    fn a_sale_is_not_a_funding_transaction() {
        // A transaction that moves an NFT is excluded from the funding
        // definition even though ETH also flows.
        let buyer = Address::derived("buyer");
        let seller = Address::derived("seller");
        let nft = Address::derived("nft");
        let marketplace = Address::derived("marketplace");
        let request = TxRequest {
            from: buyer,
            to: Some(marketplace),
            value: Wei::from_eth(1.0),
            gas_used: 100_000,
            gas_price: Wei::from_gwei(30),
            input: vec![],
            logs: vec![Log::erc721_transfer(nft, seller, buyer, 1)],
            internal_transfers: vec![InternalTransfer {
                from: marketplace,
                to: seller,
                value: Wei::from_eth(0.975),
            }],
        };
        let tx = mk_tx(request);
        assert!(!tx.is_funding_of(seller));
        assert!(tx.moves_value());
        assert_eq!(tx.ether_received_by(seller), Wei::from_eth(0.975));
        assert_eq!(tx.ether_sent_by(buyer), Wei::from_eth(1.0));
    }

    #[test]
    fn exit_detection_direct_and_internal() {
        let trader = Address::derived("trader");
        let sink = Address::derived("sink");
        let tx =
            mk_tx(TxRequest::ether_transfer(trader, sink, Wei::from_eth(0.5), Wei::from_gwei(10)));
        assert!(tx.is_exit_from_to(trader, sink));
        assert!(!tx.is_exit_from_to(sink, trader));

        // Exit routed through a contract (internal transfer).
        let router = Address::derived("router");
        let routed = mk_tx(
            TxRequest::contract_call(
                trader,
                router,
                Selector::of("sweep()"),
                Wei::from_eth(0.5),
                80_000,
                Wei::from_gwei(10),
            )
            .with_internal_transfer(trader, sink, Wei::from_eth(0.5)),
        );
        assert!(routed.is_exit_from_to(trader, sink));
    }

    #[test]
    fn zero_value_transfer_does_not_move_value() {
        let tx = mk_tx(TxRequest::ether_transfer(
            Address::derived("a"),
            Address::derived("b"),
            Wei::ZERO,
            Wei::from_gwei(10),
        ));
        assert!(!tx.moves_value());
        assert!(!tx.is_funding_of(Address::derived("b")));
    }

    #[test]
    fn zero_amount_erc20_log_does_not_count_as_value() {
        let weth = Address::derived("weth");
        let request = TxRequest {
            from: Address::derived("a"),
            to: Some(weth),
            value: Wei::ZERO,
            gas_used: 40_000,
            gas_price: Wei::from_gwei(10),
            input: vec![],
            logs: vec![Log::erc20_transfer(weth, Address::derived("a"), Address::derived("b"), 0)],
            internal_transfers: vec![],
        };
        assert!(!mk_tx(request).moves_value());
    }
}
