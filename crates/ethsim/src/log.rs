//! Event logs emitted by (simulated) smart contracts.
//!
//! The paper identifies ERC-721 transfers purely from log structure: the
//! `Transfer(address,address,uint256)` topic (`0xddf252ad…`) with **four**
//! topics (the token id is indexed), versus ERC-20 which uses the same topic
//! hash but only **three** topics (the value lives in the data field), versus
//! ERC-1155 which uses a different topic hash entirely
//! (`TransferSingle(address,address,address,uint256,uint256)`).
//! This module provides constructors and decoders for all three shapes.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::keccak::event_topic;
use crate::types::{Address, B256};

/// The shared `Transfer(address,address,uint256)` topic used by both ERC-20
/// and ERC-721.
pub fn transfer_topic() -> B256 {
    static TOPIC: OnceLock<B256> = OnceLock::new();
    *TOPIC.get_or_init(|| B256(event_topic("Transfer(address,address,uint256)")))
}

/// The ERC-1155 `TransferSingle` topic.
pub fn transfer_single_topic() -> B256 {
    static TOPIC: OnceLock<B256> = OnceLock::new();
    *TOPIC.get_or_init(|| {
        B256(event_topic("TransferSingle(address,address,address,uint256,uint256)"))
    })
}

/// An event log emitted by a contract during a transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log {
    /// The contract that emitted the log.
    pub address: Address,
    /// Indexed topics; `topics[0]` is the event signature hash.
    pub topics: Vec<B256>,
    /// ABI-encoded non-indexed data.
    pub data: Vec<u8>,
}

/// A decoded ERC-721 `Transfer` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Erc721Transfer {
    /// The NFT contract that emitted the event.
    pub contract: Address,
    /// Previous owner (the null address for mints).
    pub from: Address,
    /// New owner (the null address for burns).
    pub to: Address,
    /// The token id within the collection.
    pub token_id: u64,
}

/// A decoded ERC-20 `Transfer` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Erc20Transfer {
    /// The token contract that emitted the event.
    pub contract: Address,
    /// Sender of the tokens.
    pub from: Address,
    /// Recipient of the tokens.
    pub to: Address,
    /// Amount in the token's base units.
    pub amount: u128,
}

impl Log {
    /// Build an ERC-721 compliant `Transfer` log: 4 topics, empty data.
    pub fn erc721_transfer(contract: Address, from: Address, to: Address, token_id: u64) -> Log {
        Log {
            address: contract,
            topics: vec![
                transfer_topic(),
                B256::from_address(from),
                B256::from_address(to),
                B256::from_u128(token_id as u128),
            ],
            data: Vec::new(),
        }
    }

    /// Build an ERC-20 compliant `Transfer` log: 3 topics, amount in data.
    pub fn erc20_transfer(contract: Address, from: Address, to: Address, amount: u128) -> Log {
        Log {
            address: contract,
            topics: vec![transfer_topic(), B256::from_address(from), B256::from_address(to)],
            data: B256::from_u128(amount).0.to_vec(),
        }
    }

    /// Build an ERC-1155 `TransferSingle` log.
    pub fn erc1155_transfer_single(
        contract: Address,
        operator: Address,
        from: Address,
        to: Address,
        token_id: u64,
        amount: u128,
    ) -> Log {
        let mut data = Vec::with_capacity(64);
        data.extend_from_slice(&B256::from_u128(token_id as u128).0);
        data.extend_from_slice(&B256::from_u128(amount).0);
        Log {
            address: contract,
            topics: vec![
                transfer_single_topic(),
                B256::from_address(operator),
                B256::from_address(from),
                B256::from_address(to),
            ],
            data,
        }
    }

    /// Whether this log has the ERC-721 transfer shape (shared topic + 4 topics).
    pub fn is_erc721_transfer(&self) -> bool {
        self.topics.len() == 4 && self.topics[0] == transfer_topic()
    }

    /// Whether this log has the ERC-20 transfer shape (shared topic + 3 topics).
    pub fn is_erc20_transfer(&self) -> bool {
        self.topics.len() == 3 && self.topics[0] == transfer_topic()
    }

    /// Whether this log is an ERC-1155 `TransferSingle`.
    pub fn is_erc1155_transfer(&self) -> bool {
        self.topics.len() == 4 && self.topics[0] == transfer_single_topic()
    }

    /// Decode as an ERC-721 transfer, if the shape matches.
    pub fn decode_erc721_transfer(&self) -> Option<Erc721Transfer> {
        if !self.is_erc721_transfer() {
            return None;
        }
        Some(Erc721Transfer {
            contract: self.address,
            from: self.topics[1].to_address(),
            to: self.topics[2].to_address(),
            token_id: self.topics[3].to_u128()? as u64,
        })
    }

    /// Decode as an ERC-20 transfer, if the shape matches.
    pub fn decode_erc20_transfer(&self) -> Option<Erc20Transfer> {
        if !self.is_erc20_transfer() {
            return None;
        }
        if self.data.len() != 32 {
            return None;
        }
        let mut word = [0u8; 32];
        word.copy_from_slice(&self.data);
        Some(Erc20Transfer {
            contract: self.address,
            from: self.topics[1].to_address(),
            to: self.topics[2].to_address(),
            amount: B256(word).to_u128()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_constants_match_known_values() {
        assert!(transfer_topic().to_hex().starts_with("0xddf252ad"));
        assert!(transfer_single_topic().to_hex().starts_with("0xc3d58168"));
    }

    #[test]
    fn erc721_log_roundtrip() {
        let contract = Address::derived("nft-contract");
        let from = Address::derived("seller");
        let to = Address::derived("buyer");
        let log = Log::erc721_transfer(contract, from, to, 42);
        assert!(log.is_erc721_transfer());
        assert!(!log.is_erc20_transfer());
        assert!(!log.is_erc1155_transfer());
        let decoded = log.decode_erc721_transfer().expect("decode");
        assert_eq!(decoded.contract, contract);
        assert_eq!(decoded.from, from);
        assert_eq!(decoded.to, to);
        assert_eq!(decoded.token_id, 42);
        assert_eq!(log.decode_erc20_transfer(), None);
    }

    #[test]
    fn erc20_log_roundtrip() {
        let contract = Address::derived("weth");
        let from = Address::derived("payer");
        let to = Address::derived("payee");
        let log = Log::erc20_transfer(contract, from, to, 1_000_000);
        assert!(log.is_erc20_transfer());
        assert!(!log.is_erc721_transfer());
        let decoded = log.decode_erc20_transfer().expect("decode");
        assert_eq!(decoded.amount, 1_000_000);
        assert_eq!(decoded.from, from);
        assert_eq!(decoded.to, to);
        assert_eq!(log.decode_erc721_transfer(), None);
    }

    #[test]
    fn erc1155_log_is_not_confused_with_erc721() {
        let log = Log::erc1155_transfer_single(
            Address::derived("multi"),
            Address::derived("op"),
            Address::derived("a"),
            Address::derived("b"),
            7,
            3,
        );
        assert!(log.is_erc1155_transfer());
        assert!(!log.is_erc721_transfer());
        assert_eq!(log.decode_erc721_transfer(), None);
    }

    #[test]
    fn mint_and_burn_use_null_address() {
        let log = Log::erc721_transfer(
            Address::derived("c"),
            Address::NULL,
            Address::derived("minter"),
            1,
        );
        let decoded = log.decode_erc721_transfer().unwrap();
        assert!(decoded.from.is_null());
    }

    #[test]
    fn malformed_erc20_data_is_rejected() {
        let mut log = Log::erc20_transfer(
            Address::derived("weth"),
            Address::derived("a"),
            Address::derived("b"),
            5,
        );
        log.data.truncate(10);
        assert_eq!(log.decode_erc20_transfer(), None);
    }
}
