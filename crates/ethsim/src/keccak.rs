//! A from-scratch implementation of Keccak-256, the hash function used by
//! Ethereum for addresses, transaction hashes, event signatures, and
//! function selectors.
//!
//! This is the original Keccak padding (`0x01`), **not** the NIST SHA-3
//! padding (`0x06`); Ethereum predates the final SHA-3 standard and kept the
//! original padding rule.
//!
//! The implementation is a straightforward sponge over Keccak-f\[1600\] with a
//! rate of 1088 bits (136 bytes) and 256-bit output. It is validated in the
//! test module against well-known vectors, including the ERC-721 `Transfer`
//! event signature `ddf252ad…` that the paper uses to identify transfer logs.

/// Number of rounds of the Keccak-f\[1600\] permutation.
const ROUNDS: usize = 24;

/// Rate in bytes for Keccak-256 (1088 bits).
const RATE: usize = 136;

/// Round constants for the iota step.
const RC: [u64; ROUNDS] = [
    0x0000_0000_0000_0001,
    0x0000_0000_0000_8082,
    0x8000_0000_0000_808a,
    0x8000_0000_8000_8000,
    0x0000_0000_0000_808b,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8009,
    0x0000_0000_0000_008a,
    0x0000_0000_0000_0088,
    0x0000_0000_8000_8009,
    0x0000_0000_8000_000a,
    0x0000_0000_8000_808b,
    0x8000_0000_0000_008b,
    0x8000_0000_0000_8089,
    0x8000_0000_0000_8003,
    0x8000_0000_0000_8002,
    0x8000_0000_0000_0080,
    0x0000_0000_0000_800a,
    0x8000_0000_8000_000a,
    0x8000_0000_8000_8081,
    0x8000_0000_0000_8080,
    0x0000_0000_8000_0001,
    0x8000_0000_8000_8008,
];

/// Rotation offsets for the rho step, indexed `[x][y]`.
const RHO: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// The 1600-bit Keccak state as a 5x5 matrix of 64-bit lanes.
#[derive(Clone)]
struct State {
    lanes: [[u64; 5]; 5],
}

impl State {
    fn new() -> Self {
        State { lanes: [[0u64; 5]; 5] }
    }

    /// One full Keccak-f\[1600\] permutation.
    fn permute(&mut self) {
        for round in 0..ROUNDS {
            self.theta();
            self.rho_pi();
            self.chi();
            self.iota(round);
        }
    }

    fn theta(&mut self) {
        let mut c = [0u64; 5];
        for (column, lanes) in c.iter_mut().zip(&self.lanes) {
            *column = lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3] ^ lanes[4];
        }
        let mut d = [0u64; 5];
        for (x, parity) in d.iter_mut().enumerate() {
            *parity = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for (lanes, parity) in self.lanes.iter_mut().zip(d) {
            for lane in lanes {
                *lane ^= parity;
            }
        }
    }

    fn rho_pi(&mut self) {
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = self.lanes[x][y].rotate_left(RHO[x][y]);
            }
        }
        self.lanes = b;
    }

    fn chi(&mut self) {
        let a = self.lanes;
        for (x, lanes) in self.lanes.iter_mut().enumerate() {
            for (y, lane) in lanes.iter_mut().enumerate() {
                *lane = a[x][y] ^ ((!a[(x + 1) % 5][y]) & a[(x + 2) % 5][y]);
            }
        }
    }

    fn iota(&mut self, round: usize) {
        self.lanes[0][0] ^= RC[round];
    }

    /// XOR a full rate-sized block into the state.
    fn absorb_block(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len(), RATE);
        for (i, chunk) in block.chunks_exact(8).enumerate() {
            let lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            let x = i % 5;
            let y = i / 5;
            self.lanes[x][y] ^= lane;
        }
        self.permute();
    }

    /// Read the first 32 bytes of the state (little-endian lanes in
    /// column-major order), which is the Keccak-256 digest.
    fn squeeze256(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            let x = i % 5;
            let y = i / 5;
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.lanes[x][y].to_le_bytes());
        }
        out
    }
}

/// Compute the Keccak-256 digest of `data`.
///
/// # Examples
///
/// ```
/// let digest = ethsim::keccak::keccak256(b"Transfer(address,address,uint256)");
/// // The first four bytes are the well-known ERC-721/ERC-20 Transfer topic prefix.
/// assert_eq!(&digest[..4], &[0xdd, 0xf2, 0x52, 0xad]);
/// ```
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    let mut state = State::new();
    let mut block = [0u8; RATE];
    let mut chunks = data.chunks_exact(RATE);
    for chunk in &mut chunks {
        block.copy_from_slice(chunk);
        state.absorb_block(&block);
    }
    // Final (partial) block with Keccak padding 0x01 .. 0x80.
    let rem = chunks.remainder();
    block = [0u8; RATE];
    block[..rem.len()].copy_from_slice(rem);
    block[rem.len()] ^= 0x01;
    block[RATE - 1] ^= 0x80;
    state.absorb_block(&block);
    state.squeeze256()
}

/// Compute the 4-byte function selector of a Solidity function signature,
/// i.e. the first four bytes of the Keccak-256 of the canonical signature.
///
/// # Examples
///
/// ```
/// assert_eq!(
///     ethsim::keccak::selector("supportsInterface(bytes4)"),
///     [0x01, 0xff, 0xc9, 0xa7]
/// );
/// ```
pub fn selector(signature: &str) -> [u8; 4] {
    let digest = keccak256(signature.as_bytes());
    [digest[0], digest[1], digest[2], digest[3]]
}

/// Compute the 32-byte event topic of a Solidity event signature.
pub fn event_topic(signature: &str) -> [u8; 32] {
    keccak256(signature.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_input_matches_known_vector() {
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_matches_known_vector() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn erc721_transfer_event_signature() {
        // The signature the paper uses to find ERC-721/ERC-20 transfer logs.
        assert_eq!(
            hex(&event_topic("Transfer(address,address,uint256)")),
            "ddf252ad1be2c89b69c2b068fc378daa952ba7f163c4a11628f55a4df523b3ef"
        );
    }

    #[test]
    fn erc1155_transfer_single_signature_differs() {
        let erc1155 = event_topic("TransferSingle(address,address,address,uint256,uint256)");
        let erc721 = event_topic("Transfer(address,address,uint256)");
        assert_ne!(erc1155, erc721);
        assert_eq!(
            hex(&erc1155),
            "c3d58168c5ae7397731d063d5bbf3d657854427343f4c083240f7aacaa2d0f62"
        );
    }

    #[test]
    fn erc165_interface_ids() {
        assert_eq!(selector("supportsInterface(bytes4)"), [0x01, 0xff, 0xc9, 0xa7]);
    }

    #[test]
    fn erc721_interface_id_is_xor_of_selectors() {
        // The ERC-721 interface id 0x80ac58cd is the XOR of its nine function selectors.
        let signatures = [
            "balanceOf(address)",
            "ownerOf(uint256)",
            "safeTransferFrom(address,address,uint256,bytes)",
            "safeTransferFrom(address,address,uint256)",
            "transferFrom(address,address,uint256)",
            "approve(address,uint256)",
            "setApprovalForAll(address,bool)",
            "getApproved(uint256)",
            "isApprovedForAll(address,address)",
        ];
        let mut id = [0u8; 4];
        for sig in signatures {
            let sel = selector(sig);
            for i in 0..4 {
                id[i] ^= sel[i];
            }
        }
        assert_eq!(id, [0x80, 0xac, 0x58, 0xcd]);
    }

    #[test]
    fn long_input_spanning_multiple_blocks() {
        // 200 bytes forces more than one absorb block (rate = 136 bytes).
        let data = vec![0xabu8; 200];
        let digest = keccak256(&data);
        // Hashing the same data twice is deterministic.
        assert_eq!(digest, keccak256(&data));
        // And differs from a one-byte perturbation.
        let mut data2 = data.clone();
        data2[199] = 0xac;
        assert_ne!(digest, keccak256(&data2));
    }

    #[test]
    fn rate_sized_input_uses_extra_padding_block() {
        let data = vec![0x11u8; RATE];
        let a = keccak256(&data);
        let b = keccak256(&data[..RATE - 1]);
        assert_ne!(a, b);
    }

    #[test]
    fn digest_distribution_no_trivial_collisions() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..1000u32 {
            let digest = keccak256(&i.to_be_bytes());
            assert!(seen.insert(digest), "collision at {i}");
        }
    }
}
