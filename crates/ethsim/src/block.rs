//! Blocks: ordered containers of transactions with a timestamp.

use serde::{Deserialize, Serialize};

use crate::types::{BlockNumber, Timestamp, TxHash};

/// A sealed block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The block number.
    pub number: BlockNumber,
    /// The block timestamp; all transactions in the block share it.
    pub timestamp: Timestamp,
    /// Hashes of the transactions included, in execution order.
    pub transactions: Vec<TxHash>,
}

impl Block {
    /// Create an empty block.
    pub fn new(number: BlockNumber, timestamp: Timestamp) -> Self {
        Block { number, timestamp, transactions: Vec::new() }
    }

    /// Number of transactions in the block.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_block_is_empty() {
        let block = Block::new(BlockNumber(7), Timestamp::from_secs(100));
        assert!(block.is_empty());
        assert_eq!(block.len(), 0);
        assert_eq!(block.number, BlockNumber(7));
    }
}
