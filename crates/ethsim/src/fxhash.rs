//! A fast, deterministic hasher for the simulator's internal maps.
//!
//! The chain and the interning layers key their maps by fixed-width byte
//! identifiers (20-byte addresses, 32-byte transaction hashes) that are
//! already uniformly distributed, so the std `RandomState` SipHash buys no
//! robustness here and costs a large share of the ingest hot path (one hash
//! per log for the compliance verdict, three per transfer for interning).
//! [`FxHasher`] is the word-at-a-time multiply-rotate hash used by rustc:
//! not DoS-resistant, which is fine for trusted simulator-internal keys, and
//! several times cheaper on short fixed-size keys.
//!
//! Determinism note: none of the workspace's maps leak iteration order into
//! results (every ordered output is explicitly sorted), so the hasher choice
//! is unobservable — but a fixed-seed hasher also makes any accidental
//! order leak reproducible instead of per-process random.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// The `BuildHasher` producing [`FxHasher`]s (zero-sized, fixed seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style Fx hash state: fold each input word into the accumulator
/// with a rotate, xor and multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time: the dominant keys are 20- and 32-byte arrays, so
        // this folds them in 3–4 multiplies instead of a per-byte loop.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add(value as u64);
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add(value as u64);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(value as u64);
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_u128(&mut self, value: u128) {
        self.add(value as u64);
        self.add((value >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_keys_hash_equal_and_deterministically() {
        let a = crate::Address::derived("alice");
        let b = crate::Address::derived("alice");
        assert_eq!(hash_of(&a), hash_of(&b));
        // Fixed seed: the value is stable across hasher instances.
        assert_eq!(hash_of(&a), hash_of(&a));
        assert_ne!(hash_of(&a), hash_of(&crate::Address::derived("bob")));
    }

    #[test]
    fn tails_shorter_than_a_word_still_differentiate() {
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&1u128), hash_of(&(1u128 << 64)));
    }

    #[test]
    fn maps_and_sets_work_with_byte_array_keys() {
        let mut map: FxHashMap<crate::TxHash, usize> = FxHashMap::default();
        let mut set: FxHashSet<crate::Address> = FxHashSet::default();
        for i in 0..1000u64 {
            map.insert(crate::TxHash::hash_of(&i.to_be_bytes()), i as usize);
            set.insert(crate::Address::derived(&format!("a{i}")));
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(set.len(), 1000);
        assert_eq!(map[&crate::TxHash::hash_of(&7u64.to_be_bytes())], 7);
    }
}
