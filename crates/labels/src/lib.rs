//! # labels — an Etherscan-style account label registry
//!
//! The paper's graph-refinement step (§IV-B) removes "service accounts" —
//! EOAs operated by exchanges, CeFi services and games — because they
//! interact with thousands of unrelated users and would create spurious
//! strongly connected components. It also excludes Exchange and DeFi
//! addresses from acting as *common external funders/exits* (§IV-C). The
//! paper sources those labels from Etherscan's label cloud; in this
//! reproduction the [`LabelRegistry`] is populated by the workload generator
//! from ground truth, and the detection pipeline consumes it through the same
//! category queries the paper uses.
//!
//! # Example
//!
//! ```
//! use ethsim::Address;
//! use labels::{LabelCategory, LabelRegistry};
//!
//! let mut registry = LabelRegistry::new();
//! let coinbase = Address::derived("coinbase-hot-wallet");
//! registry.insert(coinbase, "Coinbase", LabelCategory::Exchange);
//! assert!(registry.is_service_account(coinbase));
//! assert!(registry.is_exchange_or_defi(coinbase));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use ethsim::Address;
use serde::{Deserialize, Serialize};

/// The label categories relevant to the paper's methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LabelCategory {
    /// Centralized exchange hot/cold wallets (e.g. Coinbase, Binance).
    Exchange,
    /// Other centralized finance services (custody, lending desks).
    CeFi,
    /// Blockchain game operator accounts.
    Game,
    /// DeFi protocol contracts and operator accounts (DEX routers, lending pools).
    DeFi,
    /// NFT marketplace contracts and escrow accounts.
    Marketplace,
    /// Token contracts (ERC-20 / ERC-721).
    Token,
    /// Anything else worth naming but not treated specially.
    Other,
}

impl LabelCategory {
    /// Whether the paper's refinement step removes accounts of this category
    /// from the per-NFT transaction graphs (Exchanges, CeFi and games).
    pub fn is_service(&self) -> bool {
        matches!(self, LabelCategory::Exchange | LabelCategory::CeFi | LabelCategory::Game)
    }

    /// Whether accounts of this category are disqualified from being common
    /// external funders or exits (Exchanges and DeFi services).
    pub fn is_exchange_or_defi(&self) -> bool {
        matches!(self, LabelCategory::Exchange | LabelCategory::DeFi)
    }
}

impl std::fmt::Display for LabelCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            LabelCategory::Exchange => "Exchange",
            LabelCategory::CeFi => "CeFi",
            LabelCategory::Game => "Game",
            LabelCategory::DeFi => "DeFi",
            LabelCategory::Marketplace => "Marketplace",
            LabelCategory::Token => "Token",
            LabelCategory::Other => "Other",
        };
        f.write_str(name)
    }
}

/// A label attached to an address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Label {
    /// Human-readable name (e.g. "Coinbase 4", "LooksRare: Exchange").
    pub name: String,
    /// The category the address belongs to.
    pub category: LabelCategory,
}

/// The registry mapping addresses to labels.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelRegistry {
    labels: HashMap<Address, Label>,
}

impl LabelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        LabelRegistry::default()
    }

    /// Insert (or replace) a label for an address. Returns the previous label
    /// if one existed.
    pub fn insert(
        &mut self,
        address: Address,
        name: impl Into<String>,
        category: LabelCategory,
    ) -> Option<Label> {
        self.labels.insert(address, Label { name: name.into(), category })
    }

    /// The label of an address, if any.
    pub fn get(&self, address: Address) -> Option<&Label> {
        self.labels.get(&address)
    }

    /// The category of an address, if labelled.
    pub fn category(&self, address: Address) -> Option<LabelCategory> {
        self.labels.get(&address).map(|l| l.category)
    }

    /// Whether the refinement step should drop this account from transaction
    /// graphs: labelled Exchange/CeFi/Game, or the null address (mint/burn
    /// endpoint).
    pub fn is_service_account(&self, address: Address) -> bool {
        if address.is_null() {
            return true;
        }
        self.category(address).map(|c| c.is_service()).unwrap_or(false)
    }

    /// Whether the address is an Exchange or DeFi service, and therefore not
    /// eligible to be a common external funder/exit.
    pub fn is_exchange_or_defi(&self, address: Address) -> bool {
        self.category(address).map(|c| c.is_exchange_or_defi()).unwrap_or(false)
    }

    /// Number of labelled addresses.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterate over all `(address, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Address, &Label)> {
        self.labels.iter()
    }

    /// All addresses with a given category.
    pub fn addresses_in(&self, category: LabelCategory) -> Vec<Address> {
        let mut out: Vec<Address> = self
            .labels
            .iter()
            .filter(|(_, label)| label.category == category)
            .map(|(address, _)| *address)
            .collect();
        out.sort();
        out
    }
}

impl Extend<(Address, Label)> for LabelRegistry {
    fn extend<T: IntoIterator<Item = (Address, Label)>>(&mut self, iter: T) {
        for (address, label) in iter {
            self.labels.insert(address, label);
        }
    }
}

impl FromIterator<(Address, Label)> for LabelRegistry {
    fn from_iter<T: IntoIterator<Item = (Address, Label)>>(iter: T) -> Self {
        let mut registry = LabelRegistry::new();
        registry.extend(iter);
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_address_is_always_a_service_account() {
        let registry = LabelRegistry::new();
        assert!(registry.is_service_account(Address::NULL));
        assert!(!registry.is_exchange_or_defi(Address::NULL));
    }

    #[test]
    fn unlabelled_addresses_are_not_service_accounts() {
        let registry = LabelRegistry::new();
        assert!(!registry.is_service_account(Address::derived("random-user")));
        assert_eq!(registry.category(Address::derived("random-user")), None);
    }

    #[test]
    fn category_rules_match_the_paper() {
        let mut registry = LabelRegistry::new();
        let exchange = Address::derived("binance");
        let cefi = Address::derived("celsius");
        let game = Address::derived("axie");
        let defi = Address::derived("uniswap-router");
        let marketplace = Address::derived("opensea");
        registry.insert(exchange, "Binance", LabelCategory::Exchange);
        registry.insert(cefi, "Celsius", LabelCategory::CeFi);
        registry.insert(game, "Axie Infinity", LabelCategory::Game);
        registry.insert(defi, "Uniswap V3 Router", LabelCategory::DeFi);
        registry.insert(marketplace, "OpenSea", LabelCategory::Marketplace);

        // Removed from the graphs.
        assert!(registry.is_service_account(exchange));
        assert!(registry.is_service_account(cefi));
        assert!(registry.is_service_account(game));
        // Not removed, but disqualified as external funder/exit.
        assert!(!registry.is_service_account(defi));
        assert!(registry.is_exchange_or_defi(defi));
        assert!(registry.is_exchange_or_defi(exchange));
        // Marketplaces are neither.
        assert!(!registry.is_service_account(marketplace));
        assert!(!registry.is_exchange_or_defi(marketplace));
    }

    #[test]
    fn insert_replaces_and_returns_previous() {
        let mut registry = LabelRegistry::new();
        let a = Address::derived("acct");
        assert!(registry.insert(a, "First", LabelCategory::Other).is_none());
        let previous = registry.insert(a, "Second", LabelCategory::Exchange).unwrap();
        assert_eq!(previous.name, "First");
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.category(a), Some(LabelCategory::Exchange));
    }

    #[test]
    fn addresses_in_category_is_sorted_and_filtered() {
        let mut registry = LabelRegistry::new();
        let a = Address::derived("x1");
        let b = Address::derived("x2");
        let c = Address::derived("x3");
        registry.insert(a, "A", LabelCategory::Exchange);
        registry.insert(b, "B", LabelCategory::Exchange);
        registry.insert(c, "C", LabelCategory::Game);
        let exchanges = registry.addresses_in(LabelCategory::Exchange);
        assert_eq!(exchanges.len(), 2);
        assert!(exchanges.windows(2).all(|w| w[0] <= w[1]));
        assert!(!exchanges.contains(&c));
    }

    #[test]
    fn from_iterator_collects() {
        let a = Address::derived("a");
        let registry: LabelRegistry =
            vec![(a, Label { name: "A".to_string(), category: LabelCategory::CeFi })]
                .into_iter()
                .collect();
        assert!(registry.is_service_account(a));
        assert!(!registry.is_empty());
    }
}
