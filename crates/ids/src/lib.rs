//! # ids — dense interned identifiers for the analysis pipeline
//!
//! The paper's pipeline is join-heavy: every stage used to re-hash 20-byte
//! [`Address`] and 28-byte [`NftId`] keys through `HashMap`s on every edge
//! touch. This crate provides the interning layer that removes those hashes
//! from the hot paths: each entity is mapped **once, at ingest**, to a dense
//! `u32` id, and every downstream stage indexes plain `Vec`s with it. The
//! dense ids resolve back to real addresses exactly once, at the report
//! boundary.
//!
//! Three id spaces exist, one per entity kind:
//!
//! * [`AccountId`] — transfer senders and recipients (the null address
//!   included, since mints and burns use it),
//! * [`NftKey`] — `(contract, token id)` pairs with at least one transfer,
//! * [`MarketId`] — marketplace contracts attributed to at least one sale.
//!
//! The [`Interner`] owning all three is **append-only and stream-stable**:
//! ids are assigned in first-seen order, an id is never reassigned, and
//! feeding the same entries epoch by epoch produces the same assignment as a
//! one-shot pass — which is what lets the streaming subsystem share dense
//! artifacts with the batch pipeline bit for bit.
//!
//! [`BitSet`] is the membership structure the dense stages use in place of
//! `HashSet<Address>`: constant-time insert/contains over small integer ids.
//! [`Postings`] is its lookup-side sibling: a compressed-sparse-row table
//! mapping each dense id to a contiguous slice of values, used by the
//! serving layer's secondary indexes (account → suspect activities).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ethsim::fxhash::FxHashMap;
use ethsim::Address;
use serde::{Deserialize, Serialize};
use tokens::NftId;

/// Dense id of an account, assigned in first-seen order at ingest.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AccountId(pub u32);

impl AccountId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of an NFT, assigned in first-seen order at ingest.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NftKey(pub u32);

impl NftKey {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of a marketplace contract, assigned in first-seen order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MarketId(pub u32);

impl MarketId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The append-only entity interner: `Address → AccountId`,
/// `NftId → NftKey`, marketplace `Address → MarketId`, plus the reverse
/// tables for resolution at the report boundary.
///
/// # Examples
///
/// ```
/// use ethsim::Address;
/// use ids::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern_account(Address::derived("alice"));
/// let b = interner.intern_account(Address::derived("bob"));
/// assert_ne!(a, b);
/// assert_eq!(interner.intern_account(Address::derived("alice")), a);
/// assert_eq!(interner.address(a), Address::derived("alice"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Interner {
    accounts: Vec<Address>,
    account_ids: FxHashMap<Address, AccountId>,
    nfts: Vec<NftId>,
    nft_keys: FxHashMap<NftId, NftKey>,
    markets: Vec<Address>,
    market_ids: FxHashMap<Address, MarketId>,
}

impl Interner {
    /// An empty interner: no entity has an id yet.
    pub fn new() -> Self {
        Interner::default()
    }

    // -- accounts ----------------------------------------------------------

    /// The id of `address`, assigning the next dense id on first sight.
    pub fn intern_account(&mut self, address: Address) -> AccountId {
        if let Some(&id) = self.account_ids.get(&address) {
            return id;
        }
        let id = AccountId(u32::try_from(self.accounts.len()).expect("account space fits u32"));
        self.account_ids.insert(address, id);
        self.accounts.push(address);
        id
    }

    /// The id of an already-interned account.
    pub fn account_id(&self, address: Address) -> Option<AccountId> {
        self.account_ids.get(&address).copied()
    }

    /// Resolve an account id back to its address.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this interner.
    #[inline]
    pub fn address(&self, id: AccountId) -> Address {
        self.accounts[id.index()]
    }

    /// Number of interned accounts (ids are `0..account_count`).
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// The addresses of all interned accounts, in id order.
    pub fn accounts(&self) -> &[Address] {
        &self.accounts
    }

    // -- NFTs --------------------------------------------------------------

    /// The key of `nft`, assigning the next dense key on first sight.
    pub fn intern_nft(&mut self, nft: NftId) -> NftKey {
        if let Some(&key) = self.nft_keys.get(&nft) {
            return key;
        }
        let key = NftKey(u32::try_from(self.nfts.len()).expect("nft space fits u32"));
        self.nft_keys.insert(nft, key);
        self.nfts.push(nft);
        key
    }

    /// The key of an already-interned NFT.
    pub fn nft_key(&self, nft: NftId) -> Option<NftKey> {
        self.nft_keys.get(&nft).copied()
    }

    /// Resolve an NFT key back to its `(contract, token id)` identity.
    ///
    /// # Panics
    ///
    /// Panics if the key was not produced by this interner.
    #[inline]
    pub fn nft(&self, key: NftKey) -> NftId {
        self.nfts[key.index()]
    }

    /// Number of interned NFTs (keys are `0..nft_count`).
    pub fn nft_count(&self) -> usize {
        self.nfts.len()
    }

    /// The identities of all interned NFTs, in key order.
    pub fn nfts(&self) -> &[NftId] {
        &self.nfts
    }

    /// All NFT keys ordered by their resolved `NftId` — the fixed iteration
    /// order every float accumulation over NFTs uses, so sums never depend on
    /// first-seen (ingest) order.
    pub fn nft_keys_sorted_by_id(&self) -> Vec<NftKey> {
        let mut keys: Vec<NftKey> = (0..self.nfts.len() as u32).map(NftKey).collect();
        keys.sort_by_key(|key| self.nfts[key.index()]);
        keys
    }

    // -- marketplaces ------------------------------------------------------

    /// The id of marketplace `contract`, assigning the next dense id on
    /// first sight.
    pub fn intern_market(&mut self, contract: Address) -> MarketId {
        if let Some(&id) = self.market_ids.get(&contract) {
            return id;
        }
        let id = MarketId(u32::try_from(self.markets.len()).expect("market space fits u32"));
        self.market_ids.insert(contract, id);
        self.markets.push(contract);
        id
    }

    /// The id of an already-interned marketplace contract.
    pub fn market_id(&self, contract: Address) -> Option<MarketId> {
        self.market_ids.get(&contract).copied()
    }

    /// Resolve a marketplace id back to its contract address.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this interner.
    #[inline]
    pub fn market(&self, id: MarketId) -> Address {
        self.markets[id.index()]
    }

    /// Number of interned marketplace contracts.
    pub fn market_count(&self) -> usize {
        self.markets.len()
    }

    /// Approximate resident bytes of the interner's tables (for the
    /// bytes-per-transfer accounting in the perf trajectory).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.accounts.capacity() * size_of::<Address>()
            + self.account_ids.capacity() * (size_of::<Address>() + size_of::<AccountId>())
            + self.nfts.capacity() * size_of::<NftId>()
            + self.nft_keys.capacity() * (size_of::<NftId>() + size_of::<NftKey>())
            + self.markets.capacity() * size_of::<Address>()
            + self.market_ids.capacity() * (size_of::<Address>() + size_of::<MarketId>())
    }

    // -- speculative interning ---------------------------------------------

    /// Freeze a read-only view of the interner for a parallel phase: the
    /// per-space base lengths plus shared lookups. Shards intern
    /// speculatively against the snapshot through [`SpeculativeInterner`]
    /// while the interner itself stays untouched.
    pub fn snapshot(&self) -> InternerSnapshot<'_> {
        InternerSnapshot {
            interner: self,
            account_base: self.accounts.len() as u32,
            nft_base: self.nfts.len() as u32,
            market_base: self.markets.len() as u32,
        }
    }

    /// Commit one shard's new accounts in their first-encounter order,
    /// returning the dense id each contender slot resolved to. Interning is
    /// idempotent, so a contender another shard already claimed simply maps
    /// to that earlier id — walking shards in order therefore reproduces the
    /// serial first-occurrence assignment exactly.
    pub fn reconcile_accounts(&mut self, contenders: &[Address]) -> Vec<AccountId> {
        contenders.iter().map(|&address| self.intern_account(address)).collect()
    }

    /// [`Interner::reconcile_accounts`] for the NFT id space.
    pub fn reconcile_nfts(&mut self, contenders: &[NftId]) -> Vec<NftKey> {
        contenders.iter().map(|&nft| self.intern_nft(nft)).collect()
    }

    /// [`Interner::reconcile_accounts`] for the marketplace id space.
    pub fn reconcile_markets(&mut self, contenders: &[Address]) -> Vec<MarketId> {
        contenders.iter().map(|&contract| self.intern_market(contract)).collect()
    }
}

/// A read-only view of an [`Interner`] taken before a parallel phase.
///
/// The snapshot pins each id space's **base** (its length at capture time),
/// which gives speculative ids an unambiguous encoding: a slot below the
/// base is a settled global id; a slot at or above it is `base + i`, the
/// shard's `i`-th new contender in that space, resolved to a real id during
/// reconciliation. The underlying interner must not be mutated while
/// snapshots of it are alive — the borrow checker enforces exactly that.
#[derive(Debug, Clone, Copy)]
pub struct InternerSnapshot<'a> {
    interner: &'a Interner,
    account_base: u32,
    nft_base: u32,
    market_base: u32,
}

impl<'a> InternerSnapshot<'a> {
    /// Number of accounts settled at capture time; speculative account slots
    /// start here.
    pub fn account_base(&self) -> u32 {
        self.account_base
    }

    /// Number of NFTs settled at capture time.
    pub fn nft_base(&self) -> u32 {
        self.nft_base
    }

    /// Number of marketplaces settled at capture time.
    pub fn market_base(&self) -> u32 {
        self.market_base
    }

    /// The settled id of `address`, if it was interned before the snapshot.
    pub fn account_id(&self, address: Address) -> Option<AccountId> {
        self.interner.account_id(address)
    }

    /// The settled key of `nft`, if it was interned before the snapshot.
    pub fn nft_key(&self, nft: NftId) -> Option<NftKey> {
        self.interner.nft_key(nft)
    }

    /// The settled id of marketplace `contract`, if interned before the
    /// snapshot.
    pub fn market_id(&self, contract: Address) -> Option<MarketId> {
        self.interner.market_id(contract)
    }
}

/// The new entities one shard discovered, per id space, in first-encounter
/// order — the contender lists serial reconciliation walks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NewEntities {
    /// Accounts not in the snapshot, in the order this shard first saw them.
    pub accounts: Vec<Address>,
    /// NFTs not in the snapshot, in first-seen order.
    pub nfts: Vec<NftId>,
    /// Marketplace contracts not in the snapshot, in first-seen order.
    pub markets: Vec<Address>,
}

impl NewEntities {
    /// Whether the shard discovered nothing new in any id space.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty() && self.nfts.is_empty() && self.markets.is_empty()
    }
}

/// A shard-local interner that never mutates the shared tables: known
/// entities resolve through the [`InternerSnapshot`], unknown ones get
/// provisional slots `base + i` and are collected as contenders
/// ([`SpeculativeInterner::into_contenders`]) for serial reconciliation.
///
/// # Examples
///
/// ```
/// use ethsim::Address;
/// use ids::{Interner, SpeculativeInterner};
///
/// let mut interner = Interner::new();
/// let known = interner.intern_account(Address::derived("known"));
/// let snapshot = interner.snapshot();
/// let base = snapshot.account_base();
/// let mut shard = SpeculativeInterner::new(snapshot);
/// assert_eq!(shard.intern_account(Address::derived("known")), known.0);
/// let slot = shard.intern_account(Address::derived("new"));
/// assert_eq!(slot, base); // first contender
/// let contenders = shard.into_contenders();
/// let remap = interner.reconcile_accounts(&contenders.accounts);
/// assert_eq!(remap[(slot - base) as usize].0, 1);
/// ```
#[derive(Debug)]
pub struct SpeculativeInterner<'a> {
    snapshot: InternerSnapshot<'a>,
    new_accounts: Vec<Address>,
    account_slots: FxHashMap<Address, u32>,
    new_nfts: Vec<NftId>,
    nft_slots: FxHashMap<NftId, u32>,
    new_markets: Vec<Address>,
    market_slots: FxHashMap<Address, u32>,
}

impl<'a> SpeculativeInterner<'a> {
    /// A shard-local interner over `snapshot`, with no contenders yet.
    pub fn new(snapshot: InternerSnapshot<'a>) -> Self {
        SpeculativeInterner {
            snapshot,
            new_accounts: Vec::new(),
            account_slots: FxHashMap::default(),
            new_nfts: Vec::new(),
            nft_slots: FxHashMap::default(),
            new_markets: Vec::new(),
            market_slots: FxHashMap::default(),
        }
    }

    /// The speculative slot of `address`: its settled id if the snapshot
    /// knows it, otherwise `account_base + i` for the shard's `i`-th new
    /// account.
    pub fn intern_account(&mut self, address: Address) -> u32 {
        if let Some(id) = self.snapshot.account_id(address) {
            return id.0;
        }
        if let Some(&slot) = self.account_slots.get(&address) {
            return slot;
        }
        let slot = self.snapshot.account_base + self.new_accounts.len() as u32;
        self.account_slots.insert(address, slot);
        self.new_accounts.push(address);
        slot
    }

    /// The speculative slot of `nft` (see [`Self::intern_account`]).
    pub fn intern_nft(&mut self, nft: NftId) -> u32 {
        if let Some(key) = self.snapshot.nft_key(nft) {
            return key.0;
        }
        if let Some(&slot) = self.nft_slots.get(&nft) {
            return slot;
        }
        let slot = self.snapshot.nft_base + self.new_nfts.len() as u32;
        self.nft_slots.insert(nft, slot);
        self.new_nfts.push(nft);
        slot
    }

    /// The speculative slot of marketplace `contract` (see
    /// [`Self::intern_account`]).
    pub fn intern_market(&mut self, contract: Address) -> u32 {
        if let Some(id) = self.snapshot.market_id(contract) {
            return id.0;
        }
        if let Some(&slot) = self.market_slots.get(&contract) {
            return slot;
        }
        let slot = self.snapshot.market_base + self.new_markets.len() as u32;
        self.market_slots.insert(contract, slot);
        self.new_markets.push(contract);
        slot
    }

    /// Finish the shard, yielding its contender lists in first-encounter
    /// order (slot `base + i` is entry `i` of the matching list).
    pub fn into_contenders(self) -> NewEntities {
        NewEntities { accounts: self.new_accounts, nfts: self.new_nfts, markets: self.new_markets }
    }
}

/// A growable bitset over dense ids: the constant-time membership structure
/// the analysis stages use in place of `HashSet<Address>`.
///
/// # Examples
///
/// ```
/// use ids::{AccountId, BitSet};
///
/// let mut set = BitSet::new();
/// set.insert(AccountId(3).index());
/// assert!(set.contains(AccountId(3).index()));
/// assert!(!set.contains(AccountId(4).index()));
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

/// Set-semantic equality: two sets are equal iff they contain the same ids,
/// regardless of pre-sized or cleared-but-still-allocated trailing blocks
/// (a derived `PartialEq` on `blocks` would make `with_capacity(64)`
/// compare unequal to `new()` though both are empty).
impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let (short, long) =
            if self.blocks.len() <= other.blocks.len() { (self, other) } else { (other, self) };
        short.blocks == long.blocks[..short.blocks.len()]
            && long.blocks[short.blocks.len()..].iter().all(|&block| block == 0)
    }
}

impl Eq for BitSet {}

impl BitSet {
    /// An empty set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// An empty set pre-sized for ids `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet { blocks: vec![0; capacity.div_ceil(64)], len: 0 }
    }

    /// Insert an id; returns whether it was newly inserted.
    pub fn insert(&mut self, index: usize) -> bool {
        let block = index / 64;
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << (index % 64);
        if self.blocks[block] & mask != 0 {
            return false;
        }
        self.blocks[block] |= mask;
        self.len += 1;
        true
    }

    /// Whether the id is in the set.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.blocks.get(index / 64).is_some_and(|block| block & (1u64 << (index % 64)) != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every id, keeping the allocation.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
        self.len = 0;
    }

    /// Iterate the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(block_index, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(block_index * 64 + bit)
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut set = BitSet::new();
        for index in iter {
            set.insert(index);
        }
        set
    }
}

/// A compressed-sparse-row postings table over dense `u32` keys: for each
/// key, a contiguous slice of values, stored as one values array plus an
/// offsets array — the secondary-index building block the serving layer uses
/// for account → suspect-activity lookups.
///
/// Keys are dense (`0..keys()`); a key beyond the largest seen simply has an
/// empty postings list. Construction sorts stably by key, so values with the
/// same key keep their input order.
///
/// # Examples
///
/// ```
/// use ids::Postings;
///
/// let postings = Postings::from_pairs(vec![(2u32, "c"), (0, "a"), (2, "b")]);
/// assert_eq!(postings.get(0), ["a"]);
/// assert_eq!(postings.get(1), [""; 0]);
/// assert_eq!(postings.get(2), ["c", "b"], "input order is kept within a key");
/// assert_eq!(postings.get(99), [""; 0], "out-of-range keys are empty");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Postings<V> {
    /// `offsets[k]..offsets[k + 1]` is key `k`'s slice of `values`.
    offsets: Vec<u32>,
    values: Vec<V>,
}

impl<V> Default for Postings<V> {
    fn default() -> Self {
        Postings { offsets: vec![0], values: Vec::new() }
    }
}

impl<V> Postings<V> {
    /// An empty table: every key has an empty postings list.
    pub fn new() -> Self {
        Postings::default()
    }

    /// Build the table from `(key, value)` pairs, grouping by key. The sort
    /// is stable: values sharing a key keep the order they were pushed in.
    pub fn from_pairs(mut pairs: Vec<(u32, V)>) -> Self {
        if pairs.is_empty() {
            return Postings::default();
        }
        pairs.sort_by_key(|(key, _)| *key);
        let keys = pairs.last().map(|(key, _)| *key as usize + 1).unwrap_or(0);
        let mut offsets = Vec::with_capacity(keys + 1);
        offsets.push(0u32);
        let mut values = Vec::with_capacity(pairs.len());
        for (key, value) in pairs {
            while offsets.len() <= key as usize {
                offsets.push(values.len() as u32);
            }
            values.push(value);
        }
        offsets.push(values.len() as u32);
        Postings { offsets, values }
    }

    /// Build the table directly from its CSR parts:
    /// `offsets[k]..offsets[k + 1]` spans key `k`'s slice of `values`. For
    /// callers that already produce grouped, key-ordered output — skips
    /// [`Postings::from_pairs`]' sort and regroup passes.
    ///
    /// # Panics
    ///
    /// Panics unless `offsets` starts at 0, ends at `values.len()`, and
    /// ascends.
    pub fn from_parts(offsets: Vec<u32>, values: Vec<V>) -> Self {
        assert_eq!(offsets.first(), Some(&0), "offsets must start at 0");
        assert_eq!(
            offsets.last().map(|&last| last as usize),
            Some(values.len()),
            "offsets must end at values.len()"
        );
        assert!(offsets.windows(2).all(|pair| pair[0] <= pair[1]), "offsets must ascend");
        Postings { offsets, values }
    }

    /// Number of keys with an allocated slot (`0..keys()`; trailing keys
    /// without postings are not represented).
    pub fn keys(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The postings list of one key; empty for keys never seen.
    pub fn get(&self, key: u32) -> &[V] {
        let key = key as usize;
        if key >= self.keys() {
            return &[];
        }
        &self.values[self.offsets[key] as usize..self.offsets[key + 1] as usize]
    }

    /// Total number of stored values across all keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no value is stored at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(key, postings)` over every allocated key, ascending, empty
    /// lists included.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[V])> + '_ {
        (0..self.keys() as u32).map(move |key| (key, self.get(key)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut interner = Interner::new();
        let a = interner.intern_account(Address::derived("a"));
        let b = interner.intern_account(Address::derived("b"));
        let a2 = interner.intern_account(Address::derived("a"));
        assert_eq!(a, a2);
        assert_eq!((a.0, b.0), (0, 1), "ids are dense in first-seen order");
        assert_eq!(interner.account_count(), 2);
        assert_eq!(interner.address(a), Address::derived("a"));
        assert_eq!(interner.account_id(Address::derived("b")), Some(b));
        assert_eq!(interner.account_id(Address::derived("c")), None);
    }

    #[test]
    fn nft_and_market_spaces_are_independent() {
        let mut interner = Interner::new();
        let contract = Address::derived("collection");
        let key = interner.intern_nft(NftId::new(contract, 7));
        let market = interner.intern_market(Address::derived("opensea"));
        assert_eq!(key.0, 0);
        assert_eq!(market.0, 0);
        assert_eq!(interner.nft(key), NftId::new(contract, 7));
        assert_eq!(interner.market(market), Address::derived("opensea"));
        assert_eq!(interner.nft_key(NftId::new(contract, 8)), None);
        assert!(interner.resident_bytes() > 0);
    }

    #[test]
    fn speculative_same_address_first_seen_in_two_shards_reconciles_to_one_id() {
        // Two shards race to claim the same brand-new address: each gets the
        // same provisional slot (they share the snapshot base and neither
        // knows of the other), and reconciliation in shard order must settle
        // both on the single id the first shard's contender list wins.
        let mut interner = Interner::new();
        interner.intern_account(Address::derived("settled"));
        let snapshot = interner.snapshot();
        let base = snapshot.account_base();
        let mut shard_a = SpeculativeInterner::new(snapshot);
        let mut shard_b = SpeculativeInterner::new(snapshot);
        let contested = Address::derived("contested");
        let slot_a = shard_a.intern_account(contested);
        let only_b = shard_b.intern_account(Address::derived("only-in-b"));
        let slot_b = shard_b.intern_account(contested);
        assert_eq!(slot_a, base);
        assert_eq!(slot_b, base + 1, "b saw its own entity first");

        let contenders_a = shard_a.into_contenders();
        let contenders_b = shard_b.into_contenders();
        let remap_a = interner.reconcile_accounts(&contenders_a.accounts);
        let remap_b = interner.reconcile_accounts(&contenders_b.accounts);
        let settled_a = remap_a[(slot_a - base) as usize];
        let settled_b = remap_b[(slot_b - base) as usize];
        assert_eq!(settled_a, settled_b, "both shards settle on one dense id");
        assert_eq!(settled_a.0, 1, "first unsettled id after the snapshot");
        assert_eq!(remap_b[(only_b - base) as usize].0, 2);
        assert_eq!(interner.account_count(), 3, "contested address interned once");
    }

    #[test]
    fn speculative_shard_with_zero_new_ids_contributes_nothing() {
        let mut interner = Interner::new();
        let known_account = interner.intern_account(Address::derived("a"));
        let known_nft = interner.intern_nft(NftId::new(Address::derived("c"), 1));
        let known_market = interner.intern_market(Address::derived("m"));
        let before = interner.clone();
        let snapshot = interner.snapshot();
        let mut shard = SpeculativeInterner::new(snapshot);
        assert_eq!(shard.intern_account(Address::derived("a")), known_account.0);
        assert_eq!(shard.intern_nft(NftId::new(Address::derived("c"), 1)), known_nft.0);
        assert_eq!(shard.intern_market(Address::derived("m")), known_market.0);
        let contenders = shard.into_contenders();
        assert!(contenders.is_empty());
        assert!(interner.reconcile_accounts(&contenders.accounts).is_empty());
        assert!(interner.reconcile_nfts(&contenders.nfts).is_empty());
        assert!(interner.reconcile_markets(&contenders.markets).is_empty());
        assert_eq!(interner, before, "reconciling an empty shard is a no-op");
    }

    #[test]
    fn speculative_slots_are_per_space_and_repeat_stable() {
        let mut interner = Interner::new();
        let snapshot = interner.snapshot();
        let mut shard = SpeculativeInterner::new(snapshot);
        let account = shard.intern_account(Address::derived("x"));
        let nft = shard.intern_nft(NftId::new(Address::derived("c"), 9));
        let market = shard.intern_market(Address::derived("x"));
        // Same address in two spaces gets independent slots; repeats return
        // the first slot.
        assert_eq!((account, nft, market), (0, 0, 0));
        assert_eq!(shard.intern_account(Address::derived("x")), account);
        assert_eq!(shard.intern_market(Address::derived("x")), market);
        let contenders = shard.into_contenders();
        assert_eq!(contenders.accounts.len(), 1);
        assert_eq!(contenders.nfts.len(), 1);
        assert_eq!(contenders.markets.len(), 1);
        let _ = interner.reconcile_accounts(&contenders.accounts);
        assert_eq!(interner.account_count(), 1);
    }

    #[test]
    fn nft_keys_sorted_by_id_orders_by_identity_not_first_seen() {
        let mut interner = Interner::new();
        let contract = Address::derived("c");
        let late = interner.intern_nft(NftId::new(contract, 9));
        let early = interner.intern_nft(NftId::new(contract, 1));
        assert_eq!(interner.nft_keys_sorted_by_id(), vec![early, late]);
    }

    #[test]
    fn bitset_inserts_and_iterates_in_order() {
        let mut set = BitSet::with_capacity(10);
        assert!(set.insert(130));
        assert!(set.insert(2));
        assert!(!set.insert(130), "double insert reports false");
        assert!(set.contains(2) && set.contains(130) && !set.contains(64));
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![2, 130]);
        set.clear();
        assert!(set.is_empty() && !set.contains(2));
        let from: BitSet = [5usize, 1, 5].into_iter().collect();
        assert_eq!(from.len(), 2);
    }

    #[test]
    fn equality_is_set_semantic_not_representational() {
        assert_eq!(BitSet::new(), BitSet::with_capacity(640), "pre-sizing is invisible");
        let mut cleared = BitSet::new();
        cleared.insert(500);
        cleared.clear();
        assert_eq!(cleared, BitSet::new(), "clearing is invisible");
        let mut a = BitSet::with_capacity(1000);
        let mut b = BitSet::new();
        a.insert(3);
        b.insert(3);
        assert_eq!(a, b);
        b.insert(70);
        assert_ne!(a, b);
    }

    #[test]
    fn postings_group_by_key_and_keep_input_order() {
        let postings = Postings::from_pairs(vec![(3u32, 30), (1, 10), (3, 31), (1, 11), (3, 32)]);
        assert_eq!(postings.keys(), 4);
        assert_eq!(postings.len(), 5);
        assert!(!postings.is_empty());
        assert_eq!(postings.get(0), [0i32; 0]);
        assert_eq!(postings.get(1), [10, 11]);
        assert_eq!(postings.get(2), [0i32; 0]);
        assert_eq!(postings.get(3), [30, 31, 32]);
        assert_eq!(postings.get(4), [0i32; 0], "out of range is empty, not a panic");
        let collected: Vec<(u32, usize)> =
            postings.iter().map(|(key, values)| (key, values.len())).collect();
        assert_eq!(collected, vec![(0, 0), (1, 2), (2, 0), (3, 3)]);
    }

    #[test]
    fn empty_postings_have_no_keys() {
        let postings: Postings<u8> = Postings::new();
        assert_eq!(postings.keys(), 0);
        assert!(postings.is_empty());
        assert_eq!(postings.get(0), [0u8; 0]);
        assert_eq!(postings, Postings::from_pairs(Vec::new()));
    }

    proptest::proptest! {
        #[test]
        fn postings_match_reference_map(
            pairs in proptest::collection::vec((0u32..40, 0u64..1000), 0..80)
        ) {
            let postings = Postings::from_pairs(pairs.clone());
            let mut reference: std::collections::BTreeMap<u32, Vec<u64>> =
                std::collections::BTreeMap::new();
            for (key, value) in &pairs {
                reference.entry(*key).or_default().push(*value);
            }
            for key in 0u32..45 {
                let expected = reference.get(&key).map(|v| v.as_slice()).unwrap_or(&[]);
                proptest::prop_assert_eq!(postings.get(key), expected);
            }
            proptest::prop_assert_eq!(postings.len(), pairs.len());
        }

        #[test]
        fn intern_resolve_round_trips(seeds in proptest::collection::vec(0u64..500, 1..60)) {
            let mut interner = Interner::new();
            let mut ids = Vec::new();
            for seed in &seeds {
                let address = Address::derived(&format!("acct-{seed}"));
                ids.push((address, interner.intern_account(address)));
            }
            // Round trip and density.
            for (address, id) in &ids {
                proptest::prop_assert_eq!(interner.address(*id), *address);
                proptest::prop_assert_eq!(interner.account_id(*address), Some(*id));
            }
            let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
            proptest::prop_assert_eq!(interner.account_count(), distinct.len());
            let max_id = ids.iter().map(|(_, id)| id.0).max().unwrap();
            proptest::prop_assert_eq!(max_id as usize + 1, distinct.len(), "ids are dense");
        }

        #[test]
        fn bitset_matches_reference_hashset(
            inserts in proptest::collection::vec(0usize..500, 0..100)
        ) {
            let mut set = BitSet::new();
            let mut reference = std::collections::BTreeSet::new();
            for index in &inserts {
                proptest::prop_assert_eq!(set.insert(*index), reference.insert(*index));
            }
            proptest::prop_assert_eq!(set.len(), reference.len());
            proptest::prop_assert_eq!(
                set.iter().collect::<Vec<_>>(),
                reference.iter().copied().collect::<Vec<_>>()
            );
        }
    }
}
