//! # ids — dense interned identifiers for the analysis pipeline
//!
//! The paper's pipeline is join-heavy: every stage used to re-hash 20-byte
//! [`Address`] and 28-byte [`NftId`] keys through `HashMap`s on every edge
//! touch. This crate provides the interning layer that removes those hashes
//! from the hot paths: each entity is mapped **once, at ingest**, to a dense
//! `u32` id, and every downstream stage indexes plain `Vec`s with it. The
//! dense ids resolve back to real addresses exactly once, at the report
//! boundary.
//!
//! Three id spaces exist, one per entity kind:
//!
//! * [`AccountId`] — transfer senders and recipients (the null address
//!   included, since mints and burns use it),
//! * [`NftKey`] — `(contract, token id)` pairs with at least one transfer,
//! * [`MarketId`] — marketplace contracts attributed to at least one sale.
//!
//! The [`Interner`] owning all three is **append-only and stream-stable**:
//! ids are assigned in first-seen order, an id is never reassigned, and
//! feeding the same entries epoch by epoch produces the same assignment as a
//! one-shot pass — which is what lets the streaming subsystem share dense
//! artifacts with the batch pipeline bit for bit.
//!
//! [`BitSet`] is the membership structure the dense stages use in place of
//! `HashSet<Address>`: constant-time insert/contains over small integer ids.
//! [`Postings`] is its lookup-side sibling: a compressed-sparse-row table
//! mapping each dense id to a contiguous slice of values, used by the
//! serving layer's secondary indexes (account → suspect activities).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ethsim::fxhash::FxHashMap;
use ethsim::Address;
use serde::{Deserialize, Serialize};
use tokens::NftId;

/// Dense id of an account, assigned in first-seen order at ingest.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AccountId(pub u32);

impl AccountId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of an NFT, assigned in first-seen order at ingest.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NftKey(pub u32);

impl NftKey {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of a marketplace contract, assigned in first-seen order.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MarketId(pub u32);

impl MarketId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The append-only entity interner: `Address → AccountId`,
/// `NftId → NftKey`, marketplace `Address → MarketId`, plus the reverse
/// tables for resolution at the report boundary.
///
/// # Examples
///
/// ```
/// use ethsim::Address;
/// use ids::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern_account(Address::derived("alice"));
/// let b = interner.intern_account(Address::derived("bob"));
/// assert_ne!(a, b);
/// assert_eq!(interner.intern_account(Address::derived("alice")), a);
/// assert_eq!(interner.address(a), Address::derived("alice"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Interner {
    accounts: Vec<Address>,
    account_ids: FxHashMap<Address, AccountId>,
    nfts: Vec<NftId>,
    nft_keys: FxHashMap<NftId, NftKey>,
    markets: Vec<Address>,
    market_ids: FxHashMap<Address, MarketId>,
}

impl Interner {
    /// An empty interner: no entity has an id yet.
    pub fn new() -> Self {
        Interner::default()
    }

    // -- accounts ----------------------------------------------------------

    /// The id of `address`, assigning the next dense id on first sight.
    pub fn intern_account(&mut self, address: Address) -> AccountId {
        if let Some(&id) = self.account_ids.get(&address) {
            return id;
        }
        let id = AccountId(u32::try_from(self.accounts.len()).expect("account space fits u32"));
        self.account_ids.insert(address, id);
        self.accounts.push(address);
        id
    }

    /// The id of an already-interned account.
    pub fn account_id(&self, address: Address) -> Option<AccountId> {
        self.account_ids.get(&address).copied()
    }

    /// Resolve an account id back to its address.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this interner.
    #[inline]
    pub fn address(&self, id: AccountId) -> Address {
        self.accounts[id.index()]
    }

    /// Number of interned accounts (ids are `0..account_count`).
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// The addresses of all interned accounts, in id order.
    pub fn accounts(&self) -> &[Address] {
        &self.accounts
    }

    // -- NFTs --------------------------------------------------------------

    /// The key of `nft`, assigning the next dense key on first sight.
    pub fn intern_nft(&mut self, nft: NftId) -> NftKey {
        if let Some(&key) = self.nft_keys.get(&nft) {
            return key;
        }
        let key = NftKey(u32::try_from(self.nfts.len()).expect("nft space fits u32"));
        self.nft_keys.insert(nft, key);
        self.nfts.push(nft);
        key
    }

    /// The key of an already-interned NFT.
    pub fn nft_key(&self, nft: NftId) -> Option<NftKey> {
        self.nft_keys.get(&nft).copied()
    }

    /// Resolve an NFT key back to its `(contract, token id)` identity.
    ///
    /// # Panics
    ///
    /// Panics if the key was not produced by this interner.
    #[inline]
    pub fn nft(&self, key: NftKey) -> NftId {
        self.nfts[key.index()]
    }

    /// Number of interned NFTs (keys are `0..nft_count`).
    pub fn nft_count(&self) -> usize {
        self.nfts.len()
    }

    /// The identities of all interned NFTs, in key order.
    pub fn nfts(&self) -> &[NftId] {
        &self.nfts
    }

    /// All NFT keys ordered by their resolved `NftId` — the fixed iteration
    /// order every float accumulation over NFTs uses, so sums never depend on
    /// first-seen (ingest) order.
    pub fn nft_keys_sorted_by_id(&self) -> Vec<NftKey> {
        let mut keys: Vec<NftKey> = (0..self.nfts.len() as u32).map(NftKey).collect();
        keys.sort_by_key(|key| self.nfts[key.index()]);
        keys
    }

    // -- marketplaces ------------------------------------------------------

    /// The id of marketplace `contract`, assigning the next dense id on
    /// first sight.
    pub fn intern_market(&mut self, contract: Address) -> MarketId {
        if let Some(&id) = self.market_ids.get(&contract) {
            return id;
        }
        let id = MarketId(u32::try_from(self.markets.len()).expect("market space fits u32"));
        self.market_ids.insert(contract, id);
        self.markets.push(contract);
        id
    }

    /// The id of an already-interned marketplace contract.
    pub fn market_id(&self, contract: Address) -> Option<MarketId> {
        self.market_ids.get(&contract).copied()
    }

    /// Resolve a marketplace id back to its contract address.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this interner.
    #[inline]
    pub fn market(&self, id: MarketId) -> Address {
        self.markets[id.index()]
    }

    /// Number of interned marketplace contracts.
    pub fn market_count(&self) -> usize {
        self.markets.len()
    }

    /// Approximate resident bytes of the interner's tables (for the
    /// bytes-per-transfer accounting in the perf trajectory).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.accounts.capacity() * size_of::<Address>()
            + self.account_ids.capacity() * (size_of::<Address>() + size_of::<AccountId>())
            + self.nfts.capacity() * size_of::<NftId>()
            + self.nft_keys.capacity() * (size_of::<NftId>() + size_of::<NftKey>())
            + self.markets.capacity() * size_of::<Address>()
            + self.market_ids.capacity() * (size_of::<Address>() + size_of::<MarketId>())
    }
}

/// A growable bitset over dense ids: the constant-time membership structure
/// the analysis stages use in place of `HashSet<Address>`.
///
/// # Examples
///
/// ```
/// use ids::{AccountId, BitSet};
///
/// let mut set = BitSet::new();
/// set.insert(AccountId(3).index());
/// assert!(set.contains(AccountId(3).index()));
/// assert!(!set.contains(AccountId(4).index()));
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

/// Set-semantic equality: two sets are equal iff they contain the same ids,
/// regardless of pre-sized or cleared-but-still-allocated trailing blocks
/// (a derived `PartialEq` on `blocks` would make `with_capacity(64)`
/// compare unequal to `new()` though both are empty).
impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let (short, long) =
            if self.blocks.len() <= other.blocks.len() { (self, other) } else { (other, self) };
        short.blocks == long.blocks[..short.blocks.len()]
            && long.blocks[short.blocks.len()..].iter().all(|&block| block == 0)
    }
}

impl Eq for BitSet {}

impl BitSet {
    /// An empty set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// An empty set pre-sized for ids `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet { blocks: vec![0; capacity.div_ceil(64)], len: 0 }
    }

    /// Insert an id; returns whether it was newly inserted.
    pub fn insert(&mut self, index: usize) -> bool {
        let block = index / 64;
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << (index % 64);
        if self.blocks[block] & mask != 0 {
            return false;
        }
        self.blocks[block] |= mask;
        self.len += 1;
        true
    }

    /// Whether the id is in the set.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.blocks.get(index / 64).is_some_and(|block| block & (1u64 << (index % 64)) != 0)
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every id, keeping the allocation.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
        self.len = 0;
    }

    /// Iterate the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(block_index, &block)| {
            let mut bits = block;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(block_index * 64 + bit)
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut set = BitSet::new();
        for index in iter {
            set.insert(index);
        }
        set
    }
}

/// A compressed-sparse-row postings table over dense `u32` keys: for each
/// key, a contiguous slice of values, stored as one values array plus an
/// offsets array — the secondary-index building block the serving layer uses
/// for account → suspect-activity lookups.
///
/// Keys are dense (`0..keys()`); a key beyond the largest seen simply has an
/// empty postings list. Construction sorts stably by key, so values with the
/// same key keep their input order.
///
/// # Examples
///
/// ```
/// use ids::Postings;
///
/// let postings = Postings::from_pairs(vec![(2u32, "c"), (0, "a"), (2, "b")]);
/// assert_eq!(postings.get(0), ["a"]);
/// assert_eq!(postings.get(1), [""; 0]);
/// assert_eq!(postings.get(2), ["c", "b"], "input order is kept within a key");
/// assert_eq!(postings.get(99), [""; 0], "out-of-range keys are empty");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Postings<V> {
    /// `offsets[k]..offsets[k + 1]` is key `k`'s slice of `values`.
    offsets: Vec<u32>,
    values: Vec<V>,
}

impl<V> Default for Postings<V> {
    fn default() -> Self {
        Postings { offsets: vec![0], values: Vec::new() }
    }
}

impl<V> Postings<V> {
    /// An empty table: every key has an empty postings list.
    pub fn new() -> Self {
        Postings::default()
    }

    /// Build the table from `(key, value)` pairs, grouping by key. The sort
    /// is stable: values sharing a key keep the order they were pushed in.
    pub fn from_pairs(mut pairs: Vec<(u32, V)>) -> Self {
        if pairs.is_empty() {
            return Postings::default();
        }
        pairs.sort_by_key(|(key, _)| *key);
        let keys = pairs.last().map(|(key, _)| *key as usize + 1).unwrap_or(0);
        let mut offsets = Vec::with_capacity(keys + 1);
        offsets.push(0u32);
        let mut values = Vec::with_capacity(pairs.len());
        for (key, value) in pairs {
            while offsets.len() <= key as usize {
                offsets.push(values.len() as u32);
            }
            values.push(value);
        }
        offsets.push(values.len() as u32);
        Postings { offsets, values }
    }

    /// Number of keys with an allocated slot (`0..keys()`; trailing keys
    /// without postings are not represented).
    pub fn keys(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The postings list of one key; empty for keys never seen.
    pub fn get(&self, key: u32) -> &[V] {
        let key = key as usize;
        if key >= self.keys() {
            return &[];
        }
        &self.values[self.offsets[key] as usize..self.offsets[key + 1] as usize]
    }

    /// Total number of stored values across all keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no value is stored at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(key, postings)` over every allocated key, ascending, empty
    /// lists included.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[V])> + '_ {
        (0..self.keys() as u32).map(move |key| (key, self.get(key)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut interner = Interner::new();
        let a = interner.intern_account(Address::derived("a"));
        let b = interner.intern_account(Address::derived("b"));
        let a2 = interner.intern_account(Address::derived("a"));
        assert_eq!(a, a2);
        assert_eq!((a.0, b.0), (0, 1), "ids are dense in first-seen order");
        assert_eq!(interner.account_count(), 2);
        assert_eq!(interner.address(a), Address::derived("a"));
        assert_eq!(interner.account_id(Address::derived("b")), Some(b));
        assert_eq!(interner.account_id(Address::derived("c")), None);
    }

    #[test]
    fn nft_and_market_spaces_are_independent() {
        let mut interner = Interner::new();
        let contract = Address::derived("collection");
        let key = interner.intern_nft(NftId::new(contract, 7));
        let market = interner.intern_market(Address::derived("opensea"));
        assert_eq!(key.0, 0);
        assert_eq!(market.0, 0);
        assert_eq!(interner.nft(key), NftId::new(contract, 7));
        assert_eq!(interner.market(market), Address::derived("opensea"));
        assert_eq!(interner.nft_key(NftId::new(contract, 8)), None);
        assert!(interner.resident_bytes() > 0);
    }

    #[test]
    fn nft_keys_sorted_by_id_orders_by_identity_not_first_seen() {
        let mut interner = Interner::new();
        let contract = Address::derived("c");
        let late = interner.intern_nft(NftId::new(contract, 9));
        let early = interner.intern_nft(NftId::new(contract, 1));
        assert_eq!(interner.nft_keys_sorted_by_id(), vec![early, late]);
    }

    #[test]
    fn bitset_inserts_and_iterates_in_order() {
        let mut set = BitSet::with_capacity(10);
        assert!(set.insert(130));
        assert!(set.insert(2));
        assert!(!set.insert(130), "double insert reports false");
        assert!(set.contains(2) && set.contains(130) && !set.contains(64));
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![2, 130]);
        set.clear();
        assert!(set.is_empty() && !set.contains(2));
        let from: BitSet = [5usize, 1, 5].into_iter().collect();
        assert_eq!(from.len(), 2);
    }

    #[test]
    fn equality_is_set_semantic_not_representational() {
        assert_eq!(BitSet::new(), BitSet::with_capacity(640), "pre-sizing is invisible");
        let mut cleared = BitSet::new();
        cleared.insert(500);
        cleared.clear();
        assert_eq!(cleared, BitSet::new(), "clearing is invisible");
        let mut a = BitSet::with_capacity(1000);
        let mut b = BitSet::new();
        a.insert(3);
        b.insert(3);
        assert_eq!(a, b);
        b.insert(70);
        assert_ne!(a, b);
    }

    #[test]
    fn postings_group_by_key_and_keep_input_order() {
        let postings = Postings::from_pairs(vec![(3u32, 30), (1, 10), (3, 31), (1, 11), (3, 32)]);
        assert_eq!(postings.keys(), 4);
        assert_eq!(postings.len(), 5);
        assert!(!postings.is_empty());
        assert_eq!(postings.get(0), [0i32; 0]);
        assert_eq!(postings.get(1), [10, 11]);
        assert_eq!(postings.get(2), [0i32; 0]);
        assert_eq!(postings.get(3), [30, 31, 32]);
        assert_eq!(postings.get(4), [0i32; 0], "out of range is empty, not a panic");
        let collected: Vec<(u32, usize)> =
            postings.iter().map(|(key, values)| (key, values.len())).collect();
        assert_eq!(collected, vec![(0, 0), (1, 2), (2, 0), (3, 3)]);
    }

    #[test]
    fn empty_postings_have_no_keys() {
        let postings: Postings<u8> = Postings::new();
        assert_eq!(postings.keys(), 0);
        assert!(postings.is_empty());
        assert_eq!(postings.get(0), [0u8; 0]);
        assert_eq!(postings, Postings::from_pairs(Vec::new()));
    }

    proptest::proptest! {
        #[test]
        fn postings_match_reference_map(
            pairs in proptest::collection::vec((0u32..40, 0u64..1000), 0..80)
        ) {
            let postings = Postings::from_pairs(pairs.clone());
            let mut reference: std::collections::BTreeMap<u32, Vec<u64>> =
                std::collections::BTreeMap::new();
            for (key, value) in &pairs {
                reference.entry(*key).or_default().push(*value);
            }
            for key in 0u32..45 {
                let expected = reference.get(&key).map(|v| v.as_slice()).unwrap_or(&[]);
                proptest::prop_assert_eq!(postings.get(key), expected);
            }
            proptest::prop_assert_eq!(postings.len(), pairs.len());
        }

        #[test]
        fn intern_resolve_round_trips(seeds in proptest::collection::vec(0u64..500, 1..60)) {
            let mut interner = Interner::new();
            let mut ids = Vec::new();
            for seed in &seeds {
                let address = Address::derived(&format!("acct-{seed}"));
                ids.push((address, interner.intern_account(address)));
            }
            // Round trip and density.
            for (address, id) in &ids {
                proptest::prop_assert_eq!(interner.address(*id), *address);
                proptest::prop_assert_eq!(interner.account_id(*address), Some(*id));
            }
            let distinct: std::collections::HashSet<u64> = seeds.iter().copied().collect();
            proptest::prop_assert_eq!(interner.account_count(), distinct.len());
            let max_id = ids.iter().map(|(_, id)| id.0).max().unwrap();
            proptest::prop_assert_eq!(max_id as usize + 1, distinct.len(), "ids are dense");
        }

        #[test]
        fn bitset_matches_reference_hashset(
            inserts in proptest::collection::vec(0usize..500, 0..100)
        ) {
            let mut set = BitSet::new();
            let mut reference = std::collections::BTreeSet::new();
            for index in &inserts {
                proptest::prop_assert_eq!(set.insert(*index), reference.insert(*index));
            }
            proptest::prop_assert_eq!(set.len(), reference.len());
            proptest::prop_assert_eq!(
                set.iter().collect::<Vec<_>>(),
                reference.iter().copied().collect::<Vec<_>>()
            );
        }
    }
}
