//! Three-phase parallel ingestion: the §III-A dataset build split into a
//! block-sharded **decode** phase, a serial **reconcile** phase, and a
//! parallel **splice** phase.
//!
//! Earlier revisions decoded shards in parallel but funnelled every transfer
//! through a serial probe-and-commit loop — interning and column appends were
//! the pipeline's last serial stage. This module parallelizes the commit too:
//!
//! ```text
//!   blocks [from, to]
//!   ───────────────► shard_blocks ───┬───────┬─────────┐
//!                                    ▼       ▼         ▼
//!   ┌── phase 1: decode (parallel, read-only) ──────────────────────────┐
//!   │ per shard: borrow logs via for_each_log_in_blocks, probe ERC-721  │
//!   │ compliance (pure code inspection; shared verdicts read-only, new  │
//!   │ verdicts collected per shard), resolve the payment once per tx,   │
//!   │ and intern speculatively against an Interner snapshot: known      │
//!   │ entities keep their ids, new ones get provisional slots           │
//!   │ `base + i` and a contender list → SpecRow batches                 │
//!   └───────────────────────────┬───────────────────────────────────────┘
//!                               ▼  (shards in block order)
//!   ┌── phase 2: reconcile (serial, cheap) ─────────────────────────────┐
//!   │ merge probe verdicts into the shared sets; intern each shard's    │
//!   │ contenders in shard × first-encounter order — idempotent, so the  │
//!   │ dense ids land exactly as a serial first-occurrence scan would —  │
//!   │ yielding one slot→id remap table per shard                        │
//!   └───────────────────────────┬───────────────────────────────────────┘
//!                               ▼
//!   ┌── phase 3: splice (parallel rewrite, ordered concat) ─────────────┐
//!   │ per shard: rewrite provisional slots through the remap into a     │
//!   │ ColumnSegment; then concatenate the segments into TransferColumns │
//!   │ in shard order — equivalent to push_transfer row by row           │
//!   └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Phase 2 is the only serial work left and it is proportional to the number
//! of *new* entities and contracts, not to the transfer count. Because the
//! shards partition the block range contiguously, compliance probes are pure
//! functions of contract code, and reconciliation walks shards in block
//! order, the verdict sets, interner tables and columns are bit-identical to
//! the serial scan at any thread count and epoch slicing (pinned by
//! `tests/parallel_ingest.rs` and the golden report). When the executor is
//! single-threaded or the range yields one shard, the legacy two-phase
//! serial commit runs instead — same result, none of the speculation
//! overhead — and that fallback is itself pinned against the parallel path.

use ethsim::fxhash::{FxHashMap, FxHashSet};
use ethsim::{Address, BlockNumber, BlockSpan, Chain, Timestamp, Transaction, TxHash, Wei};
use ids::{AccountId, InternerSnapshot, MarketId, NewEntities, NftKey, SpeculativeInterner};
use marketplace::MarketplaceDirectory;
use tokens::NftId;

use crate::columns::{ColumnSegment, TransferRow};
use crate::dataset::{AppliedEntries, Dataset, NftTransfer};
use crate::parallel::Executor;

/// The payment context of one transaction, resolved once and shared by every
/// ERC-721 log the transaction carries: the attached ETH value, the
/// marketplace attribution of the call target, and — only when no ETH was
/// attached — the decoded ERC-20 transfer list the per-buyer price sums
/// over.
pub(crate) struct TxPayment {
    /// The transaction this context belongs to.
    pub tx_hash: TxHash,
    /// The marketplace the transaction interacted with, if any.
    pub marketplace: Option<Address>,
    /// ETH attached to the transaction (the price when nonzero).
    value: Wei,
    /// `(payer, amount)` of each ERC-20 transfer log, decoded once; empty
    /// when `value` is nonzero (never consulted then).
    erc20: Vec<(Address, u128)>,
}

impl TxPayment {
    /// Resolve the payment context of `tx`.
    pub fn resolve(tx: &Transaction, directory: &MarketplaceDirectory) -> TxPayment {
        let erc20 = if tx.value.is_zero() {
            tx.logs
                .iter()
                .filter_map(|log| log.decode_erc20_transfer())
                .map(|transfer| (transfer.from, transfer.amount))
                .collect()
        } else {
            Vec::new()
        };
        TxPayment {
            tx_hash: tx.hash,
            marketplace: tx.to.filter(|to| directory.by_contract(*to).is_some()),
            value: tx.value,
            erc20,
        }
    }

    /// Amount paid by `buyer`: the ETH attached to the transaction, or —
    /// when the payment went through an ERC-20 token (e.g. WETH bids) — the
    /// sum the buyer sent in that token's transfer logs.
    pub fn price_paid_by(&self, buyer: Address) -> Wei {
        if !self.value.is_zero() {
            return self.value;
        }
        Wei::new(
            self.erc20.iter().filter(|(payer, _)| *payer == buyer).map(|(_, amount)| *amount).sum(),
        )
    }
}

/// What one decode shard produced, in execution order: the matching-log
/// count, every decoded transfer (compliance still undecided — verdicts are
/// a commit-phase concern), and the emitting contracts as first-seen runs.
/// This is the legacy (serial-commit) batch shape, kept for the
/// single-thread fallback.
struct ShardBatch {
    raw_events: usize,
    transfers: Vec<NftTransfer>,
    /// Contracts of the shard's matching logs, memoized per consecutive run
    /// (so the list is short, but every contract that emitted a matching log
    /// appears at least once — decode failures included, which the verdict
    /// sets must cover just as the serial path's did).
    contracts: Vec<Address>,
}

/// One compliant transfer in speculative form: entity fields are slots from
/// a [`SpeculativeInterner`] — settled ids below the snapshot base,
/// provisional contender slots at or above it.
struct SpecRow {
    nft: u32,
    from: u32,
    to: u32,
    tx_hash: TxHash,
    block: BlockNumber,
    timestamp: Timestamp,
    price: Wei,
    marketplace: Option<u32>,
}

/// What one speculative decode shard produced: compliant rows with
/// provisional slots, the shard's new-entity contender lists, and the
/// compliance verdicts it probed for contracts undecided before this call.
struct SpecBatch {
    raw_events: usize,
    rows: Vec<SpecRow>,
    contenders: NewEntities,
    /// `(contract, compliant)` in first-seen order; probes are pure code
    /// inspection, so two shards probing the same contract agree.
    probed: Vec<(Address, bool)>,
}

/// One shard's slot→id tables from reconciliation: contender slot `base + i`
/// settles to entry `i`; slots below the base already are settled ids.
struct ShardRemap {
    account_base: u32,
    accounts: Vec<AccountId>,
    nft_base: u32,
    nfts: Vec<NftKey>,
    market_base: u32,
    markets: Vec<MarketId>,
}

impl ShardRemap {
    #[inline]
    fn settle_account(&self, slot: u32) -> AccountId {
        if slot < self.account_base {
            AccountId(slot)
        } else {
            self.accounts[(slot - self.account_base) as usize]
        }
    }

    #[inline]
    fn settle_nft(&self, slot: u32) -> NftKey {
        if slot < self.nft_base {
            NftKey(slot)
        } else {
            self.nfts[(slot - self.nft_base) as usize]
        }
    }

    #[inline]
    fn settle_market(&self, slot: u32) -> MarketId {
        if slot < self.market_base {
            MarketId(slot)
        } else {
            self.markets[(slot - self.market_base) as usize]
        }
    }
}

/// Per-phase instrumentation of one [`Dataset::ingest_blocks_instrumented`]
/// call — the breakdown the ingest-throughput bench records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestMetrics {
    /// Wall time of the parallel decode fan-out, nanoseconds.
    pub decode_ns: u64,
    /// Wall time of the whole commit (reconcile + splice on the parallel
    /// path; the serial probe-and-commit on the fallback), nanoseconds.
    pub commit_ns: u64,
    /// Wall time of the commit's serial fraction, nanoseconds: the
    /// reconciliation pass on the parallel path, the entire commit on the
    /// single-shard fallback (where all of it is serial).
    pub reconcile_ns: u64,
    /// Decode shards the block range was split into.
    pub shards: usize,
    /// Threads the decode fan-out actually used.
    pub threads: usize,
    /// ERC-721-shaped logs scanned (before the compliance filter).
    pub raw_events: usize,
    /// Compliant transfers committed.
    pub appended: usize,
}

impl IngestMetrics {
    /// Total wall time across all phases, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.decode_ns + self.commit_ns
    }
}

impl Dataset {
    /// Ingest the ERC-721 transfers of blocks `[from, to]` through the
    /// three-phase pipeline: parallel block-sharded decode with speculative
    /// interning, serial reconcile, parallel splice (see the module docs for
    /// the shape).
    ///
    /// Successive calls must cover disjoint, non-decreasing block ranges (as
    /// a block cursor produces them) — the same contract as
    /// [`Dataset::apply_entries`], to which this is bit-identical over the
    /// same blocks, at any thread count.
    pub fn ingest_blocks(
        &mut self,
        chain: &Chain,
        directory: &MarketplaceDirectory,
        from: BlockNumber,
        to: BlockNumber,
        executor: &Executor,
    ) -> AppliedEntries {
        self.ingest_blocks_instrumented(chain, directory, from, to, executor).0
    }

    /// [`Dataset::ingest_blocks`] with per-phase timing, for the
    /// ingest-throughput bench and the pipeline's stage metrics.
    pub fn ingest_blocks_instrumented(
        &mut self,
        chain: &Chain,
        directory: &MarketplaceDirectory,
        from: BlockNumber,
        to: BlockNumber,
        executor: &Executor,
    ) -> (AppliedEntries, IngestMetrics) {
        let mut metrics = IngestMetrics::default();
        let spans = chain.shard_blocks(from, to, executor.threads());
        metrics.shards = spans.len();
        metrics.threads = executor.threads_for(spans.len());
        let entities_before = (
            self.interner.account_count(),
            self.interner.nft_count(),
            self.interner.market_count(),
        );
        let result = if metrics.threads <= 1 {
            self.ingest_serial_commit(chain, directory, &spans, executor, &mut metrics)
        } else {
            self.ingest_parallel_commit(chain, directory, &spans, executor, &mut metrics)
        };
        self.record_ingest_metrics(&result.1, entities_before);
        result
    }

    /// Publish one ingest call's phase timings and entity deltas into the
    /// process-wide metrics registry (`ingest.*` — see the README's metric
    /// catalog). Purely observational: nothing here feeds back into results.
    fn record_ingest_metrics(
        &self,
        metrics: &IngestMetrics,
        entities_before: (usize, usize, usize),
    ) {
        if !obs::recording() {
            return;
        }
        obs::counter!("ingest.calls");
        obs::counter!("ingest.raw_events", metrics.raw_events as u64);
        obs::counter!("ingest.transfers", metrics.appended as u64);
        obs::counter!("ingest.shards", metrics.shards as u64);
        obs::histogram!("ingest.decode_ns", metrics.decode_ns);
        obs::histogram!("ingest.reconcile_ns", metrics.reconcile_ns);
        obs::histogram!("ingest.splice_ns", metrics.commit_ns - metrics.reconcile_ns);
        let (accounts, nfts, markets) = entities_before;
        obs::counter!("ingest.new_accounts", (self.interner.account_count() - accounts) as u64);
        obs::counter!("ingest.new_nfts", (self.interner.nft_count() - nfts) as u64);
        obs::counter!("ingest.new_markets", (self.interner.market_count() - markets) as u64);
    }

    /// The legacy two-phase path: parallel decode into [`NftTransfer`]
    /// batches, then one serial probe-and-commit loop. Runs when the
    /// executor is single-threaded or the range yields a single shard —
    /// the speculative machinery would only add overhead there.
    fn ingest_serial_commit(
        &mut self,
        chain: &Chain,
        directory: &MarketplaceDirectory,
        spans: &[BlockSpan],
        executor: &Executor,
        metrics: &mut IngestMetrics,
    ) -> (AppliedEntries, IngestMetrics) {
        let started = std::time::Instant::now();
        let mut decode_trace = obs::trace::span("ingest.decode");
        decode_trace.attr("shards", spans.len() as u64);
        let non_compliant = &self.non_compliant_contracts;
        let batches =
            executor.map(spans, |span| decode_span(chain, directory, non_compliant, *span));
        decode_trace.finish();
        metrics.decode_ns = elapsed_ns(started);

        // Ordered probe-and-commit: shards are contiguous block ranges in
        // ascending order, so probing each shard's contracts and appending
        // its transfers in shard order reproduces the serial probe-and-push
        // sequence — and with it the verdict sets and the id assignment —
        // exactly.
        let started = std::time::Instant::now();
        // The serial path folds reconcile and splice into one commit loop;
        // trace it as the splice it replaces, flagged `serial`.
        let mut splice_trace = obs::trace::span("ingest.splice");
        splice_trace.attr("serial", 1);
        let mut applied = AppliedEntries::default();
        let total: usize = batches.iter().map(|batch| batch.transfers.len()).sum();
        self.columns.reserve(total);
        applied.dirty.reserve(total);
        // NFT logs cluster by contract, so one memoized verdict covers whole
        // runs of transfers without touching the sets.
        let mut verdict: Option<(Address, bool)> = None;
        for batch in &batches {
            self.raw_transfer_events += batch.raw_events;
            metrics.raw_events += batch.raw_events;
            // Shard balance: how evenly decode distributed the rows.
            obs::histogram!("ingest.shard_transfers", batch.transfers.len() as u64);
            // Compliance probe (§III-A) for contracts this shard saw first,
            // through the same single probe rule `apply_entries` uses.
            for &contract in &batch.contracts {
                self.probe_contract(chain, contract);
            }
            for transfer in &batch.transfers {
                let contract = transfer.nft.contract;
                let compliant = match verdict {
                    Some((memoized, ok)) if memoized == contract => ok,
                    _ => {
                        let ok = self.compliant_contracts.contains(&contract);
                        verdict = Some((contract, ok));
                        ok
                    }
                };
                if !compliant {
                    continue;
                }
                applied.dirty.push(self.push_transfer(transfer));
                applied.appended += 1;
            }
        }
        applied.dirty.sort_unstable();
        applied.dirty.dedup();
        metrics.appended = applied.appended;
        splice_trace.attr("appended", applied.appended as u64);
        splice_trace.finish();
        metrics.commit_ns = elapsed_ns(started);
        metrics.reconcile_ns = metrics.commit_ns; // all of it is serial here
        (applied, *metrics)
    }

    /// The three-phase path: speculative decode, serial reconcile, parallel
    /// rewrite + ordered splice.
    fn ingest_parallel_commit(
        &mut self,
        chain: &Chain,
        directory: &MarketplaceDirectory,
        spans: &[BlockSpan],
        executor: &Executor,
        metrics: &mut IngestMetrics,
    ) -> (AppliedEntries, IngestMetrics) {
        // Phase 1 — speculative decode: wholly read-only against the
        // dataset. Shards see the verdicts and interned ids of every
        // previous ingest call; entities first seen in this range get
        // provisional slots above the snapshot base.
        let started = std::time::Instant::now();
        let mut decode_trace = obs::trace::span("ingest.decode");
        decode_trace.attr("shards", spans.len() as u64);
        let snapshot = self.interner.snapshot();
        let account_base = snapshot.account_base();
        let nft_base = snapshot.nft_base();
        let market_base = snapshot.market_base();
        let compliant = &self.compliant_contracts;
        let non_compliant = &self.non_compliant_contracts;
        let batches = executor.map(spans, |span| {
            decode_speculate(chain, directory, compliant, non_compliant, snapshot, *span)
        });
        decode_trace.finish();
        metrics.decode_ns = elapsed_ns(started);

        // Phase 2 — serial reconcile, proportional to *new* entities only.
        // Walking shards in block order and each shard's contenders in
        // first-encounter order reproduces the serial first-occurrence id
        // assignment: interning is idempotent, so a contender two shards
        // both discovered settles on the id the earlier shard claims.
        let started = std::time::Instant::now();
        let mut reconcile_trace = obs::trace::span("ingest.reconcile");
        reconcile_trace.attr("shards", batches.len() as u64);
        let mut remaps: Vec<ShardRemap> = Vec::with_capacity(batches.len());
        for batch in &batches {
            self.raw_transfer_events += batch.raw_events;
            metrics.raw_events += batch.raw_events;
            // Shard balance: how evenly decode distributed the rows.
            obs::histogram!("ingest.shard_transfers", batch.rows.len() as u64);
            // Probes are pure code inspection, so shard-local verdicts merge
            // by plain insert; re-inserting a contract another shard also
            // probed is a no-op, and the insertion order matches the serial
            // scan's first-occurrence order.
            for &(contract, ok) in &batch.probed {
                if ok {
                    self.compliant_contracts.insert(contract);
                } else {
                    self.non_compliant_contracts.insert(contract);
                }
            }
            remaps.push(ShardRemap {
                account_base,
                accounts: self.interner.reconcile_accounts(&batch.contenders.accounts),
                nft_base,
                nfts: self.interner.reconcile_nfts(&batch.contenders.nfts),
                market_base,
                markets: self.interner.reconcile_markets(&batch.contenders.markets),
            });
        }
        reconcile_trace.finish();
        metrics.reconcile_ns = elapsed_ns(started);

        // Phase 3 — parallel rewrite of provisional slots into settled ids
        // (one column segment per shard), then an ordered concat into the
        // store. Segment order is shard order, so the row sequence equals
        // the serial push sequence.
        let started = std::time::Instant::now();
        let mut splice_trace = obs::trace::span("ingest.splice");
        let work: Vec<(SpecBatch, ShardRemap)> = batches.into_iter().zip(remaps).collect();
        let mut segments = executor.map(&work, |(batch, remap)| {
            let mut segment = ColumnSegment::with_capacity(batch.rows.len());
            for row in &batch.rows {
                segment.push(TransferRow {
                    nft: remap.settle_nft(row.nft),
                    from: remap.settle_account(row.from),
                    to: remap.settle_account(row.to),
                    tx_hash: row.tx_hash,
                    block: row.block,
                    timestamp: row.timestamp,
                    price: row.price,
                    marketplace: row.marketplace.map(|slot| remap.settle_market(slot)),
                });
            }
            segment
        });
        let mut applied = AppliedEntries::default();
        let total: usize = segments.iter().map(ColumnSegment::len).sum();
        self.columns.reserve(total);
        applied.dirty.reserve(total);
        for segment in &mut segments {
            applied.dirty.extend_from_slice(segment.nft_keys());
            applied.appended += segment.len();
            self.columns.splice(segment);
        }
        applied.dirty.sort_unstable();
        applied.dirty.dedup();
        metrics.appended = applied.appended;
        splice_trace.attr("appended", applied.appended as u64);
        splice_trace.finish();
        metrics.commit_ns = metrics.reconcile_ns + elapsed_ns(started);
        (applied, *metrics)
    }
}

/// Decode one shard for the serial-commit fallback: scan the span's matching
/// logs (borrowed, not cloned), resolve the payment once per transaction,
/// and emit every decoded transfer plus the contract run-list, all in
/// execution order. Purely read-only: `non_compliant` is the verdict cache
/// as of previous ingest calls, used to drop known-bad contracts before any
/// payment work; verdicts for contracts first seen here are decided at
/// commit.
fn decode_span(
    chain: &Chain,
    directory: &MarketplaceDirectory,
    non_compliant: &FxHashSet<Address>,
    span: BlockSpan,
) -> ShardBatch {
    let filter = Dataset::transfer_filter();
    let mut batch = ShardBatch {
        raw_events: 0,
        // Most matching logs decode into exactly one transfer and most
        // transactions carry at most one, so the span's transaction count is
        // a good upper-bound first allocation.
        transfers: Vec::with_capacity(chain.transaction_count_in_blocks(span.first, span.last)),
        contracts: Vec::new(),
    };
    // One memoized verdict covers whole runs of same-contract logs.
    let mut known_bad: Option<(Address, bool)> = None;
    let mut payment: Option<TxPayment> = None;
    chain.for_each_log_in_blocks(span.first, span.last, &filter, |tx, _index, log| {
        batch.raw_events += 1;
        if batch.contracts.last() != Some(&log.address) {
            batch.contracts.push(log.address);
        }
        let bad = match known_bad {
            Some((memoized, bad)) if memoized == log.address => bad,
            _ => {
                let bad = non_compliant.contains(&log.address);
                known_bad = Some((log.address, bad));
                bad
            }
        };
        if bad {
            return;
        }
        let Some(decoded) = log.decode_erc721_transfer() else {
            return;
        };
        // The visitor hands over the owning transaction, so the payment
        // context costs no hash lookup — just a once-per-transaction resolve.
        if payment.as_ref().map(|cached| cached.tx_hash) != Some(tx.hash) {
            payment = Some(TxPayment::resolve(tx, directory));
        }
        let payment = payment.as_ref().expect("payment context resolved above");
        batch.transfers.push(NftTransfer {
            nft: NftId::new(decoded.contract, decoded.token_id),
            from: decoded.from,
            to: decoded.to,
            tx_hash: tx.hash,
            block: tx.block,
            timestamp: tx.timestamp,
            price: payment.price_paid_by(decoded.to),
            marketplace: payment.marketplace,
        });
    });
    batch
}

/// Decode one shard speculatively: scan the span's matching logs, decide
/// compliance per contract (shared verdict sets read-only, fresh probes
/// collected — probes only inspect contract code, so they are safe to run
/// concurrently and always agree across shards), resolve the payment once
/// per transaction, and intern each compliant transfer's entities against
/// the snapshot in the exact field order `push_transfer` uses (nft, from,
/// to, marketplace) — which makes each shard's contender lists a faithful
/// prefix-free record of its first encounters.
fn decode_speculate(
    chain: &Chain,
    directory: &MarketplaceDirectory,
    compliant: &FxHashSet<Address>,
    non_compliant: &FxHashSet<Address>,
    snapshot: InternerSnapshot<'_>,
    span: BlockSpan,
) -> SpecBatch {
    let filter = Dataset::transfer_filter();
    let mut interner = SpeculativeInterner::new(snapshot);
    let mut rows: Vec<SpecRow> =
        Vec::with_capacity(chain.transaction_count_in_blocks(span.first, span.last));
    let mut raw_events = 0usize;
    let mut probed: Vec<(Address, bool)> = Vec::new();
    // Shard-local verdicts for contracts this shard probed (a contract can
    // recur across runs); the shared sets stay untouched until reconcile.
    let mut probed_cache: FxHashMap<Address, bool> = FxHashMap::default();
    // One memoized verdict covers whole runs of same-contract logs.
    let mut verdict: Option<(Address, bool)> = None;
    let mut payment: Option<TxPayment> = None;
    chain.for_each_log_in_blocks(span.first, span.last, &filter, |tx, _index, log| {
        raw_events += 1;
        let ok = match verdict {
            Some((memoized, ok)) if memoized == log.address => ok,
            _ => {
                let ok = if compliant.contains(&log.address) {
                    true
                } else if non_compliant.contains(&log.address) {
                    false
                } else if let Some(&cached) = probed_cache.get(&log.address) {
                    cached
                } else {
                    let supports = chain
                        .code_at(log.address)
                        .map(tokens::compliance::supports_erc721_interface)
                        .unwrap_or(false);
                    probed_cache.insert(log.address, supports);
                    probed.push((log.address, supports));
                    supports
                };
                verdict = Some((log.address, ok));
                ok
            }
        };
        if !ok {
            return;
        }
        let Some(decoded) = log.decode_erc721_transfer() else {
            return;
        };
        if payment.as_ref().map(|cached| cached.tx_hash) != Some(tx.hash) {
            payment = Some(TxPayment::resolve(tx, directory));
        }
        let payment = payment.as_ref().expect("payment context resolved above");
        // Field order mirrors `push_transfer`'s intern order (struct literal
        // fields evaluate in source order): nft, from, to, marketplace.
        rows.push(SpecRow {
            nft: interner.intern_nft(NftId::new(decoded.contract, decoded.token_id)),
            from: interner.intern_account(decoded.from),
            to: interner.intern_account(decoded.to),
            tx_hash: tx.hash,
            block: tx.block,
            timestamp: tx.timestamp,
            price: payment.price_paid_by(decoded.to),
            marketplace: payment.marketplace.map(|market| interner.intern_market(market)),
        });
    });
    SpecBatch { raw_events, rows, contenders: interner.into_contenders(), probed }
}

fn elapsed_ns(started: std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos().max(1)).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{WorkloadConfig, World};

    #[test]
    fn sharded_ingest_matches_serial_build_at_every_thread_count() {
        let world = World::generate(WorkloadConfig::small(17)).expect("world");
        let serial = Dataset::build(&world.chain, &world.directory);
        assert!(serial.transfer_count() > 0);
        assert!(!serial.non_compliant_contracts.is_empty(), "world plants rogue contracts");
        for threads in [2, 4, 8] {
            let parallel =
                Dataset::build_with(&world.chain, &world.directory, &Executor::new(threads));
            assert_eq!(parallel, serial, "threads = {threads}");
            assert_eq!(parallel.interner.accounts(), serial.interner.accounts());
        }
    }

    #[test]
    fn sharded_ingest_matches_apply_entries_over_the_same_blocks() {
        let world = World::generate(WorkloadConfig::small(23)).expect("world");
        let tip = world.chain.current_block_number();
        let executor = Executor::new(4);

        let mut sharded = Dataset::default();
        let mid = BlockNumber(tip.0 / 2);
        let first =
            sharded.ingest_blocks(&world.chain, &world.directory, BlockNumber(0), mid, &executor);
        let second = sharded.ingest_blocks(
            &world.chain,
            &world.directory,
            BlockNumber(mid.0 + 1),
            tip,
            &executor,
        );

        let mut reference = Dataset::default();
        let entries_first =
            world.chain.logs_in_blocks(BlockNumber(0), mid, &Dataset::transfer_filter());
        let entries_second =
            world.chain.logs_in_blocks(BlockNumber(mid.0 + 1), tip, &Dataset::transfer_filter());
        let ref_first = reference.apply_entries(&world.chain, &world.directory, &entries_first);
        let ref_second = reference.apply_entries(&world.chain, &world.directory, &entries_second);

        assert_eq!(sharded, reference);
        assert_eq!(first, ref_first, "first epoch delta diverged");
        assert_eq!(second, ref_second, "second epoch delta diverged");
    }

    #[test]
    fn single_thread_fallback_matches_parallel_commit_byte_for_byte() {
        // The fallback (legacy serial commit) and the three-phase parallel
        // commit must be indistinguishable: columns, interner tables,
        // verdict sets and deltas alike.
        let world = World::generate(WorkloadConfig::small(29)).expect("world");
        let tip = world.chain.current_block_number();

        let mut fallback = Dataset::default();
        let fallback_delta = fallback.ingest_blocks(
            &world.chain,
            &world.directory,
            BlockNumber(0),
            tip,
            &Executor::new(1),
        );
        let mut parallel = Dataset::default();
        let parallel_delta = parallel.ingest_blocks(
            &world.chain,
            &world.directory,
            BlockNumber(0),
            tip,
            &Executor::new(8),
        );
        assert_eq!(fallback, parallel);
        assert_eq!(fallback_delta, parallel_delta);
        assert_eq!(fallback.interner.accounts(), parallel.interner.accounts());
        assert_eq!(fallback.interner.nfts(), parallel.interner.nfts());
    }

    #[test]
    fn instrumented_ingest_reports_phases_and_counts() {
        let world = World::generate(WorkloadConfig::small(5)).expect("world");
        let mut dataset = Dataset::default();
        let (applied, metrics) = dataset.ingest_blocks_instrumented(
            &world.chain,
            &world.directory,
            BlockNumber(0),
            world.chain.current_block_number(),
            &Executor::new(4),
        );
        assert_eq!(metrics.appended, applied.appended);
        assert_eq!(metrics.appended, dataset.transfer_count());
        assert_eq!(metrics.raw_events, dataset.raw_transfer_events);
        assert!(metrics.shards >= 1 && metrics.threads >= 1);
        assert!(metrics.decode_ns > 0 && metrics.commit_ns > 0);
        assert!(metrics.reconcile_ns <= metrics.commit_ns);
        assert_eq!(metrics.total_ns(), metrics.decode_ns + metrics.commit_ns);
    }

    #[test]
    fn fallback_reports_a_fully_serial_commit() {
        let world = World::generate(WorkloadConfig::small(5)).expect("world");
        let mut dataset = Dataset::default();
        let (_, metrics) = dataset.ingest_blocks_instrumented(
            &world.chain,
            &world.directory,
            BlockNumber(0),
            world.chain.current_block_number(),
            &Executor::new(1),
        );
        assert_eq!(metrics.threads, 1);
        assert_eq!(
            metrics.reconcile_ns, metrics.commit_ns,
            "single-thread commit is serial end to end"
        );
    }

    #[test]
    fn payment_context_reproduces_per_log_resolution() {
        let world = World::generate(WorkloadConfig::small(11)).expect("world");
        for tx in world.chain.transactions() {
            let payment = TxPayment::resolve(tx, &world.directory);
            for log in &tx.logs {
                let Some(decoded) = log.decode_erc721_transfer() else {
                    continue;
                };
                let expected = if !tx.value.is_zero() {
                    tx.value
                } else {
                    Wei::new(
                        tx.logs
                            .iter()
                            .filter_map(|l| l.decode_erc20_transfer())
                            .filter(|t| t.from == decoded.to)
                            .map(|t| t.amount)
                            .sum(),
                    )
                };
                assert_eq!(payment.price_paid_by(decoded.to), expected);
                assert_eq!(
                    payment.marketplace,
                    tx.to.filter(|to| world.directory.by_contract(*to).is_some())
                );
            }
        }
    }
}
