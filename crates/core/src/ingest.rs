//! Two-phase parallel ingestion: the §III-A dataset build split into a
//! block-sharded **decode** phase and an order-preserving **commit** phase.
//!
//! The ingest path used to be the pipeline's only serial stage: one thread
//! scanned the logs (cloning every match into a `Vec<LogEntry>`), probed
//! compliance, decoded, resolved payments and interned, while every
//! downstream stage fanned out over the executor. This module parallelizes
//! everything that does not mutate the dataset:
//!
//! ```text
//!   blocks [from, to]
//!   ───────────────► shard_blocks ───┬───────┬─────────┐
//!                                    ▼       ▼         ▼
//!            ┌── phase 1: decode (parallel, read-only) ─────────────────┐
//!            │ per shard: borrow logs via for_each_log_in_blocks (no     │
//!            │ LogEntry clone), decode ERC-721, resolve the payment once │
//!            │ per transaction → transfer batches + candidate contracts  │
//!            └───────────────────────────┬──────────────────────────────┘
//!                                        ▼  (shards in block order)
//!            ┌── phase 2: commit (serial, order-preserving) ────────────┐
//!            │ per shard: probe the unseen contracts for ERC-721         │
//!            │ compliance, then push_transfer every compliant transfer   │
//!            │ in execution order → id assignment identical to the       │
//!            │ serial scan, bit for bit                                  │
//!            └──────────────────────────────────────────────────────────┘
//! ```
//!
//! Only verdict probing and interning mutate the dataset, and both are cheap
//! (one probe per contract lifetime, three dense-id lookups per transfer);
//! everything else — scanning, decoding, payment resolution — runs one shard
//! per thread over [`Executor`]. Because the shards partition the block
//! range contiguously and commit happens in shard order, the sequence of
//! probe and `push_transfer` calls is exactly the serial one: columns,
//! interner tables and every downstream artifact are bit-identical at any
//! thread count (pinned by `tests/parallel_ingest.rs` and the golden
//! report).

use ethsim::fxhash::FxHashSet;
use ethsim::{Address, BlockNumber, BlockSpan, Chain, Transaction, TxHash, Wei};
use marketplace::MarketplaceDirectory;
use tokens::NftId;

use crate::dataset::{AppliedEntries, Dataset, NftTransfer};
use crate::parallel::Executor;

/// The payment context of one transaction, resolved once and shared by every
/// ERC-721 log the transaction carries: the attached ETH value, the
/// marketplace attribution of the call target, and — only when no ETH was
/// attached — the decoded ERC-20 transfer list the per-buyer price sums
/// over.
pub(crate) struct TxPayment {
    /// The transaction this context belongs to.
    pub tx_hash: TxHash,
    /// The marketplace the transaction interacted with, if any.
    pub marketplace: Option<Address>,
    /// ETH attached to the transaction (the price when nonzero).
    value: Wei,
    /// `(payer, amount)` of each ERC-20 transfer log, decoded once; empty
    /// when `value` is nonzero (never consulted then).
    erc20: Vec<(Address, u128)>,
}

impl TxPayment {
    /// Resolve the payment context of `tx`.
    pub fn resolve(tx: &Transaction, directory: &MarketplaceDirectory) -> TxPayment {
        let erc20 = if tx.value.is_zero() {
            tx.logs
                .iter()
                .filter_map(|log| log.decode_erc20_transfer())
                .map(|transfer| (transfer.from, transfer.amount))
                .collect()
        } else {
            Vec::new()
        };
        TxPayment {
            tx_hash: tx.hash,
            marketplace: tx.to.filter(|to| directory.by_contract(*to).is_some()),
            value: tx.value,
            erc20,
        }
    }

    /// Amount paid by `buyer`: the ETH attached to the transaction, or —
    /// when the payment went through an ERC-20 token (e.g. WETH bids) — the
    /// sum the buyer sent in that token's transfer logs.
    pub fn price_paid_by(&self, buyer: Address) -> Wei {
        if !self.value.is_zero() {
            return self.value;
        }
        Wei::new(
            self.erc20.iter().filter(|(payer, _)| *payer == buyer).map(|(_, amount)| *amount).sum(),
        )
    }
}

/// What one decode shard produced, in execution order: the matching-log
/// count, every decoded transfer (compliance still undecided — verdicts are
/// a commit-phase concern), and the emitting contracts as first-seen runs.
struct ShardBatch {
    raw_events: usize,
    transfers: Vec<NftTransfer>,
    /// Contracts of the shard's matching logs, memoized per consecutive run
    /// (so the list is short, but every contract that emitted a matching log
    /// appears at least once — decode failures included, which the verdict
    /// sets must cover just as the serial path's did).
    contracts: Vec<Address>,
}

/// Per-phase instrumentation of one [`Dataset::ingest_blocks_instrumented`]
/// call — the breakdown the ingest-throughput bench records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestMetrics {
    /// Wall time of the parallel decode fan-out, nanoseconds.
    pub decode_ns: u64,
    /// Wall time of the serial probe-and-commit phase, nanoseconds.
    pub commit_ns: u64,
    /// Decode shards the block range was split into.
    pub shards: usize,
    /// Threads the decode fan-out actually used.
    pub threads: usize,
    /// ERC-721-shaped logs scanned (before the compliance filter).
    pub raw_events: usize,
    /// Compliant transfers committed.
    pub appended: usize,
}

impl IngestMetrics {
    /// Total wall time across both phases, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.decode_ns + self.commit_ns
    }
}

impl Dataset {
    /// Ingest the ERC-721 transfers of blocks `[from, to]` through the
    /// two-phase pipeline: parallel block-sharded decode, then serial
    /// order-preserving commit (see the module docs for the shape).
    ///
    /// Successive calls must cover disjoint, non-decreasing block ranges (as
    /// a block cursor produces them) — the same contract as
    /// [`Dataset::apply_entries`], to which this is bit-identical over the
    /// same blocks, at any thread count.
    pub fn ingest_blocks(
        &mut self,
        chain: &Chain,
        directory: &MarketplaceDirectory,
        from: BlockNumber,
        to: BlockNumber,
        executor: &Executor,
    ) -> AppliedEntries {
        self.ingest_blocks_instrumented(chain, directory, from, to, executor).0
    }

    /// [`Dataset::ingest_blocks`] with per-phase timing, for the
    /// ingest-throughput bench and the pipeline's stage metrics.
    pub fn ingest_blocks_instrumented(
        &mut self,
        chain: &Chain,
        directory: &MarketplaceDirectory,
        from: BlockNumber,
        to: BlockNumber,
        executor: &Executor,
    ) -> (AppliedEntries, IngestMetrics) {
        let mut metrics = IngestMetrics::default();

        // Phase 1 — parallel decode: one read-only scan per shard, borrowing
        // logs straight off the chain (no LogEntry materialization). Shards
        // see the verdicts of every *previous* ingest call read-only, so on
        // a stream the known-non-compliant contracts are dropped before any
        // payment work; contracts first seen in this range stay undecided
        // until the commit phase probes them.
        let started = std::time::Instant::now();
        let spans = chain.shard_blocks(from, to, executor.threads());
        metrics.shards = spans.len();
        metrics.threads = executor.threads_for(spans.len());
        let non_compliant = &self.non_compliant_contracts;
        let batches =
            executor.map(&spans, |span| decode_span(chain, directory, non_compliant, *span));
        metrics.decode_ns = elapsed_ns(started);

        // Phase 2 — ordered probe-and-commit: shards are contiguous block
        // ranges in ascending order, so probing each shard's contracts and
        // appending its transfers in shard order reproduces the serial
        // probe-and-push sequence — and with it the verdict sets and the id
        // assignment — exactly.
        let started = std::time::Instant::now();
        let mut applied = AppliedEntries::default();
        let total: usize = batches.iter().map(|batch| batch.transfers.len()).sum();
        self.columns.reserve(total);
        applied.dirty.reserve(total);
        // NFT logs cluster by contract, so one memoized verdict covers whole
        // runs of transfers without touching the sets.
        let mut verdict: Option<(Address, bool)> = None;
        for batch in &batches {
            self.raw_transfer_events += batch.raw_events;
            metrics.raw_events += batch.raw_events;
            // Compliance probe (§III-A) for contracts this shard saw first,
            // through the same single probe rule `apply_entries` uses.
            // Verdicts are cached for the dataset's lifetime; each contract
            // is probed exactly once.
            for &contract in &batch.contracts {
                self.probe_contract(chain, contract);
            }
            for transfer in &batch.transfers {
                let contract = transfer.nft.contract;
                let compliant = match verdict {
                    Some((memoized, ok)) if memoized == contract => ok,
                    _ => {
                        let ok = self.compliant_contracts.contains(&contract);
                        verdict = Some((contract, ok));
                        ok
                    }
                };
                if !compliant {
                    continue;
                }
                applied.dirty.push(self.push_transfer(transfer));
                applied.appended += 1;
            }
        }
        applied.dirty.sort_unstable();
        applied.dirty.dedup();
        metrics.appended = applied.appended;
        metrics.commit_ns = elapsed_ns(started);
        (applied, metrics)
    }
}

/// Decode one shard: scan the span's matching logs (borrowed, not cloned),
/// resolve the payment once per transaction, and emit every decoded
/// transfer plus the contract run-list, all in execution order. Purely
/// read-only: `non_compliant` is the verdict cache as of previous ingest
/// calls, used to drop known-bad contracts before any payment work;
/// verdicts for contracts first seen here are decided at commit.
fn decode_span(
    chain: &Chain,
    directory: &MarketplaceDirectory,
    non_compliant: &FxHashSet<Address>,
    span: BlockSpan,
) -> ShardBatch {
    let filter = Dataset::transfer_filter();
    let mut batch = ShardBatch {
        raw_events: 0,
        // Most matching logs decode into exactly one transfer and most
        // transactions carry at most one, so the span's transaction count is
        // a good upper-bound first allocation.
        transfers: Vec::with_capacity(chain.transaction_count_in_blocks(span.first, span.last)),
        contracts: Vec::new(),
    };
    // One memoized verdict covers whole runs of same-contract logs.
    let mut known_bad: Option<(Address, bool)> = None;
    let mut payment: Option<TxPayment> = None;
    chain.for_each_log_in_blocks(span.first, span.last, &filter, |tx, _index, log| {
        batch.raw_events += 1;
        if batch.contracts.last() != Some(&log.address) {
            batch.contracts.push(log.address);
        }
        let bad = match known_bad {
            Some((memoized, bad)) if memoized == log.address => bad,
            _ => {
                let bad = non_compliant.contains(&log.address);
                known_bad = Some((log.address, bad));
                bad
            }
        };
        if bad {
            return;
        }
        let Some(decoded) = log.decode_erc721_transfer() else {
            return;
        };
        // The visitor hands over the owning transaction, so the payment
        // context costs no hash lookup — just a once-per-transaction resolve.
        if payment.as_ref().map(|cached| cached.tx_hash) != Some(tx.hash) {
            payment = Some(TxPayment::resolve(tx, directory));
        }
        let payment = payment.as_ref().expect("payment context resolved above");
        batch.transfers.push(NftTransfer {
            nft: NftId::new(decoded.contract, decoded.token_id),
            from: decoded.from,
            to: decoded.to,
            tx_hash: tx.hash,
            block: tx.block,
            timestamp: tx.timestamp,
            price: payment.price_paid_by(decoded.to),
            marketplace: payment.marketplace,
        });
    });
    batch
}

fn elapsed_ns(started: std::time::Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos().max(1)).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::{WorkloadConfig, World};

    #[test]
    fn sharded_ingest_matches_serial_build_at_every_thread_count() {
        let world = World::generate(WorkloadConfig::small(17)).expect("world");
        let serial = Dataset::build(&world.chain, &world.directory);
        assert!(serial.transfer_count() > 0);
        assert!(!serial.non_compliant_contracts.is_empty(), "world plants rogue contracts");
        for threads in [2, 4, 8] {
            let parallel =
                Dataset::build_with(&world.chain, &world.directory, &Executor::new(threads));
            assert_eq!(parallel, serial, "threads = {threads}");
            assert_eq!(parallel.interner.accounts(), serial.interner.accounts());
        }
    }

    #[test]
    fn sharded_ingest_matches_apply_entries_over_the_same_blocks() {
        let world = World::generate(WorkloadConfig::small(23)).expect("world");
        let tip = world.chain.current_block_number();
        let executor = Executor::new(4);

        let mut sharded = Dataset::default();
        let mid = BlockNumber(tip.0 / 2);
        let first =
            sharded.ingest_blocks(&world.chain, &world.directory, BlockNumber(0), mid, &executor);
        let second = sharded.ingest_blocks(
            &world.chain,
            &world.directory,
            BlockNumber(mid.0 + 1),
            tip,
            &executor,
        );

        let mut reference = Dataset::default();
        let entries_first =
            world.chain.logs_in_blocks(BlockNumber(0), mid, &Dataset::transfer_filter());
        let entries_second =
            world.chain.logs_in_blocks(BlockNumber(mid.0 + 1), tip, &Dataset::transfer_filter());
        let ref_first = reference.apply_entries(&world.chain, &world.directory, &entries_first);
        let ref_second = reference.apply_entries(&world.chain, &world.directory, &entries_second);

        assert_eq!(sharded, reference);
        assert_eq!(first, ref_first, "first epoch delta diverged");
        assert_eq!(second, ref_second, "second epoch delta diverged");
    }

    #[test]
    fn instrumented_ingest_reports_phases_and_counts() {
        let world = World::generate(WorkloadConfig::small(5)).expect("world");
        let mut dataset = Dataset::default();
        let (applied, metrics) = dataset.ingest_blocks_instrumented(
            &world.chain,
            &world.directory,
            BlockNumber(0),
            world.chain.current_block_number(),
            &Executor::new(4),
        );
        assert_eq!(metrics.appended, applied.appended);
        assert_eq!(metrics.appended, dataset.transfer_count());
        assert_eq!(metrics.raw_events, dataset.raw_transfer_events);
        assert!(metrics.shards >= 1 && metrics.threads >= 1);
        assert!(metrics.decode_ns > 0 && metrics.commit_ns > 0);
        assert_eq!(metrics.total_ns(), metrics.decode_ns + metrics.commit_ns);
    }

    #[test]
    fn payment_context_reproduces_per_log_resolution() {
        let world = World::generate(WorkloadConfig::small(11)).expect("world");
        for tx in world.chain.transactions() {
            let payment = TxPayment::resolve(tx, &world.directory);
            for log in &tx.logs {
                let Some(decoded) = log.decode_erc721_transfer() else {
                    continue;
                };
                let expected = if !tx.value.is_zero() {
                    tx.value
                } else {
                    Wei::new(
                        tx.logs
                            .iter()
                            .filter_map(|l| l.decode_erc20_transfer())
                            .filter(|t| t.from == decoded.to)
                            .map(|t| t.amount)
                            .sum(),
                    )
                };
                assert_eq!(payment.price_paid_by(decoded.to), expected);
                assert_eq!(
                    payment.marketplace,
                    tx.to.filter(|to| world.directory.by_contract(*to).is_some())
                );
            }
        }
    }
}
