//! Dataset construction (§III of the paper).
//!
//! The pipeline starts from the chain's event logs: every log with the
//! `Transfer(address,address,uint256)` topic and four topics is an ERC-721
//! transfer candidate. The emitting contracts are then checked for ERC-165 /
//! ERC-721 compliance, and the surviving transfers are annotated with the
//! amount paid and the marketplace the transaction interacted with.
//!
//! Storage is columnar and interned: every account, NFT and marketplace is
//! mapped to a dense id **once, here at ingest** (batch [`Dataset::build`]
//! and streaming [`Dataset::apply_entries`] share the same
//! [`Dataset::push_transfer`] seam, so the [`Interner`] is append-only and
//! stream-stable), and the transfers live in the struct-of-arrays
//! [`TransferColumns`]. Downstream stages index `Vec`s by the dense ids;
//! addresses reappear only at the report boundary.

use ethsim::fxhash::FxHashSet;
use ethsim::{Address, BlockNumber, Chain, LogEntry, LogFilter, Timestamp, TxHash, Wei};
use ids::{BitSet, Interner, NftKey};
use marketplace::MarketplaceDirectory;
use oracle::PriceOracle;
use serde::{Deserialize, Serialize};
use tokens::NftId;

use crate::columns::{TransferColumns, TransferRow};
use crate::ingest::TxPayment;
use crate::parallel::Executor;

/// A single ERC-721 transfer in resolved (address-keyed) form: the
/// compatibility view materialized from [`TransferColumns`] at the report
/// boundary, and the input shape [`Dataset::push_transfer`] interns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NftTransfer {
    /// The NFT being moved.
    pub nft: NftId,
    /// Previous owner (null address for mints).
    pub from: Address,
    /// New owner (null address for burns).
    pub to: Address,
    /// The transaction carrying the transfer log.
    pub tx_hash: TxHash,
    /// Block of the transaction.
    pub block: BlockNumber,
    /// Timestamp of the transaction.
    pub timestamp: Timestamp,
    /// Amount paid for the NFT in this transaction.
    pub price: Wei,
    /// The marketplace contract the transaction interacted with, if any.
    pub marketplace: Option<Address>,
}

/// Aggregate dataset statistics for one marketplace (one row of Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketplaceVolume {
    /// Marketplace name.
    pub name: String,
    /// Number of distinct NFTs traded there.
    pub nfts: usize,
    /// Number of sale transactions.
    pub transactions: usize,
    /// Traded volume in ETH.
    pub volume_eth: f64,
    /// Traded volume in USD at transaction time.
    pub volume_usd: f64,
}

/// The assembled dataset: the entity interner, the columnar transfer store,
/// and the compliance verdicts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// The dense-id assignment for every account, NFT and marketplace seen.
    pub interner: Interner,
    /// Transfer history in struct-of-arrays form, with per-NFT row slices.
    pub columns: TransferColumns,
    /// Contracts that emitted ERC-721-shaped logs and passed the compliance
    /// probe.
    pub compliant_contracts: FxHashSet<Address>,
    /// Contracts that emitted ERC-721-shaped logs but failed the probe; their
    /// transfers are excluded from the columns.
    pub non_compliant_contracts: FxHashSet<Address>,
    /// Number of raw ERC-721-shaped transfer logs scanned (before the
    /// compliance filter).
    pub raw_transfer_events: usize,
}

/// What one [`Dataset::apply_entries`] call changed: the NFTs that received
/// new transfers (as dense keys, sorted and deduplicated) and how many
/// transfers were appended.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppliedEntries {
    /// NFTs that gained at least one transfer, in ascending key order.
    pub dirty: Vec<NftKey>,
    /// Number of compliant transfers appended across all NFTs.
    pub appended: usize,
}

impl Dataset {
    /// The `eth_getLogs` filter the dataset stage scans (§III-A): every log
    /// with the `Transfer` topic and four topics is an ERC-721 candidate.
    pub fn transfer_filter() -> LogFilter {
        LogFilter::all().with_topic0(ethsim::log::transfer_topic()).with_topic_count(4)
    }

    /// Build the dataset from a chain and the marketplace directory,
    /// mirroring §III-A: scan transfer events, check compliance, store the
    /// per-NFT transfer lists with price and marketplace annotations.
    ///
    /// Runs the two-phase ingest pipeline ([`Dataset::ingest_blocks`]) on a
    /// single thread. Equivalent to applying every log entry of the chain to
    /// an empty dataset through [`Dataset::apply_entries`] — the
    /// arbitrary-slice incremental entry point — and bit-identical to
    /// [`Dataset::build_with`] at any thread count: every path interns
    /// through the same [`Dataset::push_transfer`] seam in execution order.
    pub fn build(chain: &Chain, directory: &MarketplaceDirectory) -> Dataset {
        Self::build_with(chain, directory, &Executor::new(1))
    }

    /// [`Dataset::build`] with an explicit thread budget for the parallel
    /// decode phase. The result is bit-identical at any thread count.
    pub fn build_with(
        chain: &Chain,
        directory: &MarketplaceDirectory,
        executor: &Executor,
    ) -> Dataset {
        let mut dataset = Dataset::default();
        dataset.ingest_blocks(
            chain,
            directory,
            BlockNumber(0),
            chain.current_block_number(),
            executor,
        );
        dataset
    }

    /// Intern and append one transfer — the single seam every producer
    /// (batch build, streaming epochs, test fixtures) funnels through, which
    /// is what keeps the id assignment append-only and stream-stable.
    /// Returns the NFT's dense key.
    pub fn push_transfer(&mut self, transfer: &NftTransfer) -> NftKey {
        let nft = self.interner.intern_nft(transfer.nft);
        let row = TransferRow {
            nft,
            from: self.interner.intern_account(transfer.from),
            to: self.interner.intern_account(transfer.to),
            tx_hash: transfer.tx_hash,
            block: transfer.block,
            timestamp: transfer.timestamp,
            price: transfer.price,
            marketplace: transfer.marketplace.map(|market| self.interner.intern_market(market)),
        };
        self.columns.push(row);
        nft
    }

    /// Append a batch of transfer-shaped log entries to the dataset: probe
    /// unseen contracts for ERC-721 compliance, decode, intern and annotate
    /// the surviving transfers.
    ///
    /// Entries must arrive in execution order, and successive calls must
    /// cover disjoint, non-decreasing block ranges (as a block cursor
    /// produces them); under that contract the final dataset — columns *and*
    /// id assignment — is identical to a one-shot [`Dataset::build`] over
    /// the same chain.
    pub fn apply_entries(
        &mut self,
        chain: &Chain,
        directory: &MarketplaceDirectory,
        entries: &[LogEntry],
    ) -> AppliedEntries {
        self.raw_transfer_events += entries.len();

        // Compliance check per emitting contract (§III-A "ERC-721 compliance").
        // Verdicts are cached across calls, so each contract is probed once.
        for entry in entries {
            self.probe_contract(chain, entry.log.address);
        }

        let mut applied = AppliedEntries::default();
        // Entries arrive in execution order, so all logs of one transaction
        // are consecutive: the transaction lookup, the marketplace
        // attribution and the ERC-20 payment-log decode are resolved once
        // per transaction and reused for every ERC-721 log it carries.
        let mut payment: Option<TxPayment> = None;
        for entry in entries {
            let Some(decoded) = entry.log.decode_erc721_transfer() else {
                continue;
            };
            if !self.compliant_contracts.contains(&decoded.contract) {
                continue;
            }
            if payment.as_ref().map(|cached| cached.tx_hash) != Some(entry.tx_hash) {
                let tx = chain
                    .transaction(entry.tx_hash)
                    .expect("log entries reference existing transactions");
                payment = Some(TxPayment::resolve(tx, directory));
            }
            let payment = payment.as_ref().expect("payment context resolved above");
            let nft = self.push_transfer(&NftTransfer {
                nft: NftId::new(decoded.contract, decoded.token_id),
                from: decoded.from,
                to: decoded.to,
                tx_hash: entry.tx_hash,
                block: entry.block,
                timestamp: entry.timestamp,
                price: payment.price_paid_by(decoded.to),
                marketplace: payment.marketplace,
            });
            applied.dirty.push(nft);
            applied.appended += 1;
        }
        applied.dirty.sort_unstable();
        applied.dirty.dedup();
        // Under the ordering contract above, every appended suffix is
        // chronological and lands after the existing tail, so the per-NFT
        // row slices stay sorted without re-sorting (a per-epoch re-sort
        // would make hot NFTs superlinear over a long stream). Debug builds
        // verify the contract instead.
        #[cfg(debug_assertions)]
        for nft in &applied.dirty {
            let rows = self.columns.rows_of(*nft);
            debug_assert!(
                rows.windows(2).all(|w| {
                    (self.columns.block[w[0] as usize], self.columns.timestamp[w[0] as usize])
                        <= (
                            self.columns.block[w[1] as usize],
                            self.columns.timestamp[w[1] as usize],
                        )
                }),
                "apply_entries received out-of-order entries for {nft:?}"
            );
        }
        applied
    }

    /// Probe `contract` for ERC-721 compliance — the structural equivalent
    /// of calling `supportsInterface(0x80ac58cd)` — unless a verdict is
    /// already cached. The single probe rule every ingest path
    /// ([`Dataset::apply_entries`] and the sharded commit phase) shares, so
    /// the verdict sets cannot diverge between them.
    pub(crate) fn probe_contract(&mut self, chain: &Chain, contract: Address) {
        if self.compliant_contracts.contains(&contract)
            || self.non_compliant_contracts.contains(&contract)
        {
            return;
        }
        let supports = chain
            .code_at(contract)
            .map(tokens::compliance::supports_erc721_interface)
            .unwrap_or(false);
        if supports {
            self.compliant_contracts.insert(contract);
        } else {
            self.non_compliant_contracts.insert(contract);
        }
    }

    /// Number of distinct NFTs with at least one transfer. (Every interned
    /// NFT key has at least one row — keys are assigned on first transfer.)
    pub fn nft_count(&self) -> usize {
        self.interner.nft_count()
    }

    /// Total number of (compliant) transfers.
    pub fn transfer_count(&self) -> usize {
        self.columns.len()
    }

    /// The resolved transfer history of one NFT, chronological — the
    /// report-boundary view of the columnar store (allocates; hot paths use
    /// [`TransferColumns::rows_of`] directly).
    pub fn transfers_of(&self, nft: NftId) -> Vec<NftTransfer> {
        let Some(key) = self.interner.nft_key(nft) else {
            return Vec::new();
        };
        self.columns
            .rows_of(key)
            .iter()
            .map(|&row| self.columns.resolve(row, &self.interner))
            .collect()
    }

    /// All accounts appearing as source or recipient of a transfer, in
    /// ascending address order (sorted so every consumer — reports, live
    /// deltas — iterates deterministically). The interner only assigns
    /// account ids from transfer endpoints, so this is exactly its account
    /// table, re-ordered by address.
    pub fn accounts(&self) -> Vec<Address> {
        let mut accounts: Vec<Address> = self.interner.accounts().to_vec();
        accounts.sort_unstable();
        accounts
    }

    /// Per-marketplace totals (Table I): NFTs, transactions and volume of all
    /// activity attributed to each marketplace.
    pub fn marketplace_volumes(
        &self,
        directory: &MarketplaceDirectory,
        oracle: &PriceOracle,
    ) -> Vec<MarketplaceVolume> {
        self.marketplace_volumes_with(directory, oracle, &Executor::new(1))
    }

    /// [`Dataset::marketplace_volumes`] as a two-level fold: the USD pricing
    /// of each NFT's marketplace rows ([`Dataset::nft_market_leaves`], the
    /// expensive half) fans out over `executor`, then a serial
    /// [`MarketVolumeFold`] replays the per-transaction accumulation in
    /// identity-sorted NFT order — the exact order the one-level loop used,
    /// so the f64 totals are bit-identical at any thread count. The
    /// streaming analyzer reuses the same fold over *cached* leaves,
    /// repricing only dirty NFTs.
    pub fn marketplace_volumes_with(
        &self,
        directory: &MarketplaceDirectory,
        oracle: &PriceOracle,
        executor: &Executor,
    ) -> Vec<MarketplaceVolume> {
        let keys = self.interner.nft_keys_sorted_by_id();
        let leaves = executor.map(&keys, |&key| self.nft_market_leaves(key, oracle));
        let mut fold = MarketVolumeFold::new(self.interner.market_count());
        for (key, leaves) in keys.iter().zip(&leaves) {
            fold.add(*key, leaves);
        }
        fold.rows(directory, &self.interner)
    }

    /// The marketplace-attributed transfer rows of one NFT with their USD
    /// pricing precomputed, in row (chronological) order — the per-NFT leaf
    /// record of the two-level [`MarketVolumeFold`]. Leaves are a pure
    /// function of the NFT's (append-only) history, so cached leaves of
    /// clean NFTs stay valid across streamed epochs.
    pub fn nft_market_leaves(&self, key: NftKey, oracle: &PriceOracle) -> NftMarketLeaves {
        let leaves = self
            .columns
            .rows_of(key)
            .iter()
            .filter_map(|&row| {
                let row = row as usize;
                let market = self.columns.marketplace[row]?;
                Some(MarketLeaf {
                    market,
                    tx_hash: self.columns.tx_hash[row],
                    eth: self.columns.price[row].to_eth(),
                    usd: oracle
                        .wei_to_usd(self.columns.price[row], self.columns.timestamp[row])
                        .unwrap_or(0.0),
                })
            })
            .collect();
        NftMarketLeaves { leaves }
    }
}

/// One marketplace-attributed transfer of an NFT with its price converted —
/// the leaf of the two-level Table I fold.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketLeaf {
    /// The attributed marketplace.
    pub market: ids::MarketId,
    /// The carrying transaction (volume is deduplicated per transaction).
    pub tx_hash: TxHash,
    /// Price in ETH.
    pub eth: f64,
    /// Price in USD at the transfer's timestamp.
    pub usd: f64,
}

/// Pre-priced marketplace rows of one NFT (see
/// [`Dataset::nft_market_leaves`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NftMarketLeaves {
    /// Leaves in row (chronological) order.
    pub leaves: Vec<MarketLeaf>,
}

/// The serial reduce of the Table I marketplace volumes: feed it per-NFT
/// [`NftMarketLeaves`] in identity-sorted NFT order via
/// [`MarketVolumeFold::add`] and it accumulates exactly as the original
/// one-level loop did — including the global per-market transaction
/// deduplication, replayed in the same order, so every f64 sum lands on the
/// same bits.
pub struct MarketVolumeFold {
    per_market: Vec<Option<MarketAccumulator>>,
}

struct MarketAccumulator {
    nfts: BitSet,
    transactions: FxHashSet<TxHash>,
    volume_eth: f64,
    volume_usd: f64,
}

impl MarketVolumeFold {
    /// An empty fold over `market_count` dense marketplace ids.
    pub fn new(market_count: usize) -> Self {
        let mut per_market = Vec::new();
        per_market.resize_with(market_count, || None);
        MarketVolumeFold { per_market }
    }

    /// Fold one NFT's leaves. Callers must add NFTs in identity-sorted
    /// order: the volume fields are f64 sums, and floating-point addition is
    /// order-sensitive, so the accumulation order must be a property of the
    /// data, never of ingest order.
    pub fn add(&mut self, key: NftKey, leaves: &NftMarketLeaves) {
        for leaf in &leaves.leaves {
            let accumulator =
                self.per_market[leaf.market.index()].get_or_insert_with(|| MarketAccumulator {
                    nfts: BitSet::new(),
                    transactions: FxHashSet::default(),
                    volume_eth: 0.0,
                    volume_usd: 0.0,
                });
            accumulator.nfts.insert(key.index());
            if accumulator.transactions.insert(leaf.tx_hash) {
                accumulator.volume_eth += leaf.eth;
                accumulator.volume_usd += leaf.usd;
            }
        }
    }

    /// Resolve the fold into directory-named rows sorted by USD volume.
    pub fn rows(
        self,
        directory: &MarketplaceDirectory,
        interner: &Interner,
    ) -> Vec<MarketplaceVolume> {
        let mut rows: Vec<MarketplaceVolume> = directory
            .iter()
            .map(|info| {
                let accumulator = interner
                    .market_id(info.contract)
                    .and_then(|id| self.per_market[id.index()].as_ref());
                MarketplaceVolume {
                    name: info.name.clone(),
                    nfts: accumulator.map(|a| a.nfts.len()).unwrap_or(0),
                    transactions: accumulator.map(|a| a.transactions.len()).unwrap_or(0),
                    volume_eth: accumulator.map(|a| a.volume_eth).unwrap_or(0.0),
                    volume_usd: accumulator.map(|a| a.volume_usd).unwrap_or(0.0),
                }
            })
            .collect();
        rows.sort_by(|a, b| b.volume_usd.total_cmp(&a.volume_usd));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::{Selector, Timestamp, TxRequest};
    use labels::LabelRegistry;
    use marketplace::{presets, Marketplace};
    use tokens::TokenRegistry;

    fn build_world() -> (Chain, TokenRegistry, MarketplaceDirectory, Vec<Address>) {
        let mut chain = Chain::new(Timestamp::from_secs(1_640_995_200));
        let mut tokens = TokenRegistry::new();
        let mut labels = LabelRegistry::new();
        let mut directory = MarketplaceDirectory::new();
        let mut engines = Vec::new();
        for spec in [presets::opensea(), presets::looksrare()] {
            let engine = Marketplace::deploy(&mut chain, &mut tokens, &mut labels, spec).unwrap();
            directory.add(engine.info());
            engines.push(engine);
        }
        let genesis = chain.current_timestamp();
        let good = tokens.deploy_erc721(&mut chain, "good", "Good", true, genesis).unwrap();
        let rogue = tokens.deploy_erc721(&mut chain, "rogue", "Rogue", false, genesis).unwrap();
        let alice = chain.create_eoa("alice").unwrap();
        let bob = chain.create_eoa("bob").unwrap();
        chain.fund(alice, Wei::from_eth(50.0));
        chain.fund(bob, Wei::from_eth(50.0));

        // Mint + marketplace sale on the compliant collection.
        let (nft, mint_log) = tokens.erc721_mut(good).unwrap().mint(alice);
        chain
            .submit(
                TxRequest::contract_call(
                    alice,
                    good,
                    Selector::of("mint(address)"),
                    Wei::ZERO,
                    90_000,
                    Wei::from_gwei(30),
                )
                .with_log(mint_log),
            )
            .unwrap();
        engines[0]
            .execute_sale(
                &mut chain,
                &mut tokens,
                alice,
                bob,
                nft,
                Wei::from_eth(2.0),
                Wei::from_gwei(30),
            )
            .unwrap();

        // A transfer on the rogue (non-compliant) collection.
        let (rogue_nft, rogue_mint) = tokens.erc721_mut(rogue).unwrap().mint(alice);
        chain
            .submit(
                TxRequest::contract_call(
                    alice,
                    rogue,
                    Selector::of("mint(address)"),
                    Wei::ZERO,
                    90_000,
                    Wei::from_gwei(30),
                )
                .with_log(rogue_mint),
            )
            .unwrap();
        let rogue_log =
            tokens.erc721_mut(rogue).unwrap().transfer(alice, bob, rogue_nft.token_id).unwrap();
        chain
            .submit(TxRequest {
                from: bob,
                to: Some(alice),
                value: Wei::from_eth(1.0),
                gas_used: 85_000,
                gas_price: Wei::from_gwei(30),
                input: vec![],
                logs: vec![rogue_log],
                internal_transfers: vec![],
            })
            .unwrap();

        (chain, tokens, directory, vec![good, rogue])
    }

    #[test]
    fn compliance_filter_excludes_rogue_contracts() {
        let (chain, _tokens, directory, contracts) = build_world();
        let dataset = Dataset::build(&chain, &directory);
        assert!(dataset.compliant_contracts.contains(&contracts[0]));
        assert!(dataset.non_compliant_contracts.contains(&contracts[1]));
        // Raw events include the rogue transfers; the dataset does not.
        assert_eq!(dataset.raw_transfer_events, 4);
        assert_eq!(dataset.nft_count(), 1);
        assert_eq!(dataset.transfer_count(), 2); // mint + sale of the good NFT
    }

    #[test]
    fn prices_and_marketplace_attribution() {
        let (chain, _tokens, directory, contracts) = build_world();
        let dataset = Dataset::build(&chain, &directory);
        let nft = NftId::new(contracts[0], 0);
        let transfers = dataset.transfers_of(nft);
        assert_eq!(transfers.len(), 2);
        // The mint is free and off-market.
        assert!(transfers[0].from.is_null());
        assert_eq!(transfers[0].price, Wei::ZERO);
        assert_eq!(transfers[0].marketplace, None);
        // The sale is on OpenSea at 2 ETH.
        assert_eq!(transfers[1].price, Wei::from_eth(2.0));
        let opensea = directory.by_name("OpenSea").unwrap().contract;
        assert_eq!(transfers[1].marketplace, Some(opensea));
        assert!(transfers[1].timestamp >= transfers[0].timestamp);
        // The interner learned the marketplace and both endpoints.
        assert!(dataset.interner.market_id(opensea).is_some());
        assert!(dataset.interner.account_id(Address::derived("alice")).is_some());
    }

    #[test]
    fn marketplace_volumes_report_table1_rows() {
        let (chain, _tokens, directory, _) = build_world();
        let dataset = Dataset::build(&chain, &directory);
        let oracle = PriceOracle::paper_presets(Timestamp::from_secs(1_640_995_200), 30, 1);
        let rows = dataset.marketplace_volumes(&directory, &oracle);
        assert_eq!(rows.len(), 2);
        let opensea = rows.iter().find(|r| r.name == "OpenSea").unwrap();
        assert_eq!(opensea.nfts, 1);
        assert_eq!(opensea.transactions, 1);
        assert!((opensea.volume_eth - 2.0).abs() < 1e-9);
        assert!(opensea.volume_usd > 0.0);
        let looksrare = rows.iter().find(|r| r.name == "LooksRare").unwrap();
        assert_eq!(looksrare.transactions, 0);
    }

    #[test]
    fn accounts_cover_all_transfer_parties_in_sorted_order() {
        let (chain, _tokens, directory, _) = build_world();
        let dataset = Dataset::build(&chain, &directory);
        let accounts = dataset.accounts();
        assert!(accounts.contains(&Address::derived("alice")));
        assert!(accounts.contains(&Address::derived("bob")));
        assert!(accounts.contains(&Address::NULL));
        assert!(accounts.windows(2).all(|w| w[0] < w[1]), "sorted and deduplicated");
    }

    #[test]
    fn incremental_application_matches_one_shot_build() {
        let (chain, _tokens, directory, _) = build_world();
        let batch = Dataset::build(&chain, &directory);
        // Replay the same logs in two slices through the incremental seam.
        let entries = chain.logs(&Dataset::transfer_filter());
        let mut incremental = Dataset::default();
        let split = entries.len() / 2;
        let first = incremental.apply_entries(&chain, &directory, &entries[..split]);
        let second = incremental.apply_entries(&chain, &directory, &entries[split..]);
        assert_eq!(first.appended + second.appended, batch.transfer_count());
        assert!(first.dirty.windows(2).all(|w| w[0] < w[1]));
        // Columns, id assignment and verdicts are all identical: the interner
        // is stream-stable under any epoch slicing.
        assert_eq!(incremental, batch);
    }
}
