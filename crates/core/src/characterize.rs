//! Characterization of confirmed wash-trading activities (§V of the paper):
//! volumes per marketplace and collection, temporal behaviour, participation
//! patterns and serial wash traders.
//!
//! The computation runs on dense activities and the columnar dataset —
//! accumulators are `Vec`s and bitsets indexed by [`AccountId`]/[`NftKey`],
//! not address-keyed maps — and resolves to addresses only in the output
//! structs. Every floating-point sum accumulates in a fixed order derived
//! from the data (sorted NFT identity, candidate order), never from map
//! iteration or ingest order, so the report is bit-identical run to run and
//! between the batch and streaming pipelines.

use std::collections::{HashMap, HashSet};

use ethsim::{Address, Timestamp};
use graphlib::{PatternCatalogue, PatternId};
use ids::{BitSet, NftKey};
use marketplace::MarketplaceDirectory;
use oracle::PriceOracle;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::detect::DenseActivity;
use crate::parallel::Executor;
use crate::refine::DenseCandidate;
use crate::stats::Cdf;

/// One row of Table II: wash trading on a marketplace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketplaceWashRow {
    /// Marketplace name (or "Off-market" for direct transfers).
    pub name: String,
    /// Number of distinct NFTs affected.
    pub nfts: usize,
    /// Number of confirmed activities.
    pub activities: usize,
    /// Wash-traded volume in ETH.
    pub volume_eth: f64,
    /// Wash-traded volume in USD at trade time.
    pub volume_usd: f64,
    /// Wash volume as a share of the marketplace's total volume (0–1);
    /// `None` for off-market activity, which has no marketplace total.
    pub share_of_marketplace_volume: Option<f64>,
}

/// Fig. 4 data: the lifetime distribution of activities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeStats {
    /// Empirical CDF of activity lifetimes, in days.
    pub cdf_days: Cdf,
    /// Fraction of activities lasting at most one day.
    pub within_one_day: f64,
    /// Fraction of activities lasting less than ten days.
    pub within_ten_days: f64,
}

/// Fig. 5 data: wash-trading occurrences relative to collection creation, for
/// the collections with the most affected NFTs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionTimeline {
    /// The collection contract.
    pub collection: Address,
    /// Timestamp of the first observed transfer of the collection (its
    /// creation, as seen on chain).
    pub created_at: Timestamp,
    /// Number of distinct NFTs of the collection affected by wash trading.
    pub affected_nfts: usize,
    /// Wash-traded volume on the collection, in USD.
    pub volume_usd: f64,
    /// Timestamps of the confirmed activities (first trade of each).
    pub activity_times: Vec<Timestamp>,
}

/// Fig. 6 / Fig. 7 data: participation and shape of the activities.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PatternStats {
    /// Histogram of the number of participating accounts: index 0 holds
    /// one-account activities, …, index 4 holds five-account activities,
    /// index 5 holds six or more.
    pub accounts_histogram: [usize; 6],
    /// Occurrences per catalogued Fig. 7 pattern id.
    pub pattern_occurrences: HashMap<usize, usize>,
    /// Activities whose shape is not in the 12-pattern catalogue.
    pub uncatalogued: usize,
    /// Fraction of activities performed by exactly two accounts.
    pub two_account_fraction: f64,
    /// Fraction of activities that are pure self-trades (pattern 0).
    pub self_trade_fraction: f64,
}

/// §V-D data: serial wash traders.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SerialTraderStats {
    /// Total accounts involved in confirmed activities.
    pub total_accounts: usize,
    /// Accounts involved in two or more activities.
    pub serial_accounts: usize,
    /// Activities involving at least one serial account.
    pub activities_with_serials: usize,
    /// Total confirmed activities.
    pub total_activities: usize,
    /// Mean number of activities per serial account.
    pub mean_activities_per_serial: f64,
    /// Maximum number of activities a single account participates in.
    pub max_activities_per_account: usize,
    /// Fraction of serial accounts that hit the same collection repeatedly.
    pub same_collection_fraction: f64,
    /// Fraction of serial accounts that collaborate exclusively with other
    /// serial accounts.
    pub exclusive_collaboration_fraction: f64,
}

/// The full §V characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Total confirmed activities.
    pub total_activities: usize,
    /// Total wash-traded volume in USD.
    pub total_volume_usd: f64,
    /// Total wash-traded volume in ETH.
    pub total_volume_eth: f64,
    /// Table II rows, sorted by wash volume.
    pub per_marketplace: Vec<MarketplaceWashRow>,
    /// Fig. 3 data: per-marketplace CDFs of activity volume (USD), plus the
    /// volume CDF of unaffected (legit) trading.
    pub volume_cdfs: HashMap<String, Cdf>,
    /// Fig. 4 data.
    pub lifetimes: LifetimeStats,
    /// Fig. 5 data (top collections by affected NFTs).
    pub collection_timelines: Vec<CollectionTimeline>,
    /// Fig. 6 / Fig. 7 data.
    pub patterns: PatternStats,
    /// §V-D data.
    pub serial_traders: SerialTraderStats,
    /// §V-B: fraction of activities whose NFT was acquired the same day the
    /// manipulation started, and within 14 days.
    pub acquired_same_day_fraction: f64,
    /// Fraction acquired at most 14 days before the first wash trade.
    pub acquired_within_two_weeks_fraction: f64,
}

/// The shape (distinct directed edges over local positions) of a candidate's
/// internal trading, used for pattern classification. Positions are indices
/// into the candidate's address-sorted account list.
pub fn component_shape(candidate: &DenseCandidate) -> Vec<(usize, usize)> {
    crate::refine::edge_shape(
        &candidate.accounts,
        candidate.internal_edges.iter().map(|(from, to, _)| (*from, *to)),
    )
}

/// The expensive per-activity leaf values of the §V characterization: USD
/// pricing of the internal edges, dominant-marketplace attribution, pattern
/// classification and the acquisition-lead scan over the NFT's rows.
///
/// Facts are a pure function of the candidate and its NFT's (immutable,
/// append-only) transfer history, so the streaming analyzer caches them per
/// candidate and recomputes them only when the NFT's graph changes; the
/// final reduce ([`characterize_from_parts`]) then replays the batch fold
/// over cached leaves — same values, same order, bit-identical floats.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityFacts {
    /// Resolved dominant-marketplace name (`"Off-market"` when none).
    pub market_name: String,
    /// USD value of the internal edges, folded in edge order.
    pub volume_usd: f64,
    /// ETH volume of the candidate.
    pub volume_eth: f64,
    /// Lifetime in whole days, as the CDF sample.
    pub lifetime_days: f64,
    /// First internal trade (collection-timeline sample).
    pub first_trade: Timestamp,
    /// The NFT's collection contract.
    pub collection: Address,
    /// Catalogued Fig. 7 pattern id; `None` when uncatalogued.
    pub pattern: Option<usize>,
    /// Days between acquisition and the first wash trade; `None` when no
    /// acquiring transfer precedes the activity.
    pub acquisition_days: Option<u64>,
}

/// USD value of a candidate's internal edges, folded in edge order — the one
/// per-activity volume fold every consumer (per-market rows, collection
/// timelines) shares.
pub fn activity_usd_volume(candidate: &DenseCandidate, oracle: &PriceOracle) -> f64 {
    candidate
        .internal_edges
        .iter()
        .map(|(_, _, edge)| oracle.wei_to_usd(edge.price, edge.timestamp).unwrap_or(0.0))
        .sum()
}

/// Compute the [`ActivityFacts`] for one candidate — the per-activity half
/// of the two-level characterization.
pub fn activity_facts(
    candidate: &DenseCandidate,
    dataset: &Dataset,
    directory: &MarketplaceDirectory,
    oracle: &PriceOracle,
    catalogue: &PatternCatalogue,
) -> ActivityFacts {
    let interner = &dataset.interner;
    let columns = &dataset.columns;
    let market_name = candidate
        .dominant_marketplace(interner)
        .and_then(|id| directory.by_contract(interner.market(id)))
        .map(|info| info.name.clone())
        .unwrap_or_else(|| "Off-market".to_string());

    // Acquisition lead time: last transfer into the component from outside
    // (or the mint) before the first internal trade. Component membership is
    // a linear probe of the (tiny) account list — no per-activity set.
    let accounts = &candidate.accounts;
    let acquisition_days = columns
        .rows_of(candidate.nft)
        .iter()
        .filter(|&&row| {
            let i = row as usize;
            accounts.contains(&columns.to[i])
                && !accounts.contains(&columns.from[i])
                && columns.timestamp[i] <= candidate.first_trade
        })
        .map(|&row| columns.timestamp[row as usize])
        .max()
        .map(|acquired_at| candidate.first_trade.days_since(acquired_at));

    let shape = component_shape(candidate);
    let pattern = catalogue.classify(accounts.len(), &shape).map(|PatternId(id)| id);

    ActivityFacts {
        market_name,
        volume_usd: activity_usd_volume(candidate, oracle),
        volume_eth: candidate.volume.to_eth(),
        lifetime_days: candidate.lifetime_days() as f64,
        first_trade: candidate.first_trade,
        collection: interner.nft(candidate.nft).contract,
        pattern,
        acquisition_days,
    }
}

/// The dataset-level inputs of the characterization: per-marketplace totals
/// (Table I), the unaffected-trading volume CDF (Fig. 3 baseline) and
/// collection creation times (Fig. 5). The batch path builds these by
/// scanning the columns ([`characterize_baseline`]); the streaming analyzer
/// maintains each one incrementally and hands the maintained values in.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeBaseline {
    /// Marketplace name → total (wash + legit) volume in USD.
    pub market_totals: HashMap<String, f64>,
    /// CDF of per-transfer USD volumes outside the wash set.
    pub legit_volume_cdf: Cdf,
    /// Collection contract → timestamp of its first observed transfer.
    pub collection_created: HashMap<Address, Timestamp>,
}

/// Build the [`CharacterizeBaseline`] by scanning the dataset — the batch
/// path. The per-row USD pricing of the legit-volume scan fans out over
/// `executor` in row-order-preserving chunks, so the collected vector (and
/// with it the CDF) is identical at any thread count.
pub fn characterize_baseline(
    activities: &[DenseActivity],
    dataset: &Dataset,
    directory: &MarketplaceDirectory,
    oracle: &PriceOracle,
    executor: &Executor,
) -> CharacterizeBaseline {
    let interner = &dataset.interner;
    let columns = &dataset.columns;
    let market_totals: HashMap<String, f64> = dataset
        .marketplace_volumes_with(directory, oracle, executor)
        .into_iter()
        .map(|row| (row.name, row.volume_usd))
        .collect();

    let wash_txs: HashSet<ethsim::TxHash> = activities
        .iter()
        .flat_map(|a| a.candidate.internal_edges.iter().map(|(_, _, e)| e.tx_hash))
        .collect();
    // One linear pass over the columns; the CDF sorts, so the (fixed) row
    // order only needs to be deterministic, which chain order is. The pass
    // is chunked over the executor with chunk results concatenated in row
    // order — the same vector the serial scan built.
    let chunks: Vec<std::ops::Range<usize>> = {
        let chunk = (columns.len() / (executor.threads().max(1) * 4)).max(4096);
        (0..columns.len())
            .step_by(chunk)
            .map(|start| start..(start + chunk).min(columns.len()))
            .collect()
    };
    let legit_volumes: Vec<f64> = executor
        .map(&chunks, |range| {
            range
                .clone()
                .filter(|&row| {
                    !wash_txs.contains(&columns.tx_hash[row]) && !columns.price[row].is_zero()
                })
                .map(|row| {
                    oracle.wei_to_usd(columns.price[row], columns.timestamp[row]).unwrap_or(0.0)
                })
                .collect::<Vec<f64>>()
        })
        .into_iter()
        .flatten()
        .collect();

    // Fig. 5 input: per-NFT histories are chronological, so each NFT's first
    // row carries its earliest timestamp; the per-collection minimum folds
    // over those.
    let collection_created: HashMap<Address, Timestamp> = {
        let mut created: HashMap<Address, Timestamp> = HashMap::new();
        for key in 0..interner.nft_count() as u32 {
            let Some(&first_row) = columns.rows_of(NftKey(key)).first() else {
                continue;
            };
            let first_seen = columns.timestamp[first_row as usize];
            let entry = created.entry(interner.nft(NftKey(key)).contract).or_insert(first_seen);
            if first_seen < *entry {
                *entry = first_seen;
            }
        }
        created
    };

    CharacterizeBaseline {
        market_totals,
        legit_volume_cdf: Cdf::new(legit_volumes),
        collection_created,
    }
}

/// Produce the §V characterization of the confirmed activities.
///
/// `dataset` supplies the interner, the unaffected-trading baseline (Fig. 3)
/// and collection creation times (Fig. 5); `directory` and `oracle` provide
/// marketplace attribution and USD conversion.
pub fn characterize(
    activities: &[DenseActivity],
    dataset: &Dataset,
    directory: &MarketplaceDirectory,
    oracle: &PriceOracle,
) -> Characterization {
    characterize_with(activities, dataset, directory, oracle, &Executor::new(1))
}

/// [`characterize`] with the per-activity facts and the per-row baseline
/// pricing fanned out over `executor`. Facts come back in activity order and
/// every float fold runs in the final reduce exactly as the serial path
/// folds it, so the result is bit-identical at any thread count.
pub fn characterize_with(
    activities: &[DenseActivity],
    dataset: &Dataset,
    directory: &MarketplaceDirectory,
    oracle: &PriceOracle,
    executor: &Executor,
) -> Characterization {
    let catalogue = PatternCatalogue::paper();
    let facts = executor.map(activities, |activity| {
        activity_facts(&activity.candidate, dataset, directory, oracle, &catalogue)
    });
    let baseline = characterize_baseline(activities, dataset, directory, oracle, executor);
    characterize_from_parts(activities, &facts, baseline)
}

/// The final reduce of the two-level characterization: fold per-activity
/// [`ActivityFacts`] (in activity order — the sorted confirmed order both
/// pipelines share) and the dataset-level [`CharacterizeBaseline`] into the
/// [`Characterization`]. Every floating-point fold here accumulates cached
/// leaf values in exactly the order the one-level path accumulated freshly
/// computed ones, so batch, batch-parallel and streaming-incremental callers
/// produce bit-identical reports.
pub fn characterize_from_parts(
    activities: &[DenseActivity],
    facts: &[ActivityFacts],
    baseline: CharacterizeBaseline,
) -> Characterization {
    assert_eq!(activities.len(), facts.len(), "one facts record per activity");
    let CharacterizeBaseline { market_totals, legit_volume_cdf, collection_created } = baseline;

    // --- Volumes per marketplace (Table II) and per activity (Fig. 3). ---
    struct MarketAccumulator {
        nfts: BitSet,
        activities: usize,
        volume_eth: f64,
        volume_usd: f64,
        activity_volumes_usd: Vec<f64>,
    }
    let mut per_market: HashMap<String, MarketAccumulator> = HashMap::new();
    let mut total_volume_usd = 0.0;
    let mut total_volume_eth = 0.0;

    for (activity, facts) in activities.iter().zip(facts) {
        total_volume_usd += facts.volume_usd;
        total_volume_eth += facts.volume_eth;
        let accumulator =
            per_market.entry(facts.market_name.clone()).or_insert_with(|| MarketAccumulator {
                nfts: BitSet::new(),
                activities: 0,
                volume_eth: 0.0,
                volume_usd: 0.0,
                activity_volumes_usd: Vec::new(),
            });
        accumulator.nfts.insert(activity.nft().index());
        accumulator.activities += 1;
        accumulator.volume_eth += facts.volume_eth;
        accumulator.volume_usd += facts.volume_usd;
        accumulator.activity_volumes_usd.push(facts.volume_usd);
    }

    let mut per_marketplace: Vec<MarketplaceWashRow> = per_market
        .iter()
        .map(|(name, accumulator)| MarketplaceWashRow {
            name: name.clone(),
            nfts: accumulator.nfts.len(),
            activities: accumulator.activities,
            volume_eth: accumulator.volume_eth,
            volume_usd: accumulator.volume_usd,
            share_of_marketplace_volume: market_totals.get(name).map(|total| {
                if *total > 0.0 {
                    accumulator.volume_usd / total
                } else {
                    0.0
                }
            }),
        })
        .collect();
    per_marketplace
        .sort_by(|a, b| b.volume_usd.total_cmp(&a.volume_usd).then_with(|| a.name.cmp(&b.name)));

    // Fig. 3: per-marketplace activity volume CDFs plus the legit baseline.
    let mut volume_cdfs: HashMap<String, Cdf> = per_market
        .into_iter()
        .map(|(name, accumulator)| (name, Cdf::new(accumulator.activity_volumes_usd)))
        .collect();
    volume_cdfs.insert("Volume w/o wash trading".to_string(), legit_volume_cdf);

    // --- Temporal analysis (Fig. 4, §V-B, Fig. 5). ---
    let cdf_days = Cdf::new(facts.iter().map(|f| f.lifetime_days));
    let lifetimes = LifetimeStats {
        within_one_day: cdf_days.fraction_at_most(1.0),
        within_ten_days: cdf_days.fraction_at_most(9.0),
        cdf_days,
    };

    let mut acquired_same_day = 0usize;
    let mut acquired_within_two_weeks = 0usize;
    for facts in facts {
        if let Some(days) = facts.acquisition_days {
            if days == 0 {
                acquired_same_day += 1;
            }
            if days <= 14 {
                acquired_within_two_weeks += 1;
            }
        }
    }
    let acquired_base = activities.len().max(1) as f64;

    struct TimelineAccumulator {
        nfts: BitSet,
        volume_usd: f64,
        times: Vec<Timestamp>,
    }
    let mut per_collection: HashMap<Address, TimelineAccumulator> = HashMap::new();
    for (activity, facts) in activities.iter().zip(facts) {
        let accumulator = per_collection.entry(facts.collection).or_insert_with(|| {
            TimelineAccumulator { nfts: BitSet::new(), volume_usd: 0.0, times: Vec::new() }
        });
        accumulator.nfts.insert(activity.nft().index());
        accumulator.volume_usd += facts.volume_usd;
        accumulator.times.push(facts.first_trade);
    }
    let mut collection_timelines: Vec<CollectionTimeline> = per_collection
        .into_iter()
        .map(|(collection, accumulator)| {
            let mut activity_times = accumulator.times;
            activity_times.sort();
            CollectionTimeline {
                collection,
                created_at: collection_created
                    .get(&collection)
                    .copied()
                    .unwrap_or(Timestamp::from_secs(0)),
                affected_nfts: accumulator.nfts.len(),
                volume_usd: accumulator.volume_usd,
                activity_times,
            }
        })
        .collect();
    // Tiebreak on the collection address: `per_collection` is a HashMap, so
    // without it equal-count collections would rank in random order run to run.
    collection_timelines
        .sort_by_key(|timeline| (std::cmp::Reverse(timeline.affected_nfts), timeline.collection));
    collection_timelines.truncate(10);

    // --- Patterns (Fig. 6 / Fig. 7). ---
    let mut patterns = PatternStats::default();
    let mut self_trades = 0usize;
    let mut two_accounts = 0usize;
    for (activity, facts) in activities.iter().zip(facts) {
        let accounts = activity.accounts().len();
        let bucket = accounts.clamp(1, 6) - 1;
        patterns.accounts_histogram[bucket] += 1;
        if accounts == 2 {
            two_accounts += 1;
        }
        match facts.pattern {
            Some(id) => {
                *patterns.pattern_occurrences.entry(id).or_insert(0) += 1;
                if id == 0 {
                    self_trades += 1;
                }
            }
            None => patterns.uncatalogued += 1,
        }
    }
    let total = activities.len().max(1) as f64;
    patterns.two_account_fraction = two_accounts as f64 / total;
    patterns.self_trade_fraction = self_trades as f64 / total;

    // --- Serial traders (§V-D). --- Participation is gathered only for the
    // accounts that actually appear in activities (a table over the whole
    // interner would cost O(total accounts) per call — per *epoch* in the
    // streaming reassembly): sort the (account, activity) pairs and group,
    // giving per-account activity lists in ascending account-id order.
    // "Serial" membership stays a bitset over the dense id space.
    let mut participation: Vec<(usize, usize)> = activities
        .iter()
        .enumerate()
        .flat_map(|(index, activity)| {
            activity.accounts().iter().map(move |account| (account.index(), index))
        })
        .collect();
    participation.sort_unstable();
    let groups: Vec<(usize, &[(usize, usize)])> =
        participation.chunk_by(|a, b| a.0 == b.0).map(|group| (group[0].0, group)).collect();
    let serials: BitSet =
        groups.iter().filter(|(_, group)| group.len() >= 2).map(|(account, _)| *account).collect();
    let activities_with_serials = activities
        .iter()
        .filter(|a| a.accounts().iter().any(|account| serials.contains(account.index())))
        .count();
    let mean_activities_per_serial = if serials.is_empty() {
        0.0
    } else {
        groups
            .iter()
            .filter(|(_, group)| group.len() >= 2)
            .map(|(_, group)| group.len())
            .sum::<usize>() as f64
            / serials.len() as f64
    };
    let max_activities_per_account = groups.iter().map(|(_, group)| group.len()).max().unwrap_or(0);
    let same_collection_serials = groups
        .iter()
        .filter(|(_, group)| group.len() >= 2)
        .filter(|(_, group)| {
            let collections: HashSet<Address> =
                group.iter().map(|&(_, index)| facts[index].collection).collect();
            collections.len() < group.len()
        })
        .count();
    let exclusive_collaborators = groups
        .iter()
        .filter(|(_, group)| group.len() >= 2)
        .filter(|(account, group)| {
            group.iter().all(|&(_, index)| {
                activities[index]
                    .accounts()
                    .iter()
                    .all(|other| other.index() == *account || serials.contains(other.index()))
            })
        })
        .count();
    let total_accounts = groups.len();
    let serial_traders = SerialTraderStats {
        total_accounts,
        serial_accounts: serials.len(),
        activities_with_serials,
        total_activities: activities.len(),
        mean_activities_per_serial,
        max_activities_per_account,
        same_collection_fraction: if serials.is_empty() {
            0.0
        } else {
            same_collection_serials as f64 / serials.len() as f64
        },
        exclusive_collaboration_fraction: if serials.is_empty() {
            0.0
        } else {
            exclusive_collaborators as f64 / serials.len() as f64
        },
    };

    Characterization {
        total_activities: activities.len(),
        total_volume_usd,
        total_volume_eth,
        per_marketplace,
        volume_cdfs,
        lifetimes,
        collection_timelines,
        patterns,
        serial_traders,
        acquired_same_day_fraction: acquired_same_day as f64 / acquired_base,
        acquired_within_two_weeks_fraction: acquired_within_two_weeks as f64 / acquired_base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::MethodSet;
    use crate::txgraph::DenseTradeEdge;
    use ethsim::{TxHash, Wei};
    use ids::AccountId;
    use tokens::NftId;

    fn activity(
        dataset: &mut Dataset,
        collection: &str,
        token: u64,
        accounts: &[&str],
        edges: &[(usize, usize, f64)],
        start_secs: u64,
        lifetime_days: u64,
    ) -> DenseActivity {
        let accounts: Vec<AccountId> = {
            let mut addresses: Vec<Address> =
                accounts.iter().map(|s| Address::derived(s)).collect();
            addresses.sort();
            addresses.into_iter().map(|a| dataset.interner.intern_account(a)).collect()
        };
        let nft = dataset.interner.intern_nft(NftId::new(Address::derived(collection), token));
        let internal_edges: Vec<(AccountId, AccountId, DenseTradeEdge)> = edges
            .iter()
            .enumerate()
            .map(|(i, (from, to, price))| {
                (
                    accounts[*from],
                    accounts[*to],
                    DenseTradeEdge {
                        timestamp: Timestamp::from_secs(
                            start_secs
                                + i as u64 * lifetime_days * 86_400
                                    / (edges.len() as u64 - 1).max(1),
                        ),
                        tx_hash: TxHash::hash_of(format!("{collection}-{token}-{i}").as_bytes()),
                        marketplace: None,
                        price: Wei::from_eth(*price),
                    },
                )
            })
            .collect();
        let first = internal_edges.iter().map(|(_, _, e)| e.timestamp).min().unwrap();
        let last = internal_edges.iter().map(|(_, _, e)| e.timestamp).max().unwrap();
        DenseActivity {
            candidate: DenseCandidate {
                nft,
                accounts,
                volume: internal_edges.iter().map(|(_, _, e)| e.price).sum(),
                first_trade: first,
                last_trade: last,
                internal_edges,
            },
            methods: MethodSet { zero_risk: true, ..MethodSet::default() },
        }
    }

    fn fixtures() -> (Dataset, Vec<DenseActivity>) {
        let mut dataset = Dataset::default();
        let activities = vec![
            // Round trip by two accounts, one-day lifetime.
            activity(
                &mut dataset,
                "meebits",
                1,
                &["s1", "s2"],
                &[(0, 1, 1.0), (1, 0, 1.0)],
                1_000_000,
                0,
            ),
            // The same pair hits the same collection again (serial traders).
            activity(
                &mut dataset,
                "meebits",
                2,
                &["s1", "s2"],
                &[(0, 1, 2.0), (1, 0, 2.0)],
                2_000_000,
                3,
            ),
            // A 3-cycle by unrelated accounts, longer lifetime.
            activity(
                &mut dataset,
                "loot",
                7,
                &["t1", "t2", "t3"],
                &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)],
                3_000_000,
                20,
            ),
            // A self-trade.
            activity(&mut dataset, "loot", 9, &["solo"], &[(0, 0, 5.0)], 4_000_000, 0),
        ];
        (dataset, activities)
    }

    fn directory_and_oracle() -> (MarketplaceDirectory, PriceOracle) {
        (MarketplaceDirectory::new(), PriceOracle::paper_presets(Timestamp::from_secs(0), 400, 1))
    }

    #[test]
    fn pattern_and_account_statistics() {
        let (dataset, activities) = fixtures();
        let (directory, oracle) = directory_and_oracle();
        let characterization = characterize(&activities, &dataset, &directory, &oracle);
        assert_eq!(characterization.total_activities, 4);
        assert_eq!(characterization.patterns.accounts_histogram[0], 1); // self-trade
        assert_eq!(characterization.patterns.accounts_histogram[1], 2); // pairs
        assert_eq!(characterization.patterns.accounts_histogram[2], 1); // triple
        assert_eq!(characterization.patterns.pattern_occurrences.get(&1), Some(&2));
        assert_eq!(characterization.patterns.pattern_occurrences.get(&2), Some(&1));
        assert_eq!(characterization.patterns.pattern_occurrences.get(&0), Some(&1));
        assert_eq!(characterization.patterns.uncatalogued, 0);
        assert!((characterization.patterns.two_account_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lifetime_statistics() {
        let (dataset, activities) = fixtures();
        let (directory, oracle) = directory_and_oracle();
        let characterization = characterize(&activities, &dataset, &directory, &oracle);
        // Two activities are same-day, one lasts 3 days (within ten), one 20.
        assert!((characterization.lifetimes.within_one_day - 0.5).abs() < 1e-9);
        assert!((characterization.lifetimes.within_ten_days - 0.75).abs() < 1e-9);
    }

    #[test]
    fn serial_trader_statistics() {
        let (dataset, activities) = fixtures();
        let (directory, oracle) = directory_and_oracle();
        let characterization = characterize(&activities, &dataset, &directory, &oracle);
        let serial = &characterization.serial_traders;
        assert_eq!(serial.total_accounts, 6);
        assert_eq!(serial.serial_accounts, 2); // s1 and s2
        assert_eq!(serial.activities_with_serials, 2);
        assert_eq!(serial.max_activities_per_account, 2);
        assert!((serial.mean_activities_per_serial - 2.0).abs() < 1e-9);
        // s1/s2 repeatedly target the same collection and only work together.
        assert!((serial.same_collection_fraction - 1.0).abs() < 1e-9);
        assert!((serial.exclusive_collaboration_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn marketplace_rows_cover_off_market_activity() {
        let (dataset, activities) = fixtures();
        let (directory, oracle) = directory_and_oracle();
        let characterization = characterize(&activities, &dataset, &directory, &oracle);
        assert_eq!(characterization.per_marketplace.len(), 1);
        assert_eq!(characterization.per_marketplace[0].name, "Off-market");
        assert_eq!(characterization.per_marketplace[0].activities, 4);
        assert!(characterization.total_volume_usd > 0.0);
        assert!(characterization.volume_cdfs.contains_key("Off-market"));
    }

    #[test]
    fn collection_timelines_rank_by_affected_nfts() {
        let (dataset, activities) = fixtures();
        let (directory, oracle) = directory_and_oracle();
        let characterization = characterize(&activities, &dataset, &directory, &oracle);
        assert_eq!(characterization.collection_timelines.len(), 2);
        assert!(
            characterization.collection_timelines[0].affected_nfts
                >= characterization.collection_timelines[1].affected_nfts
        );
    }

    #[test]
    fn empty_input_produces_empty_characterization() {
        let dataset = Dataset::default();
        let (directory, oracle) = directory_and_oracle();
        let characterization = characterize(&[], &dataset, &directory, &oracle);
        assert_eq!(characterization.total_activities, 0);
        assert_eq!(characterization.total_volume_usd, 0.0);
        assert!(characterization.per_marketplace.is_empty());
        assert_eq!(characterization.serial_traders.serial_accounts, 0);
    }
}
