//! Characterization of confirmed wash-trading activities (§V of the paper):
//! volumes per marketplace and collection, temporal behaviour, participation
//! patterns and serial wash traders.

use std::collections::{HashMap, HashSet};

use ethsim::{Address, Timestamp};
use graphlib::{PatternCatalogue, PatternId};
use marketplace::MarketplaceDirectory;
use oracle::PriceOracle;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::detect::ConfirmedActivity;
use crate::refine::Candidate;
use crate::stats::Cdf;

/// One row of Table II: wash trading on a marketplace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketplaceWashRow {
    /// Marketplace name (or "Off-market" for direct transfers).
    pub name: String,
    /// Number of distinct NFTs affected.
    pub nfts: usize,
    /// Number of confirmed activities.
    pub activities: usize,
    /// Wash-traded volume in ETH.
    pub volume_eth: f64,
    /// Wash-traded volume in USD at trade time.
    pub volume_usd: f64,
    /// Wash volume as a share of the marketplace's total volume (0–1);
    /// `None` for off-market activity, which has no marketplace total.
    pub share_of_marketplace_volume: Option<f64>,
}

/// Fig. 4 data: the lifetime distribution of activities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeStats {
    /// Empirical CDF of activity lifetimes, in days.
    pub cdf_days: Cdf,
    /// Fraction of activities lasting at most one day.
    pub within_one_day: f64,
    /// Fraction of activities lasting less than ten days.
    pub within_ten_days: f64,
}

/// Fig. 5 data: wash-trading occurrences relative to collection creation, for
/// the collections with the most affected NFTs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionTimeline {
    /// The collection contract.
    pub collection: Address,
    /// Timestamp of the first observed transfer of the collection (its
    /// creation, as seen on chain).
    pub created_at: Timestamp,
    /// Number of distinct NFTs of the collection affected by wash trading.
    pub affected_nfts: usize,
    /// Wash-traded volume on the collection, in USD.
    pub volume_usd: f64,
    /// Timestamps of the confirmed activities (first trade of each).
    pub activity_times: Vec<Timestamp>,
}

/// Fig. 6 / Fig. 7 data: participation and shape of the activities.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PatternStats {
    /// Histogram of the number of participating accounts: index 0 holds
    /// one-account activities, …, index 4 holds five-account activities,
    /// index 5 holds six or more.
    pub accounts_histogram: [usize; 6],
    /// Occurrences per catalogued Fig. 7 pattern id.
    pub pattern_occurrences: HashMap<usize, usize>,
    /// Activities whose shape is not in the 12-pattern catalogue.
    pub uncatalogued: usize,
    /// Fraction of activities performed by exactly two accounts.
    pub two_account_fraction: f64,
    /// Fraction of activities that are pure self-trades (pattern 0).
    pub self_trade_fraction: f64,
}

/// §V-D data: serial wash traders.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SerialTraderStats {
    /// Total accounts involved in confirmed activities.
    pub total_accounts: usize,
    /// Accounts involved in two or more activities.
    pub serial_accounts: usize,
    /// Activities involving at least one serial account.
    pub activities_with_serials: usize,
    /// Total confirmed activities.
    pub total_activities: usize,
    /// Mean number of activities per serial account.
    pub mean_activities_per_serial: f64,
    /// Maximum number of activities a single account participates in.
    pub max_activities_per_account: usize,
    /// Fraction of serial accounts that hit the same collection repeatedly.
    pub same_collection_fraction: f64,
    /// Fraction of serial accounts that collaborate exclusively with other
    /// serial accounts.
    pub exclusive_collaboration_fraction: f64,
}

/// The full §V characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Total confirmed activities.
    pub total_activities: usize,
    /// Total wash-traded volume in USD.
    pub total_volume_usd: f64,
    /// Total wash-traded volume in ETH.
    pub total_volume_eth: f64,
    /// Table II rows, sorted by wash volume.
    pub per_marketplace: Vec<MarketplaceWashRow>,
    /// Fig. 3 data: per-marketplace CDFs of activity volume (USD), plus the
    /// volume CDF of unaffected (legit) trading.
    pub volume_cdfs: HashMap<String, Cdf>,
    /// Fig. 4 data.
    pub lifetimes: LifetimeStats,
    /// Fig. 5 data (top collections by affected NFTs).
    pub collection_timelines: Vec<CollectionTimeline>,
    /// Fig. 6 / Fig. 7 data.
    pub patterns: PatternStats,
    /// §V-D data.
    pub serial_traders: SerialTraderStats,
    /// §V-B: fraction of activities whose NFT was acquired the same day the
    /// manipulation started, and within 14 days.
    pub acquired_same_day_fraction: f64,
    /// Fraction acquired at most 14 days before the first wash trade.
    pub acquired_within_two_weeks_fraction: f64,
}

/// The shape (distinct directed edges over local positions) of a candidate's
/// internal trading, used for pattern classification.
pub fn component_shape(candidate: &Candidate) -> Vec<(usize, usize)> {
    let position: HashMap<Address, usize> =
        candidate.accounts.iter().enumerate().map(|(i, a)| (*a, i)).collect();
    let mut shape: Vec<(usize, usize)> = candidate
        .internal_edges
        .iter()
        .map(|(from, to, _)| (position[from], position[to]))
        .collect();
    shape.sort_unstable();
    shape.dedup();
    shape
}

/// Produce the §V characterization of the confirmed activities.
///
/// `dataset` supplies the unaffected-trading baseline (Fig. 3) and collection
/// creation times (Fig. 5); `directory` and `oracle` provide marketplace
/// attribution and USD conversion.
pub fn characterize(
    activities: &[ConfirmedActivity],
    dataset: &Dataset,
    directory: &MarketplaceDirectory,
    oracle: &PriceOracle,
) -> Characterization {
    let catalogue = PatternCatalogue::paper();

    // --- Volumes per marketplace (Table II) and per activity (Fig. 3). ---
    let market_totals: HashMap<String, f64> = dataset
        .marketplace_volumes(directory, oracle)
        .into_iter()
        .map(|row| (row.name, row.volume_usd))
        .collect();

    struct MarketAccumulator {
        nfts: HashSet<tokens::NftId>,
        activities: usize,
        volume_eth: f64,
        volume_usd: f64,
        activity_volumes_usd: Vec<f64>,
    }
    let mut per_market: HashMap<String, MarketAccumulator> = HashMap::new();
    let mut total_volume_usd = 0.0;
    let mut total_volume_eth = 0.0;

    let usd_volume_of = |activity: &ConfirmedActivity| -> f64 {
        activity
            .candidate
            .internal_edges
            .iter()
            .map(|(_, _, edge)| oracle.wei_to_usd(edge.price, edge.timestamp).unwrap_or(0.0))
            .sum()
    };

    for activity in activities {
        let name = activity
            .candidate
            .dominant_marketplace()
            .and_then(|contract| directory.by_contract(contract))
            .map(|info| info.name.clone())
            .unwrap_or_else(|| "Off-market".to_string());
        let volume_usd = usd_volume_of(activity);
        let volume_eth = activity.candidate.volume.to_eth();
        total_volume_usd += volume_usd;
        total_volume_eth += volume_eth;
        let accumulator = per_market.entry(name).or_insert_with(|| MarketAccumulator {
            nfts: HashSet::new(),
            activities: 0,
            volume_eth: 0.0,
            volume_usd: 0.0,
            activity_volumes_usd: Vec::new(),
        });
        accumulator.nfts.insert(activity.nft());
        accumulator.activities += 1;
        accumulator.volume_eth += volume_eth;
        accumulator.volume_usd += volume_usd;
        accumulator.activity_volumes_usd.push(volume_usd);
    }

    let mut per_marketplace: Vec<MarketplaceWashRow> = per_market
        .iter()
        .map(|(name, accumulator)| MarketplaceWashRow {
            name: name.clone(),
            nfts: accumulator.nfts.len(),
            activities: accumulator.activities,
            volume_eth: accumulator.volume_eth,
            volume_usd: accumulator.volume_usd,
            share_of_marketplace_volume: market_totals.get(name).map(|total| {
                if *total > 0.0 {
                    accumulator.volume_usd / total
                } else {
                    0.0
                }
            }),
        })
        .collect();
    per_marketplace
        .sort_by(|a, b| b.volume_usd.total_cmp(&a.volume_usd).then_with(|| a.name.cmp(&b.name)));

    // Fig. 3: per-marketplace activity volume CDFs plus a legit baseline.
    let mut volume_cdfs: HashMap<String, Cdf> = per_market
        .into_iter()
        .map(|(name, accumulator)| (name, Cdf::new(accumulator.activity_volumes_usd)))
        .collect();
    let wash_txs: HashSet<ethsim::TxHash> = activities
        .iter()
        .flat_map(|a| a.candidate.internal_edges.iter().map(|(_, _, e)| e.tx_hash))
        .collect();
    let legit_volumes: Vec<f64> = dataset
        .transfers_by_nft
        .values()
        .flatten()
        .filter(|t| !wash_txs.contains(&t.tx_hash) && !t.price.is_zero())
        .map(|t| oracle.wei_to_usd(t.price, t.timestamp).unwrap_or(0.0))
        .collect();
    volume_cdfs.insert("Volume w/o wash trading".to_string(), Cdf::new(legit_volumes));

    // --- Temporal analysis (Fig. 4, §V-B, Fig. 5). ---
    let lifetimes_days: Vec<f64> =
        activities.iter().map(|a| a.candidate.lifetime_days() as f64).collect();
    let cdf_days = Cdf::new(lifetimes_days);
    let lifetimes = LifetimeStats {
        within_one_day: cdf_days.fraction_at_most(1.0),
        within_ten_days: cdf_days.fraction_at_most(9.0),
        cdf_days,
    };

    // Acquisition lead time: last transfer into the component from outside
    // (or the mint) before the first internal trade.
    let mut acquired_same_day = 0usize;
    let mut acquired_within_two_weeks = 0usize;
    for activity in activities {
        let accounts: HashSet<Address> = activity.candidate.accounts.iter().copied().collect();
        let acquisition = dataset
            .transfers_by_nft
            .get(&activity.nft())
            .into_iter()
            .flatten()
            .filter(|t| {
                accounts.contains(&t.to)
                    && !accounts.contains(&t.from)
                    && t.timestamp <= activity.candidate.first_trade
            })
            .map(|t| t.timestamp)
            .max();
        if let Some(acquired_at) = acquisition {
            let days = activity.candidate.first_trade.days_since(acquired_at);
            if days == 0 {
                acquired_same_day += 1;
            }
            if days <= 14 {
                acquired_within_two_weeks += 1;
            }
        }
    }
    let acquired_base = activities.len().max(1) as f64;

    // Fig. 5: collection creation vs activity occurrences.
    let collection_created: HashMap<Address, Timestamp> = {
        let mut created: HashMap<Address, Timestamp> = HashMap::new();
        for transfers in dataset.transfers_by_nft.values() {
            for transfer in transfers {
                let entry = created.entry(transfer.nft.contract).or_insert(transfer.timestamp);
                if transfer.timestamp < *entry {
                    *entry = transfer.timestamp;
                }
            }
        }
        created
    };
    struct TimelineAccumulator {
        nfts: HashSet<tokens::NftId>,
        volume_usd: f64,
        times: Vec<Timestamp>,
    }
    let mut per_collection: HashMap<Address, TimelineAccumulator> = HashMap::new();
    for activity in activities {
        let accumulator = per_collection.entry(activity.nft().contract).or_insert_with(|| {
            TimelineAccumulator { nfts: HashSet::new(), volume_usd: 0.0, times: Vec::new() }
        });
        accumulator.nfts.insert(activity.nft());
        accumulator.volume_usd += usd_volume_of(activity);
        accumulator.times.push(activity.candidate.first_trade);
    }
    let mut collection_timelines: Vec<CollectionTimeline> = per_collection
        .into_iter()
        .map(|(collection, accumulator)| {
            let mut activity_times = accumulator.times;
            activity_times.sort();
            CollectionTimeline {
                collection,
                created_at: collection_created
                    .get(&collection)
                    .copied()
                    .unwrap_or(Timestamp::from_secs(0)),
                affected_nfts: accumulator.nfts.len(),
                volume_usd: accumulator.volume_usd,
                activity_times,
            }
        })
        .collect();
    // Tiebreak on the collection address: `per_collection` is a HashMap, so
    // without it equal-count collections would rank in random order run to run.
    collection_timelines
        .sort_by_key(|timeline| (std::cmp::Reverse(timeline.affected_nfts), timeline.collection));
    collection_timelines.truncate(10);

    // --- Patterns (Fig. 6 / Fig. 7). ---
    let mut patterns = PatternStats::default();
    let mut self_trades = 0usize;
    let mut two_accounts = 0usize;
    for activity in activities {
        let accounts = activity.candidate.accounts.len();
        let bucket = accounts.clamp(1, 6) - 1;
        patterns.accounts_histogram[bucket] += 1;
        if accounts == 2 {
            two_accounts += 1;
        }
        let shape = component_shape(&activity.candidate);
        match catalogue.classify(accounts, &shape) {
            Some(PatternId(id)) => {
                *patterns.pattern_occurrences.entry(id).or_insert(0) += 1;
                if id == 0 {
                    self_trades += 1;
                }
            }
            None => patterns.uncatalogued += 1,
        }
    }
    let total = activities.len().max(1) as f64;
    patterns.two_account_fraction = two_accounts as f64 / total;
    patterns.self_trade_fraction = self_trades as f64 / total;

    // --- Serial traders (§V-D). ---
    let mut activities_per_account: HashMap<Address, Vec<usize>> = HashMap::new();
    for (index, activity) in activities.iter().enumerate() {
        for account in &activity.candidate.accounts {
            activities_per_account.entry(*account).or_default().push(index);
        }
    }
    let serials: HashSet<Address> = activities_per_account
        .iter()
        .filter(|(_, list)| list.len() >= 2)
        .map(|(account, _)| *account)
        .collect();
    let activities_with_serials = activities
        .iter()
        .filter(|a| a.candidate.accounts.iter().any(|account| serials.contains(account)))
        .count();
    let mean_activities_per_serial = if serials.is_empty() {
        0.0
    } else {
        serials.iter().map(|account| activities_per_account[account].len()).sum::<usize>() as f64
            / serials.len() as f64
    };
    let max_activities_per_account =
        activities_per_account.values().map(|list| list.len()).max().unwrap_or(0);
    let same_collection_serials = serials
        .iter()
        .filter(|account| {
            let collections: HashSet<Address> = activities_per_account[*account]
                .iter()
                .map(|&index| activities[index].nft().contract)
                .collect();
            collections.len() < activities_per_account[*account].len()
        })
        .count();
    let exclusive_collaborators = serials
        .iter()
        .filter(|account| {
            activities_per_account[*account].iter().all(|&index| {
                activities[index]
                    .candidate
                    .accounts
                    .iter()
                    .all(|other| other == *account || serials.contains(other))
            })
        })
        .count();
    let serial_traders = SerialTraderStats {
        total_accounts: activities_per_account.len(),
        serial_accounts: serials.len(),
        activities_with_serials,
        total_activities: activities.len(),
        mean_activities_per_serial,
        max_activities_per_account,
        same_collection_fraction: if serials.is_empty() {
            0.0
        } else {
            same_collection_serials as f64 / serials.len() as f64
        },
        exclusive_collaboration_fraction: if serials.is_empty() {
            0.0
        } else {
            exclusive_collaborators as f64 / serials.len() as f64
        },
    };

    Characterization {
        total_activities: activities.len(),
        total_volume_usd,
        total_volume_eth,
        per_marketplace,
        volume_cdfs,
        lifetimes,
        collection_timelines,
        patterns,
        serial_traders,
        acquired_same_day_fraction: acquired_same_day as f64 / acquired_base,
        acquired_within_two_weeks_fraction: acquired_within_two_weeks as f64 / acquired_base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::MethodSet;
    use crate::refine::Candidate;
    use crate::txgraph::TradeEdge;
    use ethsim::{TxHash, Wei};
    use tokens::NftId;

    fn activity(
        collection: &str,
        token: u64,
        accounts: &[&str],
        edges: &[(usize, usize, f64)],
        start_secs: u64,
        lifetime_days: u64,
    ) -> ConfirmedActivity {
        let accounts: Vec<Address> = {
            let mut a: Vec<Address> = accounts.iter().map(|s| Address::derived(s)).collect();
            a.sort();
            a
        };
        let internal_edges: Vec<(Address, Address, TradeEdge)> = edges
            .iter()
            .enumerate()
            .map(|(i, (from, to, price))| {
                (
                    accounts[*from],
                    accounts[*to],
                    TradeEdge {
                        timestamp: Timestamp::from_secs(
                            start_secs
                                + i as u64 * lifetime_days * 86_400
                                    / (edges.len() as u64 - 1).max(1),
                        ),
                        tx_hash: TxHash::hash_of(format!("{collection}-{token}-{i}").as_bytes()),
                        marketplace: None,
                        price: Wei::from_eth(*price),
                    },
                )
            })
            .collect();
        let first = internal_edges.iter().map(|(_, _, e)| e.timestamp).min().unwrap();
        let last = internal_edges.iter().map(|(_, _, e)| e.timestamp).max().unwrap();
        ConfirmedActivity {
            candidate: Candidate {
                nft: NftId::new(Address::derived(collection), token),
                accounts,
                volume: internal_edges.iter().map(|(_, _, e)| e.price).sum(),
                first_trade: first,
                last_trade: last,
                internal_edges,
            },
            methods: MethodSet { zero_risk: true, ..MethodSet::default() },
        }
    }

    fn fixtures() -> Vec<ConfirmedActivity> {
        vec![
            // Round trip by two accounts, one-day lifetime.
            activity("meebits", 1, &["s1", "s2"], &[(0, 1, 1.0), (1, 0, 1.0)], 1_000_000, 0),
            // The same pair hits the same collection again (serial traders).
            activity("meebits", 2, &["s1", "s2"], &[(0, 1, 2.0), (1, 0, 2.0)], 2_000_000, 3),
            // A 3-cycle by unrelated accounts, longer lifetime.
            activity(
                "loot",
                7,
                &["t1", "t2", "t3"],
                &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)],
                3_000_000,
                20,
            ),
            // A self-trade.
            activity("loot", 9, &["solo"], &[(0, 0, 5.0)], 4_000_000, 0),
        ]
    }

    fn empty_dataset_and_friends() -> (Dataset, MarketplaceDirectory, PriceOracle) {
        (
            Dataset::default(),
            MarketplaceDirectory::new(),
            PriceOracle::paper_presets(Timestamp::from_secs(0), 400, 1),
        )
    }

    #[test]
    fn pattern_and_account_statistics() {
        let activities = fixtures();
        let (dataset, directory, oracle) = empty_dataset_and_friends();
        let characterization = characterize(&activities, &dataset, &directory, &oracle);
        assert_eq!(characterization.total_activities, 4);
        assert_eq!(characterization.patterns.accounts_histogram[0], 1); // self-trade
        assert_eq!(characterization.patterns.accounts_histogram[1], 2); // pairs
        assert_eq!(characterization.patterns.accounts_histogram[2], 1); // triple
        assert_eq!(characterization.patterns.pattern_occurrences.get(&1), Some(&2));
        assert_eq!(characterization.patterns.pattern_occurrences.get(&2), Some(&1));
        assert_eq!(characterization.patterns.pattern_occurrences.get(&0), Some(&1));
        assert_eq!(characterization.patterns.uncatalogued, 0);
        assert!((characterization.patterns.two_account_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lifetime_statistics() {
        let activities = fixtures();
        let (dataset, directory, oracle) = empty_dataset_and_friends();
        let characterization = characterize(&activities, &dataset, &directory, &oracle);
        // Two activities are same-day, one lasts 3 days (within ten), one 20.
        assert!((characterization.lifetimes.within_one_day - 0.5).abs() < 1e-9);
        assert!((characterization.lifetimes.within_ten_days - 0.75).abs() < 1e-9);
    }

    #[test]
    fn serial_trader_statistics() {
        let activities = fixtures();
        let (dataset, directory, oracle) = empty_dataset_and_friends();
        let characterization = characterize(&activities, &dataset, &directory, &oracle);
        let serial = &characterization.serial_traders;
        assert_eq!(serial.total_accounts, 6);
        assert_eq!(serial.serial_accounts, 2); // s1 and s2
        assert_eq!(serial.activities_with_serials, 2);
        assert_eq!(serial.max_activities_per_account, 2);
        assert!((serial.mean_activities_per_serial - 2.0).abs() < 1e-9);
        // s1/s2 repeatedly target the same collection and only work together.
        assert!((serial.same_collection_fraction - 1.0).abs() < 1e-9);
        assert!((serial.exclusive_collaboration_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn marketplace_rows_cover_off_market_activity() {
        let activities = fixtures();
        let (dataset, directory, oracle) = empty_dataset_and_friends();
        let characterization = characterize(&activities, &dataset, &directory, &oracle);
        assert_eq!(characterization.per_marketplace.len(), 1);
        assert_eq!(characterization.per_marketplace[0].name, "Off-market");
        assert_eq!(characterization.per_marketplace[0].activities, 4);
        assert!(characterization.total_volume_usd > 0.0);
        assert!(characterization.volume_cdfs.contains_key("Off-market"));
    }

    #[test]
    fn collection_timelines_rank_by_affected_nfts() {
        let activities = fixtures();
        let (dataset, directory, oracle) = empty_dataset_and_friends();
        let characterization = characterize(&activities, &dataset, &directory, &oracle);
        assert_eq!(characterization.collection_timelines.len(), 2);
        assert!(
            characterization.collection_timelines[0].affected_nfts
                >= characterization.collection_timelines[1].affected_nfts
        );
    }

    #[test]
    fn empty_input_produces_empty_characterization() {
        let (dataset, directory, oracle) = empty_dataset_and_friends();
        let characterization = characterize(&[], &dataset, &directory, &oracle);
        assert_eq!(characterization.total_activities, 0);
        assert_eq!(characterization.total_volume_usd, 0.0);
        assert!(characterization.per_marketplace.is_empty());
        assert_eq!(characterization.serial_traders.serial_accounts, 0);
    }
}
