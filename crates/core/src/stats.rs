//! Small statistics helpers: empirical CDFs and summary statistics used by
//! the characterization and profitability reports.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over `f64` samples.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build a CDF from samples (NaNs are dropped).
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Cdf { sorted }
    }

    /// Build a CDF from samples already sorted by [`f64::total_cmp`] with no
    /// NaNs — the incremental path's constructor: a maintained sorted
    /// multiset produces the same bits as [`Cdf::new`] over the same values,
    /// because `total_cmp` is a total order (equal elements are identical
    /// bit patterns, so the sorted sequence is unique for a multiset).
    ///
    /// # Panics
    ///
    /// Debug builds assert the input really is sorted and NaN-free.
    pub fn from_sorted(sorted: Vec<f64>) -> Self {
        debug_assert!(sorted.iter().all(|x| !x.is_nan()), "from_sorted input must be NaN-free");
        debug_assert!(
            sorted.windows(2).all(|w| w[0].total_cmp(&w[1]).is_le()),
            "from_sorted input must be totally ordered"
        );
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples less than or equal to `x` (0.0 for an empty CDF).
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be within [0, 1]");
        if self.sorted.is_empty() {
            return None;
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Evenly spaced `(value, cumulative fraction)` points suitable for
    /// plotting; at most `points` entries.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n as f64 / points as f64).max(1.0);
        let mut curve = Vec::new();
        let mut index = 0.0;
        while (index as usize) < n {
            let i = index as usize;
            curve.push((self.sorted[i], (i + 1) as f64 / n as f64));
            index += step;
        }
        if curve.last().map(|(v, _)| *v) != self.sorted.last().copied() {
            curve.push((*self.sorted.last().unwrap(), 1.0));
        }
        curve
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }
}

/// Summary statistics of a set of samples (min / max / mean / total).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
    /// Sum of values.
    pub total: f64,
}

impl Summary {
    /// Summarize samples (an empty iterator produces an all-zero summary).
    pub fn of(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut count = 0usize;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut total = 0.0;
        for sample in samples {
            count += 1;
            min = min.min(sample);
            max = max.max(sample);
            total += sample;
        }
        if count == 0 {
            return Summary::default();
        }
        Summary { count, min, max, mean: total / count as f64, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_fractions_and_quantiles() {
        let cdf = Cdf::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.fraction_at_most(2.0), 0.5);
        assert_eq!(cdf.fraction_at_most(10.0), 1.0);
        assert_eq!(cdf.quantile(0.5), Some(2.0));
        assert_eq!(cdf.quantile(1.0), Some(4.0));
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(4.0));
        assert_eq!(cdf.mean(), Some(2.5));
    }

    #[test]
    fn cdf_handles_empty_and_nan() {
        let empty = Cdf::new([]);
        assert!(empty.is_empty());
        assert_eq!(empty.fraction_at_most(1.0), 0.0);
        assert_eq!(empty.quantile(0.5), None);
        assert!(empty.curve(10).is_empty());
        let with_nan = Cdf::new([1.0, f64::NAN, 2.0]);
        assert_eq!(with_nan.len(), 2);
    }

    #[test]
    #[should_panic]
    fn quantile_out_of_range_panics() {
        let _ = Cdf::new([1.0]).quantile(1.5);
    }

    #[test]
    fn curve_is_monotonic_and_ends_at_one() {
        let cdf = Cdf::new((1..=100).map(|i| i as f64));
        let curve = cdf.curve(10);
        assert!(curve.len() >= 10);
        assert!(curve.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn summary_statistics() {
        let summary = Summary::of([2.0, 4.0, 6.0]);
        assert_eq!(summary.count, 3);
        assert_eq!(summary.min, 2.0);
        assert_eq!(summary.max, 6.0);
        assert_eq!(summary.mean, 4.0);
        assert_eq!(summary.total, 12.0);
        let empty = Summary::of([]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.total, 0.0);
    }

    proptest::proptest! {
        #[test]
        fn cdf_fraction_is_monotone(mut samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            samples.sort_by(|a, b| a.total_cmp(b));
            let cdf = Cdf::new(samples.clone());
            let mut previous = 0.0;
            for x in samples {
                let fraction = cdf.fraction_at_most(x);
                proptest::prop_assert!(fraction >= previous);
                previous = fraction;
            }
            proptest::prop_assert_eq!(cdf.fraction_at_most(f64::INFINITY), 1.0);
        }
    }
}
