//! Profitability analysis (§VI): token-reward exploitation on LooksRare and
//! Rarible (Eq. 2) and NFT resale after the manipulation (Eq. 3).

use std::collections::{HashMap, HashSet};

use ethsim::{Address, Chain, Wei};
use ids::Interner;
use marketplace::MarketplaceDirectory;
use oracle::PriceOracle;
use serde::{Deserialize, Serialize};
use tokens::NftId;

use crate::detect::DenseActivity;
use crate::parallel::Executor;
use crate::refine::DenseCandidate;
use crate::stats::Summary;
use crate::txgraph::NftGraph;

// ---------------------------------------------------------------------------
// Reward-system exploitation (§VI-A)
// ---------------------------------------------------------------------------

/// Per-activity outcome of the reward-exploitation analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardOutcome {
    /// The manipulated NFT.
    pub nft: NftId,
    /// The marketplace (LooksRare or Rarible).
    pub marketplace: String,
    /// Wash-traded volume of the activity in ETH.
    pub volume_eth: f64,
    /// USD value of the reward tokens claimed (at claim time).
    pub rewards_usd: f64,
    /// USD value of the gas and marketplace fees spent (at spend time).
    pub fees_usd: f64,
    /// `rewards − fees` (Eq. 2).
    pub balance_usd: f64,
    /// Whether the operators claimed any reward tokens at all.
    pub claimed: bool,
}

/// Table III column: either the successful or the failed activities of one
/// marketplace.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RewardSideSummary {
    /// Number of activities on this side.
    pub events: usize,
    /// Minimum activity volume in ETH.
    pub min_volume_eth: f64,
    /// Maximum activity volume in ETH.
    pub max_volume_eth: f64,
    /// Mean activity volume in ETH.
    pub mean_volume_eth: f64,
    /// Largest gain (successful side) or largest loss (failed side), USD.
    pub max_balance_usd: f64,
    /// Mean balance in USD.
    pub mean_balance_usd: f64,
    /// Total balance in USD.
    pub total_balance_usd: f64,
}

impl RewardSideSummary {
    fn of(outcomes: &[&RewardOutcome]) -> Self {
        if outcomes.is_empty() {
            return RewardSideSummary::default();
        }
        let volume = Summary::of(outcomes.iter().map(|o| o.volume_eth));
        let balance = Summary::of(outcomes.iter().map(|o| o.balance_usd));
        let extreme = outcomes
            .iter()
            .map(|o| o.balance_usd)
            .max_by(|a, b| a.abs().total_cmp(&b.abs()))
            .unwrap_or(0.0);
        RewardSideSummary {
            events: outcomes.len(),
            min_volume_eth: volume.min,
            max_volume_eth: volume.max,
            mean_volume_eth: volume.mean,
            max_balance_usd: extreme,
            mean_balance_usd: balance.mean,
            total_balance_usd: balance.total,
        }
    }
}

/// Table III block for one reward marketplace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RewardMarketReport {
    /// Marketplace name.
    pub marketplace: String,
    /// Activities that closed with a positive balance.
    pub successful: RewardSideSummary,
    /// Activities that closed with a non-positive balance.
    pub failed: RewardSideSummary,
    /// Activities whose operators never claimed the reward tokens (excluded
    /// from the success/failure statistics, as in the paper).
    pub did_not_claim: usize,
}

/// The full §VI-A report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RewardReport {
    /// One block per reward marketplace, in directory order.
    pub markets: Vec<RewardMarketReport>,
    /// Per-activity outcomes (claimed activities only).
    pub outcomes: Vec<RewardOutcome>,
}

impl RewardReport {
    /// Fraction of claimed activities that closed with a gain, across all
    /// reward marketplaces.
    pub fn success_rate(&self) -> f64 {
        let successes: usize = self.markets.iter().map(|m| m.successful.events).sum();
        let failures: usize = self.markets.iter().map(|m| m.failed.events).sum();
        if successes + failures == 0 {
            0.0
        } else {
            successes as f64 / (successes + failures) as f64
        }
    }
}

/// Analyze reward-system exploitation for every confirmed activity whose
/// dominant marketplace distributes reward tokens. Activities arrive in
/// dense form; colluder addresses are resolved once per activity for the
/// chain-history claim scans, and the per-activity outcomes (report structs)
/// carry resolved NFT identities.
pub fn analyze_rewards(
    activities: &[DenseActivity],
    chain: &Chain,
    directory: &MarketplaceDirectory,
    oracle: &PriceOracle,
    interner: &Interner,
) -> RewardReport {
    analyze_rewards_with(activities, chain, directory, oracle, interner, &Executor::new(1))
}

/// [`analyze_rewards`] with the per-candidate chain scans
/// ([`reward_facts`], the expensive half) fanned out over `executor`; the
/// serial [`reduce_rewards`] then folds the facts in activity order, so the
/// report is bit-identical at any thread count.
pub fn analyze_rewards_with(
    activities: &[DenseActivity],
    chain: &Chain,
    directory: &MarketplaceDirectory,
    oracle: &PriceOracle,
    interner: &Interner,
    executor: &Executor,
) -> RewardReport {
    let facts = executor.map(activities, |activity| {
        reward_facts(&activity.candidate, chain, directory, oracle, interner)
    });
    reduce_rewards(facts.iter().flatten(), directory)
}

/// The §VI-A leaf record of one candidate: the claim-scan and fee outcome,
/// cached by the streaming analyzer alongside the candidate. `None` means
/// the candidate's dominant marketplace distributes no reward tokens (the
/// activity is out of scope for Table III); unclaimed activities are kept
/// (`outcome.claimed == false`) so the reduce can count them.
///
/// Facts are a pure function of the candidate and the chain histories of its
/// colluding accounts *up to the claim*; the stream recomputes them whenever
/// the NFT is dirtied, which re-reads those histories at the new watermark.
pub fn reward_facts(
    candidate: &DenseCandidate,
    chain: &Chain,
    directory: &MarketplaceDirectory,
    oracle: &PriceOracle,
    interner: &Interner,
) -> Option<RewardOutcome> {
    let market = candidate.dominant_marketplace(interner)?;
    let info = directory.by_contract(interner.market(market))?;
    let reward = info.reward.as_ref()?;

    // Reward tokens claimed: the first claim transaction of each colluding
    // account after the activity started.
    let mut rewards_usd = 0.0;
    let mut fees_usd = 0.0;
    let mut claimed = false;
    for &id in &candidate.accounts {
        let account = interner.address(id);
        let claim_tx = chain
            .transactions_of(account)
            .into_iter()
            .filter(|tx| {
                tx.from == account
                    && tx.to == Some(reward.distributor)
                    && tx.timestamp >= candidate.first_trade
            })
            .min_by_key(|tx| tx.timestamp);
        if let Some(tx) = claim_tx {
            let tokens_received: u128 = tx
                .logs
                .iter()
                .filter_map(|log| log.decode_erc20_transfer())
                .filter(|t| t.contract == reward.token_contract && t.to == account)
                .map(|t| t.amount)
                .sum();
            if tokens_received > 0 {
                claimed = true;
                rewards_usd += oracle
                    .token_to_usd(
                        &reward.token_symbol,
                        tokens_received,
                        reward.token_decimals,
                        tx.timestamp,
                    )
                    .unwrap_or(0.0);
            }
            fees_usd += oracle.wei_to_usd(tx.fee(), tx.timestamp).unwrap_or(0.0);
        }
    }

    // Costs of the wash trades: gas plus the marketplace fee (ETH routed
    // to the treasury inside each sale transaction).
    let mut seen = HashSet::new();
    for (_, _, edge) in &candidate.internal_edges {
        if !seen.insert(edge.tx_hash) {
            continue;
        }
        let Some(tx) = chain.transaction(edge.tx_hash) else {
            continue;
        };
        fees_usd += oracle.wei_to_usd(tx.fee(), tx.timestamp).unwrap_or(0.0);
        let treasury_fee: Wei =
            tx.internal_transfers.iter().filter(|t| t.to == info.treasury).map(|t| t.value).sum();
        fees_usd += oracle.wei_to_usd(treasury_fee, tx.timestamp).unwrap_or(0.0);
    }

    Some(RewardOutcome {
        nft: interner.nft(candidate.nft),
        marketplace: info.name.clone(),
        volume_eth: candidate.volume.to_eth(),
        rewards_usd,
        fees_usd,
        balance_usd: rewards_usd - fees_usd,
        claimed,
    })
}

/// The serial reduce of §VI-A: fold per-candidate [`reward_facts`] in
/// activity order into the Table III report — cached or freshly computed
/// facts produce the same bits, because the fold is the same.
pub fn reduce_rewards<'a>(
    facts: impl IntoIterator<Item = &'a RewardOutcome>,
    directory: &MarketplaceDirectory,
) -> RewardReport {
    let mut outcomes = Vec::new();
    let mut per_market: HashMap<String, Vec<RewardOutcome>> = HashMap::new();
    let mut did_not_claim: HashMap<String, usize> = HashMap::new();
    for outcome in facts {
        if !outcome.claimed {
            *did_not_claim.entry(outcome.marketplace.clone()).or_insert(0) += 1;
            continue;
        }
        per_market.entry(outcome.marketplace.clone()).or_default().push(outcome.clone());
        outcomes.push(outcome.clone());
    }

    let mut markets = Vec::new();
    for info in directory.iter().filter(|info| info.reward.is_some()) {
        let market_outcomes = per_market.remove(&info.name).unwrap_or_default();
        let successful: Vec<&RewardOutcome> =
            market_outcomes.iter().filter(|o| o.balance_usd > 0.0).collect();
        let failed: Vec<&RewardOutcome> =
            market_outcomes.iter().filter(|o| o.balance_usd <= 0.0).collect();
        markets.push(RewardMarketReport {
            marketplace: info.name.clone(),
            successful: RewardSideSummary::of(&successful),
            failed: RewardSideSummary::of(&failed),
            did_not_claim: did_not_claim.get(&info.name).copied().unwrap_or(0),
        });
    }
    RewardReport { markets, outcomes }
}

// ---------------------------------------------------------------------------
// NFT resale (§VI-B)
// ---------------------------------------------------------------------------

/// Per-activity outcome of the resale analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResaleOutcome {
    /// The manipulated NFT.
    pub nft: NftId,
    /// Whether an external sale followed the manipulation.
    pub resold: bool,
    /// Price at which the wash traders acquired the NFT (0 when minted).
    pub buy_price_eth: f64,
    /// Price of the external sale, if any.
    pub resale_price_eth: Option<f64>,
    /// `resale − buy` in ETH, ignoring fees.
    pub gross_gain_eth: Option<f64>,
    /// `resale − (buy + fees)` in ETH (Eq. 3).
    pub net_gain_eth: Option<f64>,
    /// Same balance converted to USD at the time of each transaction.
    pub net_gain_usd: Option<f64>,
    /// Days between the last wash trade and the external sale.
    pub days_to_resale: Option<u64>,
}

/// Gain/loss split of a set of resale outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfitSplit {
    /// Number of activities that closed with a gain.
    pub gains: usize,
    /// Number of activities that closed with a loss (or broke even).
    pub losses: usize,
    /// Mean gain among gaining activities.
    pub mean_gain: f64,
    /// Mean (absolute) loss among losing activities.
    pub mean_loss: f64,
    /// Largest gain.
    pub max_gain: f64,
    /// Largest (absolute) loss.
    pub max_loss: f64,
}

impl ProfitSplit {
    fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut split = ProfitSplit::default();
        let mut gain_total = 0.0;
        let mut loss_total = 0.0;
        for value in values {
            if value > 0.0 {
                split.gains += 1;
                gain_total += value;
                split.max_gain = split.max_gain.max(value);
            } else {
                split.losses += 1;
                loss_total += -value;
                split.max_loss = split.max_loss.max(-value);
            }
        }
        if split.gains > 0 {
            split.mean_gain = gain_total / split.gains as f64;
        }
        if split.losses > 0 {
            split.mean_loss = loss_total / split.losses as f64;
        }
        split
    }

    /// Fraction of activities that closed with a gain.
    pub fn gain_fraction(&self) -> f64 {
        if self.gains + self.losses == 0 {
            0.0
        } else {
            self.gains as f64 / (self.gains + self.losses) as f64
        }
    }
}

/// The full §VI-B report.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResaleReport {
    /// Per-activity outcomes.
    pub outcomes: Vec<ResaleOutcome>,
    /// Activities considered (on marketplaces without a reward system).
    pub total: usize,
    /// Activities followed by an external sale.
    pub resold: usize,
    /// Activities not followed by an external sale.
    pub not_resold: usize,
    /// Resold NFTs sold the same day the manipulation ended.
    pub sold_same_day: usize,
    /// Resold NFTs sold within one month.
    pub sold_within_month: usize,
    /// Gain/loss split ignoring fees (ETH).
    pub gross: ProfitSplit,
    /// Gain/loss split including gas and marketplace fees (ETH).
    pub net: ProfitSplit,
    /// Gain/loss split including fees, valued in USD at transaction time.
    pub net_usd: ProfitSplit,
}

/// Analyze resale profitability for every confirmed activity whose dominant
/// marketplace has no reward system (including off-market activity).
///
/// `graphs` is the `NftKey`-indexed graph table the pipeline built in the
/// graph stage; component membership checks are linear probes over the
/// (tiny) dense account lists.
pub fn analyze_resales(
    activities: &[DenseActivity],
    chain: &Chain,
    directory: &MarketplaceDirectory,
    oracle: &PriceOracle,
    graphs: &[NftGraph],
    interner: &Interner,
) -> ResaleReport {
    analyze_resales_with(activities, chain, directory, oracle, graphs, interner, &Executor::new(1))
}

/// [`analyze_resales`] with the per-candidate graph and fee scans
/// ([`resale_facts`], the expensive half) fanned out over `executor`; the
/// serial [`reduce_resales`] then folds the facts in activity order, so the
/// report is bit-identical at any thread count.
pub fn analyze_resales_with(
    activities: &[DenseActivity],
    chain: &Chain,
    directory: &MarketplaceDirectory,
    oracle: &PriceOracle,
    graphs: &[NftGraph],
    interner: &Interner,
    executor: &Executor,
) -> ResaleReport {
    let facts = executor.map(activities, |activity| {
        resale_facts(
            &activity.candidate,
            chain,
            directory,
            oracle,
            graphs.get(activity.candidate.nft.index()),
            interner,
        )
    });
    reduce_resales(facts.iter().flatten())
}

/// The §VI-B leaf record of one candidate: acquisition, resale and fees read
/// off the NFT's trade graph and the chain, cached by the streaming analyzer
/// alongside the candidate. `None` means out of scope — the dominant
/// marketplace runs a reward system (§VI-A covers it) or the NFT has no
/// graph.
///
/// Facts are a pure function of the candidate, its NFT's graph and the
/// carrying transactions; the stream recomputes them whenever the NFT is
/// dirtied (new transfers may add the resale edge).
pub fn resale_facts(
    candidate: &DenseCandidate,
    chain: &Chain,
    directory: &MarketplaceDirectory,
    oracle: &PriceOracle,
    graph: Option<&NftGraph>,
    interner: &Interner,
) -> Option<ResaleOutcome> {
    // Skip reward marketplaces: §VI-B covers the others.
    if let Some(market) = candidate.dominant_marketplace(interner) {
        if directory
            .by_contract(interner.market(market))
            .map(|info| info.reward.is_some())
            .unwrap_or(false)
        {
            return None;
        }
    }
    let graph = graph?;
    let treasuries: HashSet<Address> = directory.iter().map(|info| info.treasury).collect();
    let accounts = &candidate.accounts;
    let touching = graph.edges_touching(accounts);

    // Acquisition: the last transfer into the component before (or at) the
    // first wash trade.
    let acquisition = touching
        .iter()
        .filter(|(seller, buyer, edge)| {
            accounts.contains(buyer)
                && !accounts.contains(seller)
                && edge.timestamp <= candidate.first_trade
        })
        .max_by_key(|(_, _, edge)| edge.timestamp);
    let buy_price = acquisition.map(|(_, _, edge)| edge.price).unwrap_or(Wei::ZERO);
    let buy_usd = acquisition
        .map(|(_, _, edge)| oracle.wei_to_usd(edge.price, edge.timestamp).unwrap_or(0.0))
        .unwrap_or(0.0);

    // Resale: the first paid transfer out of the component after (or at)
    // the last wash trade.
    let resale = touching
        .iter()
        .filter(|(seller, buyer, edge)| {
            accounts.contains(seller)
                && !accounts.contains(buyer)
                && edge.timestamp >= candidate.last_trade
                && !edge.price.is_zero()
        })
        .min_by_key(|(_, _, edge)| edge.timestamp);

    // Fees: gas of the wash-trade transactions plus marketplace fees
    // routed to any treasury in those transactions (and in the resale).
    let mut fee_eth = 0.0;
    let mut fee_usd = 0.0;
    let mut seen = HashSet::new();
    let mut fee_txs: Vec<ethsim::TxHash> =
        candidate.internal_edges.iter().map(|(_, _, edge)| edge.tx_hash).collect();
    if let Some((_, _, edge)) = resale {
        fee_txs.push(edge.tx_hash);
    }
    for tx_hash in fee_txs {
        if !seen.insert(tx_hash) {
            continue;
        }
        let Some(tx) = chain.transaction(tx_hash) else {
            continue;
        };
        let treasury_fee: Wei = tx
            .internal_transfers
            .iter()
            .filter(|t| treasuries.contains(&t.to))
            .map(|t| t.value)
            .sum();
        fee_eth += tx.fee().to_eth() + treasury_fee.to_eth();
        fee_usd += oracle.wei_to_usd(tx.fee(), tx.timestamp).unwrap_or(0.0)
            + oracle.wei_to_usd(treasury_fee, tx.timestamp).unwrap_or(0.0);
    }

    Some(match resale {
        Some((_, _, edge)) => {
            let resale_usd = oracle.wei_to_usd(edge.price, edge.timestamp).unwrap_or(0.0);
            let gross = edge.price.to_eth() - buy_price.to_eth();
            let net = gross - fee_eth;
            let net_usd = resale_usd - buy_usd - fee_usd;
            let days = edge.timestamp.days_since(candidate.last_trade);
            ResaleOutcome {
                nft: interner.nft(candidate.nft),
                resold: true,
                buy_price_eth: buy_price.to_eth(),
                resale_price_eth: Some(edge.price.to_eth()),
                gross_gain_eth: Some(gross),
                net_gain_eth: Some(net),
                net_gain_usd: Some(net_usd),
                days_to_resale: Some(days),
            }
        }
        None => ResaleOutcome {
            nft: interner.nft(candidate.nft),
            resold: false,
            buy_price_eth: buy_price.to_eth(),
            resale_price_eth: None,
            gross_gain_eth: None,
            net_gain_eth: None,
            net_gain_usd: None,
            days_to_resale: None,
        },
    })
}

/// The serial reduce of §VI-B: fold per-candidate [`resale_facts`] in
/// activity order into the resale report. Every statistic — counters, the
/// `sold_*` buckets and the three [`ProfitSplit`]s — derives from fields the
/// facts already carry, folded in the same order the one-level loop folded
/// them, so cached and freshly computed facts produce the same bits.
pub fn reduce_resales<'a>(facts: impl IntoIterator<Item = &'a ResaleOutcome>) -> ResaleReport {
    let mut report = ResaleReport::default();
    let mut gross_values = Vec::new();
    let mut net_values = Vec::new();
    let mut net_usd_values = Vec::new();

    for outcome in facts {
        report.total += 1;
        if outcome.resold {
            report.resold += 1;
            let days = outcome.days_to_resale.unwrap_or(0);
            if days == 0 {
                report.sold_same_day += 1;
            }
            if days <= 30 {
                report.sold_within_month += 1;
            }
            gross_values.push(outcome.gross_gain_eth.unwrap_or(0.0));
            net_values.push(outcome.net_gain_eth.unwrap_or(0.0));
            net_usd_values.push(outcome.net_gain_usd.unwrap_or(0.0));
        } else {
            report.not_resold += 1;
        }
        report.outcomes.push(outcome.clone());
    }

    report.gross = ProfitSplit::of(gross_values);
    report.net = ProfitSplit::of(net_values);
    report.net_usd = ProfitSplit::of(net_usd_values);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, NftTransfer};
    use crate::detect::{DenseActivity, MethodSet};
    use crate::refine::DenseCandidate;
    use crate::txgraph::tests::dataset_of;
    use crate::txgraph::NftGraph;
    use ethsim::{BlockNumber, Timestamp, TxHash};

    #[test]
    fn profit_split_partitions_gains_and_losses() {
        let split = ProfitSplit::of([2.0, -1.0, 4.0, -3.0, 0.0]);
        assert_eq!(split.gains, 2);
        assert_eq!(split.losses, 3);
        assert_eq!(split.mean_gain, 3.0);
        assert!((split.mean_loss - (4.0 / 3.0)).abs() < 1e-9);
        assert_eq!(split.max_gain, 4.0);
        assert_eq!(split.max_loss, 3.0);
        assert!((split.gain_fraction() - 0.4).abs() < 1e-9);
        assert_eq!(ProfitSplit::of([]).gain_fraction(), 0.0);
    }

    #[test]
    fn reward_side_summary_of_empty_is_zero() {
        let summary = RewardSideSummary::of(&[]);
        assert_eq!(summary.events, 0);
        assert_eq!(summary.total_balance_usd, 0.0);
    }

    fn mk(
        nft: tokens::NftId,
        from: Address,
        to: Address,
        price: f64,
        at: u64,
        tag: &str,
    ) -> NftTransfer {
        NftTransfer {
            nft,
            from,
            to,
            tx_hash: TxHash::hash_of(tag.as_bytes()),
            block: BlockNumber(at),
            timestamp: Timestamp::from_secs(at * 86_400),
            price: Wei::from_eth(price),
            marketplace: None,
        }
    }

    /// Build the dense fixture world: a dataset, the NftKey-indexed graphs
    /// and one activity over the colluding pair `(wa, wb)`.
    fn world(
        transfers: &[NftTransfer],
        first_day: u64,
        last_day: u64,
    ) -> (Dataset, Vec<NftGraph>, DenseActivity) {
        let dataset = dataset_of(transfers);
        let graphs = NftGraph::from_dataset(&dataset);
        let a = transfers[1].from;
        let b = transfers[1].to;
        let mut pair = vec![a, b];
        pair.sort();
        pair.dedup();
        let accounts: Vec<_> =
            pair.into_iter().map(|address| dataset.interner.account_id(address).unwrap()).collect();
        let key = dataset.interner.nft_key(transfers[0].nft).unwrap();
        let internal_edges = graphs[key.index()].edges_among(&accounts);
        let candidate = DenseCandidate {
            nft: key,
            accounts,
            first_trade: Timestamp::from_secs(first_day * 86_400),
            last_trade: Timestamp::from_secs(last_day * 86_400),
            volume: internal_edges.iter().map(|(_, _, e)| e.price).sum(),
            internal_edges,
        };
        let activity = DenseActivity {
            candidate,
            methods: MethodSet { zero_risk: true, ..MethodSet::default() },
        };
        (dataset, graphs, activity)
    }

    /// Manually assembled resale scenario: bought at 1 ETH, washed between two
    /// accounts, resold to a victim at 10 ETH.
    #[test]
    fn resale_analysis_computes_gains_from_graph_and_chain() {
        let chain = Chain::new(Timestamp::from_secs(0));
        let directory = MarketplaceDirectory::new();
        let oracle = PriceOracle::paper_presets(Timestamp::from_secs(0), 100, 1);
        let a = Address::derived("wa");
        let b = Address::derived("wb");
        let nft = NftId::new(Address::derived("coll"), 5);
        let transfers = vec![
            mk(nft, Address::derived("outsider"), a, 1.0, 1, "buy"),
            mk(nft, a, b, 4.0, 2, "w1"),
            mk(nft, b, a, 4.0, 3, "w2"),
            mk(nft, a, Address::derived("victim"), 10.0, 4, "sell"),
        ];
        let (dataset, graphs, activity) = world(&transfers, 2, 3);
        let report =
            analyze_resales(&[activity], &chain, &directory, &oracle, &graphs, &dataset.interner);
        assert_eq!(report.total, 1);
        assert_eq!(report.resold, 1);
        assert_eq!(report.not_resold, 0);
        let outcome = &report.outcomes[0];
        assert_eq!(outcome.nft, nft);
        assert_eq!(outcome.buy_price_eth, 1.0);
        assert_eq!(outcome.resale_price_eth, Some(10.0));
        assert_eq!(outcome.gross_gain_eth, Some(9.0));
        // No real transactions on the chain -> no fee information, so the net
        // equals the gross here.
        assert_eq!(outcome.net_gain_eth, Some(9.0));
        assert_eq!(outcome.days_to_resale, Some(1));
        assert_eq!(report.gross.gains, 1);
        assert_eq!(report.net_usd.gains, 1);
    }

    #[test]
    fn unsold_nft_counts_as_not_resold() {
        let chain = Chain::new(Timestamp::from_secs(0));
        let directory = MarketplaceDirectory::new();
        let oracle = PriceOracle::paper_presets(Timestamp::from_secs(0), 100, 1);
        let a = Address::derived("ua");
        let b = Address::derived("ub");
        let nft = NftId::new(Address::derived("coll2"), 6);
        let transfers = vec![
            mk(nft, Address::NULL, a, 0.0, 1, "m"),
            mk(nft, a, b, 2.0, 2, "x"),
            mk(nft, b, a, 2.0, 3, "y"),
        ];
        let (dataset, graphs, activity) = world(&transfers, 2, 3);
        let report =
            analyze_resales(&[activity], &chain, &directory, &oracle, &graphs, &dataset.interner);
        assert_eq!(report.total, 1);
        assert_eq!(report.not_resold, 1);
        assert_eq!(report.resold, 0);
        assert!(!report.outcomes[0].resold);
        assert_eq!(report.outcomes[0].buy_price_eth, 0.0);
    }
}
