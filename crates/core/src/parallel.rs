//! The shared fork–join executor behind every parallel pipeline stage.
//!
//! Graph construction, refinement and detection all have the same shape:
//! a slice of independent items (NFT graphs, candidates, …), a pure function
//! per item, and a result vector that must come back **in input order** so
//! the pipeline stays bit-identical at any thread count. Before this module
//! each call site hand-rolled its own scoped-thread pool; now they all share
//! [`Executor::map`], and the thread budget is configured once in
//! [`AnalysisOptions`](crate::pipeline::AnalysisOptions).

use std::num::NonZeroUsize;

/// A fork–join executor with a fixed thread budget.
///
/// Work is split into at most `threads` contiguous chunks, one scoped thread
/// per chunk (`threads = 1` runs inline, with no thread spawned at all).
/// Results are reassembled in input order, so output is deterministic and
/// independent of the thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: NonZeroUsize,
}

impl Default for Executor {
    /// An executor using every available core.
    fn default() -> Self {
        Executor::new(0)
    }
}

impl Executor {
    /// Create an executor with a thread budget; `0` means "one thread per
    /// available core", the convention [`AnalysisOptions::threads`]
    /// (crate::pipeline::AnalysisOptions) follows.
    pub fn new(threads: usize) -> Self {
        let threads = match NonZeroUsize::new(threads) {
            Some(explicit) => explicit,
            None => std::thread::available_parallelism()
                .unwrap_or(NonZeroUsize::new(1).expect("1 is nonzero")),
        };
        Executor { threads }
    }

    /// The resolved thread budget (never zero).
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// How many threads `map` over `items` entries would actually use.
    pub fn threads_for(&self, items: usize) -> usize {
        self.threads.get().min(items).max(1)
    }

    /// Apply `f` to every item, in parallel, preserving input order.
    ///
    /// `f` must be pure with respect to ordering: it receives one `&T` and
    /// returns one `U`, and may not rely on being called in any particular
    /// sequence. Panics in `f` propagate.
    ///
    /// Parallel fan-outs are instrumented (`executor.*` metrics): each worker
    /// reports its busy time back to the calling thread, which records
    /// everything — workers never touch the metrics registry, because their
    /// threads are short-lived and per-thread metric shards would be
    /// allocated and retired on every call. The inline path (one thread)
    /// stays untouched; instrumentation costs one `Instant` read per worker
    /// and only while recording is on.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let threads = self.threads_for(items.len());
        if threads <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk_size = items.len().div_ceil(threads);
        let f = &f;
        let instrumented = obs::recording();
        let started = instrumented.then(std::time::Instant::now);
        // Workers inherit the fan-out's trace context so spans they open (or
        // traced code they call into) parent under the calling span's tree.
        let trace_ctx = obs::trace::current();
        let (results, busy_ns) = std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_size)
                .enumerate()
                .map(|(shard, chunk)| {
                    scope.spawn(move || {
                        let _ctx = obs::trace::adopt(trace_ctx);
                        let mut worker_span = obs::trace::span("executor.worker");
                        worker_span.attr("shard", shard as u64);
                        worker_span.attr("tasks", chunk.len() as u64);
                        let started = instrumented.then(std::time::Instant::now);
                        let out = chunk.iter().map(f).collect::<Vec<U>>();
                        let busy = started.map_or(0, |s| s.elapsed().as_nanos() as u64);
                        (out, busy)
                    })
                })
                .collect();
            let mut results = Vec::with_capacity(items.len());
            let mut busy_ns = 0u64;
            for handle in handles {
                let (out, busy) = handle.join().expect("parallel worker panicked");
                results.extend(out);
                if instrumented {
                    obs::histogram!("executor.worker_busy_ns", busy);
                    busy_ns += busy;
                }
            }
            (results, busy_ns)
        });
        if let Some(started) = started {
            // span_ns ≥ busy_ns always; busy_ns / span_ns is the fan-out's
            // worker utilization (1.0 = perfectly balanced chunks).
            let span_ns = started.elapsed().as_nanos() as u64 * threads as u64;
            obs::counter!("executor.fanouts");
            obs::counter!("executor.tasks", items.len() as u64);
            obs::counter!("executor.busy_ns", busy_ns);
            obs::counter!("executor.span_ns", span_ns);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_yields_empty_output() {
        let executor = Executor::new(4);
        let out: Vec<u32> = executor.map(&[] as &[u32], |x| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let executor = Executor::new(8);
        assert_eq!(executor.threads_for(1), 1);
        assert_eq!(executor.map(&[41], |x| x + 1), vec![42]);
    }

    #[test]
    fn fewer_items_than_threads() {
        let executor = Executor::new(16);
        let items: Vec<usize> = (0..5).collect();
        let out = executor.map(&items, |x| x * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
        assert_eq!(executor.threads_for(items.len()), 5);
    }

    #[test]
    fn ordering_is_deterministic_across_thread_counts() {
        let items: Vec<u64> = (0..1003).collect();
        let serial = Executor::new(1).map(&items, |x| x * x);
        for threads in [2, 3, 8, 64] {
            let parallel = Executor::new(threads).map(&items, |x| x * x);
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn zero_requests_all_cores() {
        let executor = Executor::new(0);
        assert!(executor.threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "parallel worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        Executor::new(4).map(&items, |x| {
            assert!(*x != 63, "boom");
            *x
        });
    }
}
