//! Plain-text rendering of the paper's tables and figures from an
//! [`AnalysisReport`](crate::pipeline::AnalysisReport), used by the
//! `experiments` binary and the examples.

use std::fmt::Write as _;

use crate::characterize::Characterization;
use crate::dataset::MarketplaceVolume;
use crate::detect::VennCounts;
use crate::pipeline::{AnalysisReport, StageMetrics};
use crate::profit::{ResaleReport, RewardReport};
use crate::refine::RefinementReport;

/// Render every deterministic field of a report into one canonical string —
/// the comparison form behind the golden-snapshot gate, the parallel-ingest
/// determinism proptest and the ingest bench's cross-thread-count check, so
/// a new report field only ever needs to be added here.
///
/// `Debug` for `HashMap` fields would iterate in per-process random order,
/// so map-valued fields (volume CDFs, pattern occurrences) are emitted as
/// key-sorted vectors; `stage_metrics` is timing-dependent and excluded.
pub fn render_deterministic(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let c = &report.characterization;
    writeln!(out, "table1: {:#?}", report.table1).unwrap();
    writeln!(
        out,
        "dataset: nfts={} transfers={} raw={} compliant={} non_compliant={}",
        report.dataset_nfts,
        report.dataset_transfers,
        report.raw_transfer_events,
        report.compliant_contracts,
        report.non_compliant_contracts
    )
    .unwrap();
    writeln!(out, "refinement: {:#?}", report.refinement).unwrap();
    writeln!(out, "detection: {:#?}", report.detection).unwrap();
    writeln!(
        out,
        "characterization: total_activities={} total_volume_usd={:?} total_volume_eth={:?}",
        c.total_activities, c.total_volume_usd, c.total_volume_eth
    )
    .unwrap();
    writeln!(out, "per_marketplace: {:#?}", c.per_marketplace).unwrap();
    let mut cdfs: Vec<_> = c.volume_cdfs.iter().collect();
    cdfs.sort_by_key(|(name, _)| name.as_str());
    writeln!(out, "volume_cdfs: {cdfs:#?}").unwrap();
    writeln!(out, "lifetimes: {:#?}", c.lifetimes).unwrap();
    writeln!(out, "collection_timelines: {:#?}", c.collection_timelines).unwrap();
    writeln!(out, "accounts_histogram: {:?}", c.patterns.accounts_histogram).unwrap();
    let mut occurrences: Vec<_> = c.patterns.pattern_occurrences.iter().collect();
    occurrences.sort();
    writeln!(out, "pattern_occurrences: {occurrences:?}").unwrap();
    writeln!(
        out,
        "patterns: uncatalogued={} two_account={:?} self_trade={:?}",
        c.patterns.uncatalogued, c.patterns.two_account_fraction, c.patterns.self_trade_fraction
    )
    .unwrap();
    writeln!(out, "serial_traders: {:#?}", c.serial_traders).unwrap();
    writeln!(
        out,
        "acquired: same_day={:?} within_two_weeks={:?}",
        c.acquired_same_day_fraction, c.acquired_within_two_weeks_fraction
    )
    .unwrap();
    writeln!(out, "rewards: {:#?}", report.rewards).unwrap();
    writeln!(out, "resales: {:#?}", report.resales).unwrap();
    out
}

/// Render the per-stage instrumentation table: wall time, item counts and
/// thread usage for each pipeline stage, plus the end-to-end total.
pub fn render_stage_metrics(metrics: &[StageMetrics]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Pipeline stages — wall time and throughput");
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>12} {:>9}",
        "stage", "wall time", "items in", "items out", "threads"
    );
    let mut total_ns = 0u64;
    for stage in metrics {
        total_ns = total_ns.saturating_add(stage.wall_time_ns);
        let _ = writeln!(
            out,
            "{:<16} {:>12} {:>12} {:>12} {:>9}",
            stage.stage,
            format_ns(stage.wall_time_ns),
            stage.items_in,
            stage.items_out,
            stage.threads
        );
    }
    let _ = writeln!(out, "{:<16} {:>12}", "total", format_ns(total_ns));
    out
}

fn format_ns(nanos: u64) -> String {
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Render Table I: dataset totals per marketplace.
pub fn render_table1(rows: &[MarketplaceVolume]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table I — Data collected about NFTMs");
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>14} {:>18} {:>18}",
        "NFTM", "NFTs", "Transactions", "Volume (ETH)", "Volume ($)"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>14} {:>18.2} {:>18.0}",
            row.name, row.nfts, row.transactions, row.volume_eth, row.volume_usd
        );
    }
    out
}

/// Render Table II: wash trading per marketplace.
pub fn render_table2(characterization: &Characterization) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table II — Wash trading on NFTMs");
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>12} {:>16} {:>18} {:>12}",
        "NFTM", "#NFT", "#activities", "Volume (ETH)", "Volume ($)", "% of total"
    );
    for row in &characterization.per_marketplace {
        let share = row
            .share_of_marketplace_volume
            .map(|s| format!("{:.2}%", s * 100.0))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>12} {:>16.2} {:>18.0} {:>12}",
            row.name, row.nfts, row.activities, row.volume_eth, row.volume_usd, share
        );
    }
    let _ = writeln!(
        out,
        "Total: {} activities, {:.2} ETH, ${:.0}",
        characterization.total_activities,
        characterization.total_volume_eth,
        characterization.total_volume_usd
    );
    out
}

/// Render the Fig. 2 Venn counts (method overlap).
pub fn render_fig2(venn: &VennCounts) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 2 — Wash trading activities detected by each approach");
    let _ = writeln!(out, "  zero-risk only:            {}", venn.zero_risk_only);
    let _ = writeln!(out, "  common funder only:        {}", venn.funder_only);
    let _ = writeln!(out, "  common exit only:          {}", venn.exit_only);
    let _ = writeln!(out, "  zero-risk ∩ funder:        {}", venn.zero_and_funder);
    let _ = writeln!(out, "  zero-risk ∩ exit:          {}", venn.zero_and_exit);
    let _ = writeln!(out, "  funder ∩ exit:             {}", venn.funder_and_exit);
    let _ = writeln!(out, "  all three:                 {}", venn.all_three);
    let _ = writeln!(out, "  total (≥1 flow method):    {}", venn.total());
    let at_least_two = venn.at_least_two() as f64 / venn.total().max(1) as f64;
    let _ = writeln!(out, "  confirmed by ≥2 methods:   {:.1}%", at_least_two * 100.0);
    out
}

/// Render the refinement funnel (§IV-A/B counts).
pub fn render_refinement(report: &RefinementReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Refinement funnel (NFTs / accounts / components)");
    let stage = |name: &str, s: &crate::refine::StageCount| {
        format!("  {:<28} {:>8} {:>10} {:>12}", name, s.nfts, s.accounts, s.components)
    };
    let _ =
        writeln!(out, "  {:<28} {:>8} {:>10} {:>12}", "stage", "NFTs", "accounts", "components");
    let _ = writeln!(out, "{}", stage("initial SCC search", &report.initial));
    let _ = writeln!(out, "{}", stage("after service removal", &report.after_service_removal));
    let _ = writeln!(out, "{}", stage("after contract removal", &report.after_contract_removal));
    let _ = writeln!(out, "{}", stage("after zero-volume removal", &report.after_zero_volume));
    out
}

/// Render Fig. 4: lifetimes.
pub fn render_fig4(characterization: &Characterization) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 4 — Lifetime of wash trading activities");
    let _ = writeln!(
        out,
        "  ≤ 1 day:  {:.2}%   < 10 days: {:.2}%",
        characterization.lifetimes.within_one_day * 100.0,
        characterization.lifetimes.within_ten_days * 100.0
    );
    for (value, fraction) in characterization.lifetimes.cdf_days.curve(10) {
        let _ = writeln!(out, "  {:>6.0} days: {:>5.1}%", value, fraction * 100.0);
    }
    out
}

/// Render Fig. 5: activity timing vs collection creation.
pub fn render_fig5(characterization: &Characterization) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 5 — Top collections: creation vs wash-trading occurrences");
    for timeline in &characterization.collection_timelines {
        let mean_lag_days = if timeline.activity_times.is_empty() {
            0.0
        } else {
            timeline
                .activity_times
                .iter()
                .map(|t| t.days_since(timeline.created_at) as f64)
                .sum::<f64>()
                / timeline.activity_times.len() as f64
        };
        let _ = writeln!(
            out,
            "  {:<46} affected NFTs: {:>4}  activities: {:>4}  mean days after creation: {:>6.1}",
            timeline.collection.to_hex(),
            timeline.affected_nfts,
            timeline.activity_times.len(),
            mean_lag_days
        );
    }
    out
}

/// Render Fig. 6 and Fig. 7: participation histogram and pattern occurrences.
pub fn render_fig6_fig7(characterization: &Characterization) -> String {
    let mut out = String::new();
    let patterns = &characterization.patterns;
    let _ = writeln!(out, "Fig. 6 — Accounts involved in wash trading activities");
    let total: usize = patterns.accounts_histogram.iter().sum();
    for (index, count) in patterns.accounts_histogram.iter().enumerate() {
        let label = if index == 5 { "6+".to_string() } else { (index + 1).to_string() };
        let _ = writeln!(
            out,
            "  {:>3} accounts: {:>6} ({:.2}%)",
            label,
            count,
            *count as f64 / total.max(1) as f64 * 100.0
        );
    }
    let _ = writeln!(out, "Fig. 7 — Pattern occurrences");
    let mut ids: Vec<usize> = patterns.pattern_occurrences.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let _ = writeln!(out, "  Pattern {:>2}: {:>6}", id, patterns.pattern_occurrences[&id]);
    }
    let _ = writeln!(out, "  uncatalogued: {:>4}", patterns.uncatalogued);
    let _ = writeln!(
        out,
        "  two-account round trips: {:.2}%  self-trades: {:.2}%",
        patterns.two_account_fraction * 100.0,
        patterns.self_trade_fraction * 100.0
    );
    out
}

/// Render §V-D: serial wash traders.
pub fn render_serials(characterization: &Characterization) -> String {
    let serial = &characterization.serial_traders;
    let mut out = String::new();
    let _ = writeln!(out, "§V-D — Serial wash traders");
    let _ = writeln!(
        out,
        "  accounts: {} total, {} serial ({:.2}%)",
        serial.total_accounts,
        serial.serial_accounts,
        serial.serial_accounts as f64 / serial.total_accounts.max(1) as f64 * 100.0
    );
    let _ = writeln!(
        out,
        "  activities involving serials: {} of {} ({:.2}%)",
        serial.activities_with_serials,
        serial.total_activities,
        serial.activities_with_serials as f64 / serial.total_activities.max(1) as f64 * 100.0
    );
    let _ = writeln!(
        out,
        "  mean activities per serial: {:.2}   max per account: {}",
        serial.mean_activities_per_serial, serial.max_activities_per_account
    );
    let _ = writeln!(
        out,
        "  serials hitting one collection repeatedly: {:.2}%   collaborating only with serials: {:.2}%",
        serial.same_collection_fraction * 100.0,
        serial.exclusive_collaboration_fraction * 100.0
    );
    out
}

/// Render Table III: reward-system profitability.
pub fn render_table3(report: &RewardReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table III — Token reward and wash trading");
    for market in &report.markets {
        let _ = writeln!(out, "  {}:", market.marketplace);
        let _ = writeln!(out, "    {:<22} {:>14} {:>14}", "", "Successful", "Failed");
        let row = |label: &str, s: f64, f: f64| format!("    {label:<22} {s:>14.2} {f:>14.2}");
        let _ = writeln!(
            out,
            "    {:<22} {:>14} {:>14}",
            "# events", market.successful.events, market.failed.events
        );
        let _ = writeln!(
            out,
            "{}",
            row("min vol. (ETH)", market.successful.min_volume_eth, market.failed.min_volume_eth)
        );
        let _ = writeln!(
            out,
            "{}",
            row("max vol. (ETH)", market.successful.max_volume_eth, market.failed.max_volume_eth)
        );
        let _ = writeln!(
            out,
            "{}",
            row(
                "mean vol. (ETH)",
                market.successful.mean_volume_eth,
                market.failed.mean_volume_eth
            )
        );
        let _ = writeln!(
            out,
            "{}",
            row(
                "max gain/loss ($)",
                market.successful.max_balance_usd,
                market.failed.max_balance_usd
            )
        );
        let _ = writeln!(
            out,
            "{}",
            row(
                "mean gain/loss ($)",
                market.successful.mean_balance_usd,
                market.failed.mean_balance_usd
            )
        );
        let _ = writeln!(
            out,
            "{}",
            row(
                "total gain/loss ($)",
                market.successful.total_balance_usd,
                market.failed.total_balance_usd
            )
        );
        let _ = writeln!(out, "    did not claim: {}", market.did_not_claim);
    }
    let _ = writeln!(out, "  overall success rate: {:.1}%", report.success_rate() * 100.0);
    out
}

/// Render §VI-B: resale profitability.
pub fn render_resales(report: &ResaleReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "§VI-B — NFT resale after wash trading");
    let _ = writeln!(
        out,
        "  activities: {}   resold: {} ({:.1}%)   not resold: {} ({:.1}%)",
        report.total,
        report.resold,
        report.resold as f64 / report.total.max(1) as f64 * 100.0,
        report.not_resold,
        report.not_resold as f64 / report.total.max(1) as f64 * 100.0
    );
    let _ = writeln!(
        out,
        "  sold same day: {}   sold within a month: {}",
        report.sold_same_day, report.sold_within_month
    );
    let split = |name: &str, s: &crate::profit::ProfitSplit| {
        format!(
            "  {name:<26} gains: {:>5} ({:.1}%)  mean gain: {:>8.2}  losses: {:>5}  mean loss: {:>8.2}",
            s.gains,
            s.gain_fraction() * 100.0,
            s.mean_gain,
            s.losses,
            s.mean_loss
        )
    };
    let _ = writeln!(out, "{}", split("ignoring fees (ETH)", &report.gross));
    let _ = writeln!(out, "{}", split("including fees (ETH)", &report.net));
    let _ = writeln!(out, "{}", split("including fees (USD)", &report.net_usd));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{LifetimeStats, PatternStats, SerialTraderStats};
    use crate::stats::Cdf;

    fn characterization() -> Characterization {
        Characterization {
            total_activities: 2,
            total_volume_usd: 1000.0,
            total_volume_eth: 0.5,
            per_marketplace: vec![crate::characterize::MarketplaceWashRow {
                name: "OpenSea".to_string(),
                nfts: 2,
                activities: 2,
                volume_eth: 0.5,
                volume_usd: 1000.0,
                share_of_marketplace_volume: Some(0.01),
            }],
            volume_cdfs: Default::default(),
            lifetimes: LifetimeStats {
                cdf_days: Cdf::new([0.0, 3.0]),
                within_one_day: 0.5,
                within_ten_days: 1.0,
            },
            collection_timelines: vec![],
            patterns: PatternStats {
                accounts_histogram: [0, 2, 0, 0, 0, 0],
                pattern_occurrences: [(1usize, 2usize)].into_iter().collect(),
                uncatalogued: 0,
                two_account_fraction: 1.0,
                self_trade_fraction: 0.0,
            },
            serial_traders: SerialTraderStats::default(),
            acquired_same_day_fraction: 0.5,
            acquired_within_two_weeks_fraction: 1.0,
        }
    }

    #[test]
    fn renderers_produce_non_empty_text_with_key_numbers() {
        let characterization = characterization();
        let table2 = render_table2(&characterization);
        assert!(table2.contains("OpenSea"));
        assert!(table2.contains("1.00%"));
        let fig4 = render_fig4(&characterization);
        assert!(fig4.contains("50.00%"));
        let fig67 = render_fig6_fig7(&characterization);
        assert!(fig67.contains("Pattern  1"));
        let serials = render_serials(&characterization);
        assert!(serials.contains("Serial wash traders"));

        let venn = VennCounts { all_three: 3, exit_only: 1, ..VennCounts::default() };
        let fig2 = render_fig2(&venn);
        assert!(fig2.contains("all three:                 3"));
        assert!(fig2.contains("total (≥1 flow method):    4"));

        let table1 = render_table1(&[MarketplaceVolume {
            name: "LooksRare".to_string(),
            nfts: 1,
            transactions: 2,
            volume_eth: 3.0,
            volume_usd: 9_000.0,
        }]);
        assert!(table1.contains("LooksRare"));

        let table3 = render_table3(&RewardReport::default());
        assert!(table3.contains("Table III"));
        let resales = render_resales(&ResaleReport::default());
        assert!(resales.contains("resale"));
        let refinement = render_refinement(&RefinementReport::default());
        assert!(refinement.contains("initial SCC search"));
    }
}
