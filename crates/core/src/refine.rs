//! Graph refinement (§IV-B): removing service accounts, smart-contract
//! accounts and zero-volume components from the suspicious candidates.
//!
//! The refiner operates entirely on dense ids ([`DenseCandidate`]); account
//! addresses are resolved once per graph node for the label/bytecode probes
//! (instead of once per *edge*, as the address-keyed pipeline did) and at
//! the report boundary, where [`DenseCandidate::resolve`] materializes the
//! address-keyed [`Candidate`] the report exposes.

use ethsim::{Address, Chain, Timestamp, Wei};
use ids::{AccountId, BitSet, Interner, MarketId, NftKey};
use labels::LabelRegistry;
use serde::{Deserialize, Serialize};
use tokens::NftId;

use crate::parallel::Executor;
use crate::txgraph::{DenseTradeEdge, NftGraph, TradeEdge};

/// A refined wash-trading candidate in resolved (address-keyed) form: the
/// report-boundary twin of [`DenseCandidate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The NFT whose graph contains the component.
    pub nft: NftId,
    /// The component's accounts, sorted.
    pub accounts: Vec<Address>,
    /// Sales between component accounts (self-loops included), chronological.
    pub internal_edges: Vec<(Address, Address, TradeEdge)>,
    /// Timestamp of the first internal sale.
    pub first_trade: Timestamp,
    /// Timestamp of the last internal sale.
    pub last_trade: Timestamp,
    /// Total traded volume of the internal sales.
    pub volume: Wei,
}

impl Candidate {
    /// Whether the component contains a self-loop sale.
    pub fn has_self_trade(&self) -> bool {
        self.internal_edges.iter().any(|(from, to, _)| from == to)
    }

    /// The key every candidate list in the system is ordered by: the NFT,
    /// then the component's first (lowest) account.
    pub fn sort_key(&self) -> (NftId, Address) {
        (self.nft, self.accounts.first().copied().unwrap_or(Address::NULL))
    }

    /// Lifetime of the component's activity in whole days.
    pub fn lifetime_days(&self) -> u64 {
        self.last_trade.days_since(self.first_trade)
    }

    /// The marketplace contract carrying most of the component's volume, if
    /// any of its sales went through a marketplace — the resolved twin of
    /// [`DenseCandidate::dominant_marketplace`], with the identical
    /// accumulation and lowest-address tiebreak, so a snapshot built from a
    /// resolved report attributes every activity to the same venue as one
    /// built from the dense layers.
    pub fn dominant_marketplace(&self) -> Option<Address> {
        let mut volume_by_market: Vec<(Address, u128)> = Vec::new();
        for (_, _, edge) in &self.internal_edges {
            let Some(market) = edge.marketplace else {
                continue;
            };
            match volume_by_market.iter_mut().find(|(m, _)| *m == market) {
                Some((_, volume)) => *volume += edge.price.raw().max(1),
                None => volume_by_market.push((market, edge.price.raw().max(1))),
            }
        }
        volume_by_market
            .into_iter()
            .max_by_key(|(market, volume)| (*volume, std::cmp::Reverse(*market)))
            .map(|(market, _)| market)
    }

    /// The distinct directed shape of the component's internal trading, as
    /// positions into the sorted account list — the resolved twin of
    /// [`component_shape`](crate::characterize::component_shape), for
    /// consumers that work from the report.
    pub fn shape(&self) -> Vec<(usize, usize)> {
        edge_shape(&self.accounts, self.internal_edges.iter().map(|(from, to, _)| (*from, *to)))
    }
}

/// The one shape computation both candidate representations classify
/// through: the distinct directed edges of a component's internal trading,
/// as positions into its account list. Generic over the account type so the
/// dense pipeline ([`component_shape`](crate::characterize::component_shape))
/// and the resolved report type ([`Candidate::shape`]) cannot drift apart.
pub(crate) fn edge_shape<T: Copy + PartialEq>(
    accounts: &[T],
    endpoints: impl Iterator<Item = (T, T)>,
) -> Vec<(usize, usize)> {
    let position = |account: T| {
        accounts.iter().position(|&a| a == account).expect("edge endpoints are members")
    };
    let mut shape: Vec<(usize, usize)> =
        endpoints.map(|(from, to)| (position(from), position(to))).collect();
    shape.sort_unstable();
    shape.dedup();
    shape
}

/// A refined wash-trading candidate: one strongly connected component of one
/// NFT's transaction graph that survived every refinement step, in dense-id
/// form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseCandidate {
    /// The NFT whose graph contains the component.
    pub nft: NftKey,
    /// The component's accounts, sorted by resolved address (the position
    /// order shapes and report account lists are built on).
    pub accounts: Vec<AccountId>,
    /// Sales between component accounts (self-loops included), chronological.
    pub internal_edges: Vec<(AccountId, AccountId, DenseTradeEdge)>,
    /// Timestamp of the first internal sale.
    pub first_trade: Timestamp,
    /// Timestamp of the last internal sale.
    pub last_trade: Timestamp,
    /// Total traded volume of the internal sales.
    pub volume: Wei,
}

impl DenseCandidate {
    /// Whether the component contains a self-loop sale.
    pub fn has_self_trade(&self) -> bool {
        self.internal_edges.iter().any(|(from, to, _)| from == to)
    }

    /// The candidate ordering key, on resolved identities: the NFT, then the
    /// component's first (lowest-address) account. Batch refinement and the
    /// streaming re-assembly both sort by this key, which is what keeps
    /// their outputs bit-identical — and identical to the address-keyed
    /// pipeline, whose first-seen-independent order this reproduces.
    pub fn sort_key(&self, interner: &Interner) -> (NftId, Address) {
        (
            interner.nft(self.nft),
            self.accounts.first().map(|&id| interner.address(id)).unwrap_or(Address::NULL),
        )
    }

    /// The marketplace that carries most of the component's volume, if any
    /// of its sales went through a marketplace. Volume ties break towards
    /// the lowest market *address* (resolved through the interner), matching
    /// the address-keyed pipeline's deterministic tiebreak.
    pub fn dominant_marketplace(&self, interner: &Interner) -> Option<MarketId> {
        let mut volume_by_market: Vec<(MarketId, u128)> = Vec::new();
        for (_, _, edge) in &self.internal_edges {
            let Some(market) = edge.marketplace else {
                continue;
            };
            match volume_by_market.iter_mut().find(|(m, _)| *m == market) {
                Some((_, volume)) => *volume += edge.price.raw().max(1),
                None => volume_by_market.push((market, edge.price.raw().max(1))),
            }
        }
        volume_by_market
            .into_iter()
            .max_by_key(|(market, volume)| (*volume, std::cmp::Reverse(interner.market(*market))))
            .map(|(market, _)| market)
    }

    /// Lifetime of the component's activity in whole days.
    pub fn lifetime_days(&self) -> u64 {
        self.last_trade.days_since(self.first_trade)
    }

    /// Resolve to the report-boundary [`Candidate`] — the single point where
    /// this component's ids become addresses again.
    pub fn resolve(&self, interner: &Interner) -> Candidate {
        Candidate {
            nft: interner.nft(self.nft),
            accounts: self.accounts.iter().map(|&id| interner.address(id)).collect(),
            internal_edges: self
                .internal_edges
                .iter()
                .map(|(from, to, edge)| {
                    (interner.address(*from), interner.address(*to), edge.resolve(interner))
                })
                .collect(),
            first_trade: self.first_trade,
            last_trade: self.last_trade,
            volume: self.volume,
        }
    }
}

/// Candidate counts after one refinement stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageCount {
    /// NFTs with at least one surviving component.
    pub nfts: usize,
    /// Distinct accounts involved in surviving components.
    pub accounts: usize,
    /// Number of surviving components.
    pub components: usize,
}

/// Counts after each refinement stage (the paper reports these in §IV-A/B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RefinementReport {
    /// After the initial SCC search on the raw graphs.
    pub initial: StageCount,
    /// After removing labelled service accounts and the null address.
    pub after_service_removal: StageCount,
    /// After additionally removing accounts with bytecode.
    pub after_contract_removal: StageCount,
    /// After dropping components whose sales all have zero volume.
    pub after_zero_volume: StageCount,
}

/// Runs the refinement pipeline over per-NFT graphs.
pub struct Refiner<'a> {
    chain: &'a Chain,
    labels: &'a LabelRegistry,
    interner: &'a Interner,
}

/// The complete refinement outcome for one NFT graph: the suspicious
/// components surviving each §IV-B stage, plus the final candidates.
///
/// Produced by [`Refiner::refine_nft`], which is a pure function of the graph
/// (given the chain, labels and interner), so outcomes can be cached per NFT
/// and only recomputed when the graph changes — the seam the streaming
/// subsystem's dirty-set scheduler is built on. [`aggregate_refinements`]
/// folds any collection of outcomes into the [`RefinementReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NftRefinement {
    /// Suspicious components of the raw graph (address-sorted per component).
    pub initial: Vec<Vec<AccountId>>,
    /// Components surviving the service-account removal.
    pub after_service: Vec<Vec<AccountId>>,
    /// Components additionally surviving the contract-account removal.
    pub after_contract: Vec<Vec<AccountId>>,
    /// Components surviving the zero-volume filter, as full candidates.
    pub candidates: Vec<DenseCandidate>,
}

impl NftRefinement {
    /// Whether the graph produced no suspicious component at any stage.
    pub fn is_empty(&self) -> bool {
        self.initial.is_empty()
            && self.after_service.is_empty()
            && self.after_contract.is_empty()
            && self.candidates.is_empty()
    }
}

/// Fold per-NFT refinement outcomes into the §IV-B per-stage counts.
///
/// Pure aggregation: counts are additive and account totals are dense bitset
/// cardinalities, so the result is independent of iteration order —
/// [`Refiner::refine_with`] and the streaming re-aggregation share it.
pub fn aggregate_refinements<'a>(
    outcomes: impl IntoIterator<Item = &'a NftRefinement>,
) -> RefinementReport {
    let mut report = RefinementReport::default();
    let mut initial_accounts = BitSet::new();
    let mut service_accounts = BitSet::new();
    let mut contract_accounts = BitSet::new();
    let mut final_accounts = BitSet::new();
    for outcome in outcomes {
        if !outcome.initial.is_empty() {
            report.initial.nfts += 1;
            report.initial.components += outcome.initial.len();
            for &account in outcome.initial.iter().flatten() {
                initial_accounts.insert(account.index());
            }
        }
        if !outcome.after_service.is_empty() {
            report.after_service_removal.nfts += 1;
            report.after_service_removal.components += outcome.after_service.len();
            for &account in outcome.after_service.iter().flatten() {
                service_accounts.insert(account.index());
            }
        }
        if !outcome.after_contract.is_empty() {
            report.after_contract_removal.nfts += 1;
            report.after_contract_removal.components += outcome.after_contract.len();
            for &account in outcome.after_contract.iter().flatten() {
                contract_accounts.insert(account.index());
            }
        }
        if !outcome.candidates.is_empty() {
            report.after_zero_volume.nfts += 1;
            report.after_zero_volume.components += outcome.candidates.len();
            for candidate in &outcome.candidates {
                for &account in &candidate.accounts {
                    final_accounts.insert(account.index());
                }
            }
        }
    }
    report.initial.accounts = initial_accounts.len();
    report.after_service_removal.accounts = service_accounts.len();
    report.after_contract_removal.accounts = contract_accounts.len();
    report.after_zero_volume.accounts = final_accounts.len();
    report
}

/// One stage of the [`RefinementAggregator`]: additive NFT/component counts
/// plus a per-account reference count whose non-zero support is the distinct
/// account cardinality. Each NFT contributes at most one reference per
/// account per stage (accounts are deduplicated within the outcome before
/// counting), so removing an outcome exactly undoes adding it.
#[derive(Debug, Clone, Default)]
struct StageAggregate {
    nfts: usize,
    components: usize,
    refcounts: Vec<u32>,
    distinct: usize,
}

impl StageAggregate {
    fn apply(&mut self, components: usize, deduped_accounts: &[usize], add: bool) {
        if components == 0 {
            return;
        }
        if add {
            self.nfts += 1;
            self.components += components;
            for &account in deduped_accounts {
                if account >= self.refcounts.len() {
                    self.refcounts.resize(account + 1, 0);
                }
                if self.refcounts[account] == 0 {
                    self.distinct += 1;
                }
                self.refcounts[account] += 1;
            }
        } else {
            self.nfts -= 1;
            self.components -= components;
            for &account in deduped_accounts {
                debug_assert!(self.refcounts[account] > 0, "refcount underflow");
                self.refcounts[account] -= 1;
                if self.refcounts[account] == 0 {
                    self.distinct -= 1;
                }
            }
        }
    }

    fn count(&self) -> StageCount {
        StageCount { nfts: self.nfts, accounts: self.distinct, components: self.components }
    }
}

/// Incrementally maintained [`RefinementReport`]: the streaming analyzer's
/// replacement for re-running [`aggregate_refinements`] over every suspect
/// each epoch. Add an NFT's [`NftRefinement`] when it enters the suspect
/// set, remove-then-add when a dirty NFT's outcome is recomputed; every
/// quantity is an integer count or a refcounted set cardinality —
/// order-independent — so [`RefinementAggregator::report`] equals the batch
/// fold over the same outcomes exactly.
#[derive(Debug, Clone, Default)]
pub struct RefinementAggregator {
    initial: StageAggregate,
    after_service: StageAggregate,
    after_contract: StageAggregate,
    after_zero_volume: StageAggregate,
}

impl RefinementAggregator {
    /// Fold one NFT's outcome in.
    pub fn add(&mut self, outcome: &NftRefinement) {
        self.apply(outcome, true);
    }

    /// Undo a previous [`RefinementAggregator::add`] of an equal outcome.
    pub fn remove(&mut self, outcome: &NftRefinement) {
        self.apply(outcome, false);
    }

    fn apply(&mut self, outcome: &NftRefinement, add: bool) {
        fn dedup(scratch: &mut Vec<usize>, accounts: impl Iterator<Item = AccountId>) {
            scratch.clear();
            scratch.extend(accounts.map(|id| id.index()));
            scratch.sort_unstable();
            scratch.dedup();
        }
        let mut scratch: Vec<usize> = Vec::new();
        dedup(&mut scratch, outcome.initial.iter().flatten().copied());
        self.initial.apply(outcome.initial.len(), &scratch, add);
        dedup(&mut scratch, outcome.after_service.iter().flatten().copied());
        self.after_service.apply(outcome.after_service.len(), &scratch, add);
        dedup(&mut scratch, outcome.after_contract.iter().flatten().copied());
        self.after_contract.apply(outcome.after_contract.len(), &scratch, add);
        dedup(&mut scratch, outcome.candidates.iter().flat_map(|c| c.accounts.iter()).copied());
        self.after_zero_volume.apply(outcome.candidates.len(), &scratch, add);
    }

    /// The report over every outcome currently folded in — equal to
    /// [`aggregate_refinements`] over the same collection.
    pub fn report(&self) -> RefinementReport {
        RefinementReport {
            initial: self.initial.count(),
            after_service_removal: self.after_service.count(),
            after_contract_removal: self.after_contract.count(),
            after_zero_volume: self.after_zero_volume.count(),
        }
    }
}

impl<'a> Refiner<'a> {
    /// Create a refiner reading account labels and bytecode from the given
    /// chain and registry, resolving dense ids through `interner`.
    pub fn new(chain: &'a Chain, labels: &'a LabelRegistry, interner: &'a Interner) -> Self {
        Refiner { chain, labels, interner }
    }

    /// Refine every NFT graph using one thread per available core; thin
    /// wrapper over [`Refiner::refine_with`].
    pub fn refine(&self, graphs: &[NftGraph]) -> (Vec<DenseCandidate>, RefinementReport) {
        self.refine_with(graphs, &Executor::default())
    }

    /// Refine every NFT graph, returning the surviving candidates and the
    /// per-stage counts. Each NFT graph is independent, so the work is
    /// spread over the executor's thread budget; candidates are sorted by
    /// their resolved [`DenseCandidate::sort_key`], making the output
    /// identical at any thread count (and at any graph enumeration order).
    pub fn refine_with(
        &self,
        graphs: &[NftGraph],
        executor: &Executor,
    ) -> (Vec<DenseCandidate>, RefinementReport) {
        let outcomes = executor.map(graphs, |graph| self.refine_nft(graph));
        let report = aggregate_refinements(outcomes.iter());
        let mut candidates: Vec<DenseCandidate> =
            outcomes.into_iter().flat_map(|outcome| outcome.candidates).collect();
        candidates.sort_by_key(|candidate| candidate.sort_key(self.interner));
        (candidates, report)
    }

    /// Refine a single NFT graph through every §IV-B stage. Pure with respect
    /// to the graph (chain, labels and interner are read-only), so the
    /// outcome can be cached and recomputed only when the graph gains edges.
    pub fn refine_nft(&self, graph: &NftGraph) -> NftRefinement {
        let initial = graph.suspicious_account_sets(self.interner);
        if initial.is_empty() {
            return NftRefinement::default();
        }

        // Classify every node once (label lookup + bytecode probe per
        // *account*, not per edge as the address-keyed refiner did).
        let node_count = graph.graph.node_count();
        let mut non_service = vec![false; node_count];
        let mut non_contract = vec![false; node_count];
        for (index, &account) in graph.graph.nodes() {
            let address = self.interner.address(account);
            let service = self.labels.is_service_account(address);
            non_service[index] = !service;
            non_contract[index] = !service && !self.chain.is_contract(address);
        }

        // Stage 1: drop labelled service accounts and the null address.
        let without_service = self.filtered_components(graph, &non_service);
        // Stage 2: additionally drop accounts holding bytecode.
        let without_contracts = self.filtered_components(graph, &non_contract);
        // Stage 3: drop zero-volume components.
        let candidates = without_contracts
            .iter()
            .filter_map(|accounts| self.candidate_from(graph, accounts))
            .collect();

        NftRefinement {
            initial,
            after_service: without_service,
            after_contract: without_contracts,
            candidates,
        }
    }

    /// Recompute the suspicious components of `graph` restricted to the
    /// nodes whose `keep` flag is set.
    ///
    /// Runs the masked SCC directly on the original graph — no filtered
    /// subgraph is materialized (the address-keyed refiner rebuilt a fresh
    /// `DiMultiGraph` per stage per NFT, two allocations-heavy copies of
    /// every hot graph). Equivalence: a masked search never enters a dropped
    /// node and skips edges into them, which is SCC on the induced subgraph;
    /// kept nodes with no kept edges fall out as loop-free singletons, just
    /// as they fell out of the edge-driven rebuild.
    fn filtered_components(&self, graph: &NftGraph, keep: &[bool]) -> Vec<Vec<AccountId>> {
        graphlib::suspicious_components_masked(&graph.graph, keep)
            .into_iter()
            .map(|component| {
                let mut accounts: Vec<AccountId> =
                    component.iter().map(|&index| *graph.graph.node(index)).collect();
                accounts.sort_unstable_by_key(|&id| self.interner.address(id));
                accounts
            })
            .collect()
    }

    /// Turn a surviving account set into a [`DenseCandidate`], unless all
    /// its internal sales are zero-volume.
    fn candidate_from(&self, graph: &NftGraph, accounts: &[AccountId]) -> Option<DenseCandidate> {
        let internal_edges = graph.edges_among(accounts);
        if internal_edges.is_empty() {
            return None;
        }
        let any_value = internal_edges.iter().any(|(_, _, edge)| {
            if !edge.price.is_zero() {
                return true;
            }
            // Even with a zero price annotation, the carrying transaction may
            // move ERC-20 value; check the chain before discarding.
            self.chain.transaction(edge.tx_hash).map(|tx| tx.moves_value()).unwrap_or(false)
        });
        if !any_value {
            return None;
        }
        let first_trade = internal_edges.iter().map(|(_, _, e)| e.timestamp).min()?;
        let last_trade = internal_edges.iter().map(|(_, _, e)| e.timestamp).max()?;
        let volume = internal_edges.iter().map(|(_, _, e)| e.price).sum();
        Some(DenseCandidate {
            nft: graph.nft,
            accounts: accounts.to_vec(),
            internal_edges,
            first_trade,
            last_trade,
            volume,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, NftTransfer};
    use crate::txgraph::tests::{dataset_of, ids_of};
    use ethsim::{BlockNumber, Timestamp, TxHash};
    use labels::LabelCategory;

    fn transfer(nft: NftId, from: Address, to: Address, price_eth: f64, at: u64) -> NftTransfer {
        NftTransfer {
            nft,
            from,
            to,
            tx_hash: TxHash::hash_of(format!("{from}->{to}@{at}").as_bytes()),
            block: BlockNumber(at),
            timestamp: Timestamp::from_secs(at * 1000),
            price: Wei::from_eth(price_eth),
            marketplace: None,
        }
    }

    fn chain_with(accounts: &[(&str, bool)]) -> Chain {
        let mut chain = Chain::new(Timestamp::from_secs(0));
        for (seed, is_contract) in accounts {
            if *is_contract {
                chain.deploy_contract(seed, vec![0x60]).unwrap();
            } else {
                chain.register_eoa(Address::derived(seed)).unwrap();
            }
        }
        chain
    }

    fn graphs_of(dataset: &Dataset) -> Vec<NftGraph> {
        NftGraph::from_dataset(dataset)
    }

    #[test]
    fn wash_pair_survives_refinement() {
        let nft = NftId::new(Address::derived("collection"), 1);
        let a = Address::derived("a");
        let b = Address::derived("b");
        let dataset = dataset_of(&[
            transfer(nft, Address::NULL, a, 0.0, 1),
            transfer(nft, a, b, 1.0, 2),
            transfer(nft, b, a, 1.0, 3),
        ]);
        let graphs = graphs_of(&dataset);
        let chain = chain_with(&[("a", false), ("b", false)]);
        let labels = LabelRegistry::new();
        let (candidates, report) = Refiner::new(&chain, &labels, &dataset.interner).refine(&graphs);
        assert_eq!(candidates.len(), 1);
        let resolved = candidates[0].resolve(&dataset.interner);
        assert_eq!(resolved.accounts, vec![a.min(b), a.max(b)]);
        assert_eq!(resolved.volume, Wei::from_eth(2.0));
        assert_eq!(resolved.internal_edges.len(), 2);
        assert_eq!(report.initial.components, 1);
        assert_eq!(report.after_zero_volume.components, 1);
        assert!(!candidates[0].has_self_trade());
        assert!(!resolved.has_self_trade());
        assert_eq!(resolved.sort_key(), candidates[0].sort_key(&dataset.interner));
    }

    #[test]
    fn service_account_cycles_are_removed() {
        // A cycle that exists only because an exchange deposit address is in
        // the middle must disappear after the service-removal step.
        let nft = NftId::new(Address::derived("collection"), 2);
        let user = Address::derived("user");
        let exchange = Address::derived("exchange-hot-wallet");
        let dataset = dataset_of(&[
            transfer(nft, Address::NULL, user, 0.0, 1),
            transfer(nft, user, exchange, 1.0, 2),
            transfer(nft, exchange, user, 1.0, 3),
        ]);
        let graphs = graphs_of(&dataset);
        let chain = chain_with(&[("user", false), ("exchange-hot-wallet", false)]);
        let mut labels = LabelRegistry::new();
        labels.insert(exchange, "Binance 7", LabelCategory::Exchange);
        let (candidates, report) = Refiner::new(&chain, &labels, &dataset.interner).refine(&graphs);
        assert!(candidates.is_empty());
        assert_eq!(report.initial.components, 1);
        assert_eq!(report.after_service_removal.components, 0);
    }

    #[test]
    fn contract_account_cycles_are_removed() {
        let nft = NftId::new(Address::derived("collection"), 3);
        let user = Address::derived("user");
        let pool = Address::derived("contract:lending-pool");
        let dataset = dataset_of(&[
            transfer(nft, Address::NULL, user, 0.0, 1),
            transfer(nft, user, pool, 1.0, 2),
            transfer(nft, pool, user, 1.0, 3),
        ]);
        let graphs = graphs_of(&dataset);
        let mut chain = Chain::new(Timestamp::from_secs(0));
        chain.register_eoa(user).unwrap();
        chain.deploy_contract("lending-pool", vec![0x60, 0x80]).unwrap();
        let labels = LabelRegistry::new();
        let (candidates, report) = Refiner::new(&chain, &labels, &dataset.interner).refine(&graphs);
        assert!(candidates.is_empty());
        assert_eq!(report.after_service_removal.components, 1);
        assert_eq!(report.after_contract_removal.components, 0);
    }

    #[test]
    fn zero_volume_components_are_dropped() {
        let nft = NftId::new(Address::derived("collection"), 4);
        let a = Address::derived("wallet-1");
        let b = Address::derived("wallet-2");
        let dataset = dataset_of(&[
            transfer(nft, Address::NULL, a, 0.0, 1),
            transfer(nft, a, b, 0.0, 2),
            transfer(nft, b, a, 0.0, 3),
        ]);
        let graphs = graphs_of(&dataset);
        let chain = chain_with(&[("wallet-1", false), ("wallet-2", false)]);
        let labels = LabelRegistry::new();
        let (candidates, report) = Refiner::new(&chain, &labels, &dataset.interner).refine(&graphs);
        assert!(candidates.is_empty());
        assert_eq!(report.after_contract_removal.components, 1);
        assert_eq!(report.after_zero_volume.components, 0);
    }

    #[test]
    fn self_trade_candidate_is_detected() {
        let nft = NftId::new(Address::derived("collection"), 5);
        let a = Address::derived("selfish");
        let dataset =
            dataset_of(&[transfer(nft, Address::NULL, a, 0.0, 1), transfer(nft, a, a, 2.0, 2)]);
        let graphs = graphs_of(&dataset);
        let chain = chain_with(&[("selfish", false)]);
        let labels = LabelRegistry::new();
        let (candidates, _) = Refiner::new(&chain, &labels, &dataset.interner).refine(&graphs);
        assert_eq!(candidates.len(), 1);
        assert!(candidates[0].has_self_trade());
        assert_eq!(candidates[0].lifetime_days(), 0);
        assert_eq!(candidates[0].accounts, ids_of(&dataset, &["selfish"]));
    }

    #[test]
    fn dominant_marketplace_agrees_between_dense_and_resolved_views() {
        // Two venues, the second carrying more volume; a direct (off-market)
        // sale in between. Both candidate views must attribute the component
        // to the same marketplace, ties and all.
        let nft = NftId::new(Address::derived("collection"), 9);
        let a = Address::derived("m1");
        let b = Address::derived("m2");
        let opensea = Address::derived("opensea");
        let looksrare = Address::derived("looksrare");
        let mut rows = vec![
            transfer(nft, Address::NULL, a, 0.0, 1),
            transfer(nft, a, b, 1.0, 2),
            transfer(nft, b, a, 1.0, 3),
            transfer(nft, a, b, 3.0, 4),
        ];
        rows[1].marketplace = Some(opensea);
        rows[2].marketplace = None;
        rows[3].marketplace = Some(looksrare);
        let dataset = dataset_of(&rows);
        let graphs = graphs_of(&dataset);
        let chain = chain_with(&[("m1", false), ("m2", false)]);
        let labels = LabelRegistry::new();
        let (candidates, _) = Refiner::new(&chain, &labels, &dataset.interner).refine(&graphs);
        assert_eq!(candidates.len(), 1);
        let dense = candidates[0]
            .dominant_marketplace(&dataset.interner)
            .map(|id| dataset.interner.market(id));
        let resolved = candidates[0].resolve(&dataset.interner).dominant_marketplace();
        assert_eq!(dense, Some(looksrare));
        assert_eq!(dense, resolved);
    }

    #[test]
    fn report_counts_are_monotonically_non_increasing() {
        // Refinement only removes candidates, never adds them.
        let nft = NftId::new(Address::derived("collection"), 6);
        let a = Address::derived("p");
        let b = Address::derived("q");
        let dataset = dataset_of(&[
            transfer(nft, Address::NULL, a, 0.0, 1),
            transfer(nft, a, b, 1.0, 2),
            transfer(nft, b, a, 1.2, 3),
        ]);
        let graphs = graphs_of(&dataset);
        let chain = chain_with(&[("p", false), ("q", false)]);
        let labels = LabelRegistry::new();
        let (_, report) = Refiner::new(&chain, &labels, &dataset.interner).refine(&graphs);
        assert!(report.initial.components >= report.after_service_removal.components);
        assert!(
            report.after_service_removal.components >= report.after_contract_removal.components
        );
        assert!(report.after_contract_removal.components >= report.after_zero_volume.components);
    }
}
