//! Graph refinement (§IV-B): removing service accounts, smart-contract
//! accounts and zero-volume components from the suspicious candidates.

use ethsim::{Address, Chain, Timestamp, Wei};
use graphlib::DiMultiGraph;
use labels::LabelRegistry;
use serde::{Deserialize, Serialize};
use tokens::NftId;

use crate::parallel::Executor;
use crate::txgraph::{NftGraph, TradeEdge};

/// A refined wash-trading candidate: one strongly connected component of one
/// NFT's transaction graph that survived every refinement step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The NFT whose graph contains the component.
    pub nft: NftId,
    /// The component's accounts, sorted.
    pub accounts: Vec<Address>,
    /// Sales between component accounts (self-loops included), chronological.
    pub internal_edges: Vec<(Address, Address, TradeEdge)>,
    /// Timestamp of the first internal sale.
    pub first_trade: Timestamp,
    /// Timestamp of the last internal sale.
    pub last_trade: Timestamp,
    /// Total traded volume of the internal sales.
    pub volume: Wei,
}

impl Candidate {
    /// Whether the component contains a self-loop sale.
    pub fn has_self_trade(&self) -> bool {
        self.internal_edges.iter().any(|(from, to, _)| from == to)
    }

    /// The key every candidate list in the system is ordered by: the NFT,
    /// then the component's first (lowest) account. Batch refinement and the
    /// streaming re-assembly both sort by this key, which is what keeps their
    /// outputs bit-identical.
    pub fn sort_key(&self) -> (NftId, Address) {
        (self.nft, self.accounts.first().copied().unwrap_or(Address::NULL))
    }

    /// The marketplace contract that carries most of the component's volume,
    /// if any of its sales went through a marketplace.
    pub fn dominant_marketplace(&self) -> Option<Address> {
        use std::collections::HashMap;
        let mut volume_by_market: HashMap<Address, u128> = HashMap::new();
        for (_, _, edge) in &self.internal_edges {
            if let Some(market) = edge.marketplace {
                *volume_by_market.entry(market).or_insert(0) += edge.price.raw().max(1);
            }
        }
        // Volume ties break towards the lowest address: the accumulator is a
        // HashMap, so an unkeyed max would follow iteration order.
        volume_by_market
            .into_iter()
            .max_by_key(|(market, volume)| (*volume, std::cmp::Reverse(*market)))
            .map(|(market, _)| market)
    }

    /// Lifetime of the component's activity in whole days.
    pub fn lifetime_days(&self) -> u64 {
        self.last_trade.days_since(self.first_trade)
    }
}

/// Candidate counts after one refinement stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageCount {
    /// NFTs with at least one surviving component.
    pub nfts: usize,
    /// Distinct accounts involved in surviving components.
    pub accounts: usize,
    /// Number of surviving components.
    pub components: usize,
}

/// Counts after each refinement stage (the paper reports these in §IV-A/B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RefinementReport {
    /// After the initial SCC search on the raw graphs.
    pub initial: StageCount,
    /// After removing labelled service accounts and the null address.
    pub after_service_removal: StageCount,
    /// After additionally removing accounts with bytecode.
    pub after_contract_removal: StageCount,
    /// After dropping components whose sales all have zero volume.
    pub after_zero_volume: StageCount,
}

/// Runs the refinement pipeline over per-NFT graphs.
pub struct Refiner<'a> {
    chain: &'a Chain,
    labels: &'a LabelRegistry,
}

/// The complete refinement outcome for one NFT graph: the suspicious
/// components surviving each §IV-B stage, plus the final candidates.
///
/// Produced by [`Refiner::refine_nft`], which is a pure function of the graph
/// (given the chain and labels), so outcomes can be cached per NFT and only
/// recomputed when the graph changes — the seam the streaming subsystem's
/// dirty-set scheduler is built on. [`aggregate_refinements`] folds any
/// collection of outcomes into the [`RefinementReport`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NftRefinement {
    /// Suspicious components of the raw graph (accounts sorted per component).
    pub initial: Vec<Vec<Address>>,
    /// Components surviving the service-account removal.
    pub after_service: Vec<Vec<Address>>,
    /// Components additionally surviving the contract-account removal.
    pub after_contract: Vec<Vec<Address>>,
    /// Components surviving the zero-volume filter, as full candidates.
    pub candidates: Vec<Candidate>,
}

impl NftRefinement {
    /// Whether the graph produced no suspicious component at any stage.
    pub fn is_empty(&self) -> bool {
        self.initial.is_empty()
            && self.after_service.is_empty()
            && self.after_contract.is_empty()
            && self.candidates.is_empty()
    }
}

/// Fold per-NFT refinement outcomes into the §IV-B per-stage counts.
///
/// Pure aggregation: counts are additive and account totals are set
/// cardinalities, so the result is independent of iteration order —
/// [`Refiner::refine_with`] and the streaming re-aggregation share it.
pub fn aggregate_refinements<'a>(
    outcomes: impl IntoIterator<Item = &'a NftRefinement>,
) -> RefinementReport {
    let mut report = RefinementReport::default();
    let mut initial_accounts = std::collections::HashSet::new();
    let mut service_accounts = std::collections::HashSet::new();
    let mut contract_accounts = std::collections::HashSet::new();
    let mut final_accounts = std::collections::HashSet::new();
    for outcome in outcomes {
        if !outcome.initial.is_empty() {
            report.initial.nfts += 1;
            report.initial.components += outcome.initial.len();
            initial_accounts.extend(outcome.initial.iter().flatten().copied());
        }
        if !outcome.after_service.is_empty() {
            report.after_service_removal.nfts += 1;
            report.after_service_removal.components += outcome.after_service.len();
            service_accounts.extend(outcome.after_service.iter().flatten().copied());
        }
        if !outcome.after_contract.is_empty() {
            report.after_contract_removal.nfts += 1;
            report.after_contract_removal.components += outcome.after_contract.len();
            contract_accounts.extend(outcome.after_contract.iter().flatten().copied());
        }
        if !outcome.candidates.is_empty() {
            report.after_zero_volume.nfts += 1;
            report.after_zero_volume.components += outcome.candidates.len();
            final_accounts
                .extend(outcome.candidates.iter().flat_map(|c| c.accounts.iter().copied()));
        }
    }
    report.initial.accounts = initial_accounts.len();
    report.after_service_removal.accounts = service_accounts.len();
    report.after_contract_removal.accounts = contract_accounts.len();
    report.after_zero_volume.accounts = final_accounts.len();
    report
}

impl<'a> Refiner<'a> {
    /// Create a refiner reading account labels and bytecode from the given
    /// chain and registry.
    pub fn new(chain: &'a Chain, labels: &'a LabelRegistry) -> Self {
        Refiner { chain, labels }
    }

    /// Refine every NFT graph using one thread per available core; thin
    /// wrapper over [`Refiner::refine_with`].
    pub fn refine(&self, graphs: &[NftGraph]) -> (Vec<Candidate>, RefinementReport) {
        self.refine_with(graphs, &Executor::default())
    }

    /// Refine every NFT graph, returning the surviving candidates and the
    /// per-stage counts. Each NFT graph is independent, so the work is spread
    /// over the executor's thread budget; results are aggregated in graph
    /// order, making the output identical at any thread count.
    pub fn refine_with(
        &self,
        graphs: &[NftGraph],
        executor: &Executor,
    ) -> (Vec<Candidate>, RefinementReport) {
        let outcomes = executor.map(graphs, |graph| self.refine_nft(graph));
        let report = aggregate_refinements(outcomes.iter());
        let mut candidates: Vec<Candidate> =
            outcomes.into_iter().flat_map(|outcome| outcome.candidates).collect();
        candidates.sort_by_key(Candidate::sort_key);
        (candidates, report)
    }

    /// Refine a single NFT graph through every §IV-B stage. Pure with respect
    /// to the graph (chain and labels are read-only), so the outcome can be
    /// cached and recomputed only when the graph gains edges.
    pub fn refine_nft(&self, graph: &NftGraph) -> NftRefinement {
        let initial = graph.suspicious_account_sets();
        if initial.is_empty() {
            return NftRefinement::default();
        }

        // Stage 1: drop labelled service accounts and the null address.
        let without_service =
            self.filtered_components(graph, |address| !self.labels.is_service_account(address));
        // Stage 2: additionally drop accounts holding bytecode.
        let without_contracts = self.filtered_components(graph, |address| {
            !self.labels.is_service_account(address) && !self.chain.is_contract(address)
        });
        // Stage 3: drop zero-volume components.
        let candidates = without_contracts
            .iter()
            .filter_map(|accounts| self.candidate_from(graph, accounts))
            .collect();

        NftRefinement {
            initial,
            after_service: without_service,
            after_contract: without_contracts,
            candidates,
        }
    }

    /// Recompute the suspicious components of `graph` restricted to the nodes
    /// accepted by `keep`.
    fn filtered_components(
        &self,
        graph: &NftGraph,
        keep: impl Fn(Address) -> bool,
    ) -> Vec<Vec<Address>> {
        let mut filtered: DiMultiGraph<Address, TradeEdge> = DiMultiGraph::new();
        for edge in graph.graph.edges() {
            let source = *graph.graph.node(edge.source);
            let target = *graph.graph.node(edge.target);
            if keep(source) && keep(target) {
                filtered.add_edge_by_key(source, target, edge.weight);
            }
        }
        graphlib::suspicious_components(&filtered)
            .into_iter()
            .map(|component| {
                let mut accounts: Vec<Address> =
                    component.iter().map(|&index| *filtered.node(index)).collect();
                accounts.sort();
                accounts
            })
            .collect()
    }

    /// Turn a surviving account set into a [`Candidate`], unless all its
    /// internal sales are zero-volume.
    fn candidate_from(&self, graph: &NftGraph, accounts: &[Address]) -> Option<Candidate> {
        let internal_edges = graph.edges_among(accounts);
        if internal_edges.is_empty() {
            return None;
        }
        let any_value = internal_edges.iter().any(|(_, _, edge)| {
            if !edge.price.is_zero() {
                return true;
            }
            // Even with a zero price annotation, the carrying transaction may
            // move ERC-20 value; check the chain before discarding.
            self.chain.transaction(edge.tx_hash).map(|tx| tx.moves_value()).unwrap_or(false)
        });
        if !any_value {
            return None;
        }
        let first_trade = internal_edges.iter().map(|(_, _, e)| e.timestamp).min()?;
        let last_trade = internal_edges.iter().map(|(_, _, e)| e.timestamp).max()?;
        let volume = internal_edges.iter().map(|(_, _, e)| e.price).sum();
        Some(Candidate {
            nft: graph.nft,
            accounts: accounts.to_vec(),
            internal_edges,
            first_trade,
            last_trade,
            volume,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::NftTransfer;
    use ethsim::{BlockNumber, Timestamp, TxHash};
    use labels::LabelCategory;

    fn transfer(nft: NftId, from: Address, to: Address, price_eth: f64, at: u64) -> NftTransfer {
        NftTransfer {
            nft,
            from,
            to,
            tx_hash: TxHash::hash_of(format!("{from}->{to}@{at}").as_bytes()),
            block: BlockNumber(at),
            timestamp: Timestamp::from_secs(at * 1000),
            price: Wei::from_eth(price_eth),
            marketplace: None,
        }
    }

    fn chain_with(accounts: &[(&str, bool)]) -> Chain {
        let mut chain = Chain::new(Timestamp::from_secs(0));
        for (seed, is_contract) in accounts {
            if *is_contract {
                chain.deploy_contract(seed, vec![0x60]).unwrap();
            } else {
                chain.register_eoa(Address::derived(seed)).unwrap();
            }
        }
        chain
    }

    #[test]
    fn wash_pair_survives_refinement() {
        let nft = NftId::new(Address::derived("collection"), 1);
        let a = Address::derived("a");
        let b = Address::derived("b");
        let transfers = vec![
            transfer(nft, Address::NULL, a, 0.0, 1),
            transfer(nft, a, b, 1.0, 2),
            transfer(nft, b, a, 1.0, 3),
        ];
        let graph = NftGraph::from_transfers(nft, &transfers);
        let chain = chain_with(&[("a", false), ("b", false)]);
        let labels = LabelRegistry::new();
        let (candidates, report) = Refiner::new(&chain, &labels).refine(&[graph]);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].accounts, vec![a.min(b), a.max(b)]);
        assert_eq!(candidates[0].volume, Wei::from_eth(2.0));
        assert_eq!(candidates[0].internal_edges.len(), 2);
        assert_eq!(report.initial.components, 1);
        assert_eq!(report.after_zero_volume.components, 1);
        assert!(!candidates[0].has_self_trade());
    }

    #[test]
    fn service_account_cycles_are_removed() {
        // A cycle that exists only because an exchange deposit address is in
        // the middle must disappear after the service-removal step.
        let nft = NftId::new(Address::derived("collection"), 2);
        let user = Address::derived("user");
        let exchange = Address::derived("exchange-hot-wallet");
        let transfers = vec![
            transfer(nft, Address::NULL, user, 0.0, 1),
            transfer(nft, user, exchange, 1.0, 2),
            transfer(nft, exchange, user, 1.0, 3),
        ];
        let graph = NftGraph::from_transfers(nft, &transfers);
        let chain = chain_with(&[("user", false), ("exchange-hot-wallet", false)]);
        let mut labels = LabelRegistry::new();
        labels.insert(exchange, "Binance 7", LabelCategory::Exchange);
        let (candidates, report) = Refiner::new(&chain, &labels).refine(&[graph]);
        assert!(candidates.is_empty());
        assert_eq!(report.initial.components, 1);
        assert_eq!(report.after_service_removal.components, 0);
    }

    #[test]
    fn contract_account_cycles_are_removed() {
        let nft = NftId::new(Address::derived("collection"), 3);
        let user = Address::derived("user");
        let pool = Address::derived("contract:lending-pool");
        let transfers = vec![
            transfer(nft, Address::NULL, user, 0.0, 1),
            transfer(nft, user, pool, 1.0, 2),
            transfer(nft, pool, user, 1.0, 3),
        ];
        let graph = NftGraph::from_transfers(nft, &transfers);
        let mut chain = Chain::new(Timestamp::from_secs(0));
        chain.register_eoa(user).unwrap();
        chain.deploy_contract("lending-pool", vec![0x60, 0x80]).unwrap();
        let labels = LabelRegistry::new();
        let (candidates, report) = Refiner::new(&chain, &labels).refine(&[graph]);
        assert!(candidates.is_empty());
        assert_eq!(report.after_service_removal.components, 1);
        assert_eq!(report.after_contract_removal.components, 0);
    }

    #[test]
    fn zero_volume_components_are_dropped() {
        let nft = NftId::new(Address::derived("collection"), 4);
        let a = Address::derived("wallet-1");
        let b = Address::derived("wallet-2");
        let transfers = vec![
            transfer(nft, Address::NULL, a, 0.0, 1),
            transfer(nft, a, b, 0.0, 2),
            transfer(nft, b, a, 0.0, 3),
        ];
        let graph = NftGraph::from_transfers(nft, &transfers);
        let chain = chain_with(&[("wallet-1", false), ("wallet-2", false)]);
        let labels = LabelRegistry::new();
        let (candidates, report) = Refiner::new(&chain, &labels).refine(&[graph]);
        assert!(candidates.is_empty());
        assert_eq!(report.after_contract_removal.components, 1);
        assert_eq!(report.after_zero_volume.components, 0);
    }

    #[test]
    fn self_trade_candidate_is_detected() {
        let nft = NftId::new(Address::derived("collection"), 5);
        let a = Address::derived("selfish");
        let transfers = vec![transfer(nft, Address::NULL, a, 0.0, 1), transfer(nft, a, a, 2.0, 2)];
        let graph = NftGraph::from_transfers(nft, &transfers);
        let chain = chain_with(&[("selfish", false)]);
        let labels = LabelRegistry::new();
        let (candidates, _) = Refiner::new(&chain, &labels).refine(&[graph]);
        assert_eq!(candidates.len(), 1);
        assert!(candidates[0].has_self_trade());
        assert_eq!(candidates[0].lifetime_days(), 0);
    }

    #[test]
    fn report_counts_are_monotonically_non_increasing() {
        // Refinement only removes candidates, never adds them.
        let nft = NftId::new(Address::derived("collection"), 6);
        let a = Address::derived("p");
        let b = Address::derived("q");
        let transfers = vec![
            transfer(nft, Address::NULL, a, 0.0, 1),
            transfer(nft, a, b, 1.0, 2),
            transfer(nft, b, a, 1.2, 3),
        ];
        let graph = NftGraph::from_transfers(nft, &transfers);
        let chain = chain_with(&[("p", false), ("q", false)]);
        let labels = LabelRegistry::new();
        let (_, report) = Refiner::new(&chain, &labels).refine(&[graph]);
        assert!(report.initial.components >= report.after_service_removal.components);
        assert!(
            report.after_service_removal.components >= report.after_contract_removal.components
        );
        assert!(report.after_contract_removal.components >= report.after_zero_volume.components);
    }
}
