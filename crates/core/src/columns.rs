//! Columnar transfer storage: the canonical, struct-of-arrays home of every
//! compliant ERC-721 transfer.
//!
//! The address-keyed pipeline stored one `Vec<NftTransfer>` per NFT inside a
//! `HashMap<NftId, _>`, which meant a 28-byte hash per history touch and a
//! scattered allocation per NFT. [`TransferColumns`] replaces that with one
//! global append-only column per field — `from`/`to` as dense
//! [`AccountId`]s, `marketplace` as dense [`MarketId`]s — plus a CSR-style
//! per-NFT row index ([`TransferColumns::rows_of`]) that yields each NFT's
//! chronological history as a slice of row numbers.
//!
//! Rows are appended in chain execution order (the same order the streaming
//! block cursor produces), so per-NFT row lists are automatically sorted by
//! `(block, timestamp)` and the store needs no re-sorting as epochs arrive.
//! A physically contiguous per-NFT layout would require exactly that
//! re-sort on every epoch; the row index gives dense, branch-free history
//! iteration without it.
//!
//! Dense ids resolve back to addresses only at the report boundary, through
//! [`TransferColumns::resolve`], which materializes the compatibility view
//! type [`NftTransfer`](crate::dataset::NftTransfer).

use ethsim::{BlockNumber, Timestamp, TxHash, Wei};
use ids::{AccountId, Interner, MarketId, NftKey};
use serde::{Deserialize, Serialize};

use crate::dataset::NftTransfer;

/// One transfer in dense form: every entity field is an interned id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferRow {
    /// The NFT being moved.
    pub nft: NftKey,
    /// Previous owner (the interned null address for mints).
    pub from: AccountId,
    /// New owner.
    pub to: AccountId,
    /// The transaction carrying the transfer log.
    pub tx_hash: TxHash,
    /// Block of the transaction.
    pub block: BlockNumber,
    /// Timestamp of the transaction.
    pub timestamp: Timestamp,
    /// Amount paid for the NFT in this transaction.
    pub price: Wei,
    /// The marketplace the transaction interacted with, if any.
    pub marketplace: Option<MarketId>,
}

/// The struct-of-arrays transfer store. See the module docs for the layout.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferColumns {
    /// NFT of each row.
    pub nft: Vec<NftKey>,
    /// Seller (previous owner) of each row.
    pub from: Vec<AccountId>,
    /// Buyer (new owner) of each row.
    pub to: Vec<AccountId>,
    /// Transaction hash of each row.
    pub tx_hash: Vec<TxHash>,
    /// Block number of each row.
    pub block: Vec<BlockNumber>,
    /// Timestamp of each row.
    pub timestamp: Vec<Timestamp>,
    /// Price paid in each row.
    pub price: Vec<Wei>,
    /// Marketplace attribution of each row.
    pub marketplace: Vec<Option<MarketId>>,
    /// CSR-style index: `rows_by_nft[key]` lists the store rows of that
    /// NFT's history, ascending (appends are chronological per NFT).
    rows_by_nft: Vec<Vec<u32>>,
}

impl TransferColumns {
    /// An empty store.
    pub fn new() -> Self {
        TransferColumns::default()
    }

    /// Number of transfers stored.
    pub fn len(&self) -> usize {
        self.nft.len()
    }

    /// Whether the store has no transfers.
    pub fn is_empty(&self) -> bool {
        self.nft.is_empty()
    }

    /// Reserve room for `additional` more transfers across every column —
    /// the commit phase calls this once per ingested batch, since the decode
    /// phase already knows exactly how many rows are coming.
    pub fn reserve(&mut self, additional: usize) {
        self.nft.reserve(additional);
        self.from.reserve(additional);
        self.to.reserve(additional);
        self.tx_hash.reserve(additional);
        self.block.reserve(additional);
        self.timestamp.reserve(additional);
        self.price.reserve(additional);
        self.marketplace.reserve(additional);
    }

    /// Append a transfer; returns its row number.
    pub fn push(&mut self, row: TransferRow) -> u32 {
        let index = u32::try_from(self.nft.len()).expect("row space fits u32");
        self.nft.push(row.nft);
        self.from.push(row.from);
        self.to.push(row.to);
        self.tx_hash.push(row.tx_hash);
        self.block.push(row.block);
        self.timestamp.push(row.timestamp);
        self.price.push(row.price);
        self.marketplace.push(row.marketplace);
        if self.rows_by_nft.len() <= row.nft.index() {
            self.rows_by_nft.resize_with(row.nft.index() + 1, Vec::new);
        }
        self.rows_by_nft[row.nft.index()].push(index);
        index
    }

    /// The chronological rows of one NFT's history (empty for keys beyond
    /// the store).
    pub fn rows_of(&self, key: NftKey) -> &[u32] {
        self.rows_by_nft.get(key.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of transfers of one NFT.
    pub fn transfer_count_of(&self, key: NftKey) -> usize {
        self.rows_of(key).len()
    }

    /// Gather one row back into a [`TransferRow`].
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn row(&self, row: u32) -> TransferRow {
        let i = row as usize;
        TransferRow {
            nft: self.nft[i],
            from: self.from[i],
            to: self.to[i],
            tx_hash: self.tx_hash[i],
            block: self.block[i],
            timestamp: self.timestamp[i],
            price: self.price[i],
            marketplace: self.marketplace[i],
        }
    }

    /// Resolve one row into the address-keyed [`NftTransfer`] view — the
    /// report-boundary compatibility type.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds or an id is foreign to `interner`.
    pub fn resolve(&self, row: u32, interner: &Interner) -> NftTransfer {
        let i = row as usize;
        NftTransfer {
            nft: interner.nft(self.nft[i]),
            from: interner.address(self.from[i]),
            to: interner.address(self.to[i]),
            tx_hash: self.tx_hash[i],
            block: self.block[i],
            timestamp: self.timestamp[i],
            price: self.price[i],
            marketplace: self.marketplace[i].map(|id| interner.market(id)),
        }
    }

    /// Concatenate a shard's column segment onto the tail of the store —
    /// exactly equivalent to pushing each of the segment's rows through
    /// [`TransferColumns::push`] in order, including the per-NFT row-index
    /// maintenance, but with one bulk `append` per column instead of a
    /// per-row fan-out. The segment is drained.
    pub fn splice(&mut self, segment: &mut ColumnSegment) {
        let base = self.nft.len();
        u32::try_from(base + segment.nft.len()).expect("row space fits u32");
        self.nft.append(&mut segment.nft);
        self.from.append(&mut segment.from);
        self.to.append(&mut segment.to);
        self.tx_hash.append(&mut segment.tx_hash);
        self.block.append(&mut segment.block);
        self.timestamp.append(&mut segment.timestamp);
        self.price.append(&mut segment.price);
        self.marketplace.append(&mut segment.marketplace);
        for (offset, &nft) in self.nft[base..].iter().enumerate() {
            if self.rows_by_nft.len() <= nft.index() {
                self.rows_by_nft.resize_with(nft.index() + 1, Vec::new);
            }
            self.rows_by_nft[nft.index()].push((base + offset) as u32);
        }
    }

    /// Approximate resident bytes of the columns and the row index (for the
    /// bytes-per-transfer accounting in the perf trajectory).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nft.capacity() * size_of::<NftKey>()
            + self.from.capacity() * size_of::<AccountId>()
            + self.to.capacity() * size_of::<AccountId>()
            + self.tx_hash.capacity() * size_of::<TxHash>()
            + self.block.capacity() * size_of::<BlockNumber>()
            + self.timestamp.capacity() * size_of::<Timestamp>()
            + self.price.capacity() * size_of::<Wei>()
            + self.marketplace.capacity() * size_of::<Option<MarketId>>()
            + self.rows_by_nft.iter().map(|rows| rows.capacity() * size_of::<u32>()).sum::<usize>()
            + self.rows_by_nft.capacity() * size_of::<Vec<u32>>()
    }
}

/// One shard's rewritten rows, in the same struct-of-arrays shape as
/// [`TransferColumns`] but with no row index: segments are built in parallel
/// (one per shard, ids already settled) and concatenated in shard order
/// through [`TransferColumns::splice`].
#[derive(Debug, Clone, Default)]
pub struct ColumnSegment {
    nft: Vec<NftKey>,
    from: Vec<AccountId>,
    to: Vec<AccountId>,
    tx_hash: Vec<TxHash>,
    block: Vec<BlockNumber>,
    timestamp: Vec<Timestamp>,
    price: Vec<Wei>,
    marketplace: Vec<Option<MarketId>>,
}

impl ColumnSegment {
    /// An empty segment sized for `rows` transfers.
    pub fn with_capacity(rows: usize) -> Self {
        ColumnSegment {
            nft: Vec::with_capacity(rows),
            from: Vec::with_capacity(rows),
            to: Vec::with_capacity(rows),
            tx_hash: Vec::with_capacity(rows),
            block: Vec::with_capacity(rows),
            timestamp: Vec::with_capacity(rows),
            price: Vec::with_capacity(rows),
            marketplace: Vec::with_capacity(rows),
        }
    }

    /// Append one settled row.
    pub fn push(&mut self, row: TransferRow) {
        self.nft.push(row.nft);
        self.from.push(row.from);
        self.to.push(row.to);
        self.tx_hash.push(row.tx_hash);
        self.block.push(row.block);
        self.timestamp.push(row.timestamp);
        self.price.push(row.price);
        self.marketplace.push(row.marketplace);
    }

    /// Number of rows in the segment.
    pub fn len(&self) -> usize {
        self.nft.len()
    }

    /// Whether the segment holds no rows.
    pub fn is_empty(&self) -> bool {
        self.nft.is_empty()
    }

    /// The NFT keys of the segment's rows, in row order — the commit phase
    /// reads these to accumulate the dirty set before the segment is spliced.
    pub fn nft_keys(&self) -> &[NftKey] {
        &self.nft
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::Address;
    use tokens::NftId;

    fn row(nft: u32, from: u32, to: u32, at: u64) -> TransferRow {
        TransferRow {
            nft: NftKey(nft),
            from: AccountId(from),
            to: AccountId(to),
            tx_hash: TxHash::hash_of(format!("{nft}-{from}-{to}-{at}").as_bytes()),
            block: BlockNumber(at),
            timestamp: Timestamp::from_secs(at * 13),
            price: Wei::from_eth(1.0),
            marketplace: if at.is_multiple_of(2) { Some(MarketId(0)) } else { None },
        }
    }

    #[test]
    fn pushes_index_rows_per_nft_in_order() {
        let mut columns = TransferColumns::new();
        columns.push(row(0, 0, 1, 1));
        columns.push(row(1, 1, 2, 2));
        columns.push(row(0, 1, 0, 3));
        assert_eq!(columns.len(), 3);
        assert_eq!(columns.rows_of(NftKey(0)), &[0, 2]);
        assert_eq!(columns.rows_of(NftKey(1)), &[1]);
        assert_eq!(columns.rows_of(NftKey(9)), &[] as &[u32]);
        assert_eq!(columns.transfer_count_of(NftKey(0)), 2);
        let back = columns.row(2);
        assert_eq!((back.nft, back.from, back.to), (NftKey(0), AccountId(1), AccountId(0)));
        assert!(columns.resident_bytes() > 0);
    }

    #[test]
    fn splice_matches_per_row_pushes() {
        let rows: Vec<TransferRow> =
            (0u32..9).map(|i| row(i % 3, i, i + 1, u64::from(i) + 1)).collect();
        let mut pushed = TransferColumns::new();
        for transfer in &rows {
            pushed.push(*transfer);
        }
        let mut spliced = TransferColumns::new();
        let mut first = ColumnSegment::with_capacity(4);
        for transfer in &rows[..4] {
            first.push(*transfer);
        }
        let mut second = ColumnSegment::with_capacity(5);
        for transfer in &rows[4..] {
            second.push(*transfer);
        }
        assert_eq!(first.len(), 4);
        assert!(!first.is_empty());
        assert_eq!(first.nft_keys().len(), 4);
        spliced.splice(&mut first);
        spliced.splice(&mut second);
        assert!(second.is_empty(), "splice drains the segment");
        assert_eq!(spliced, pushed, "splice reproduces push semantics bit for bit");
        assert_eq!(spliced.rows_of(NftKey(0)), pushed.rows_of(NftKey(0)));
    }

    #[test]
    fn resolve_round_trips_through_the_interner() {
        let mut interner = Interner::new();
        let nft = NftId::new(Address::derived("collection"), 4);
        let key = interner.intern_nft(nft);
        let from = interner.intern_account(Address::derived("a"));
        let to = interner.intern_account(Address::derived("b"));
        let market = interner.intern_market(Address::derived("opensea"));
        let mut columns = TransferColumns::new();
        let index = columns.push(TransferRow {
            nft: key,
            from,
            to,
            tx_hash: TxHash::hash_of(b"t"),
            block: BlockNumber(7),
            timestamp: Timestamp::from_secs(91),
            price: Wei::from_eth(2.0),
            marketplace: Some(market),
        });
        let view = columns.resolve(index, &interner);
        assert_eq!(view.nft, nft);
        assert_eq!(view.from, Address::derived("a"));
        assert_eq!(view.to, Address::derived("b"));
        assert_eq!(view.marketplace, Some(Address::derived("opensea")));
        assert_eq!(view.price, Wei::from_eth(2.0));
    }
}
