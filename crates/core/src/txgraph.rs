//! Per-NFT transaction graphs (§IV-A).
//!
//! For each NFT the paper builds a directed multigraph whose nodes are the
//! accounts that ever held or received it and whose edges are individual
//! sales annotated with `(timestamp, transaction hash, interacted contract,
//! amount paid)`. Strongly connected components of this graph are the
//! wash-trading candidates.
//!
//! Nodes are dense [`AccountId`]s and marketplace annotations are dense
//! [`MarketId`]s: the graph layer never touches a 20-byte address. The
//! resolved [`TradeEdge`] (with a marketplace *address*) exists only as the
//! report-boundary twin of [`DenseTradeEdge`].

use ethsim::{Address, Timestamp, TxHash, Wei};
use graphlib::{suspicious_components, DiMultiGraph, NodeIndex};
use ids::{AccountId, Interner, MarketId, NftKey};
use serde::{Deserialize, Serialize};

use crate::columns::TransferColumns;
use crate::dataset::Dataset;
use crate::parallel::Executor;

/// Annotation of one trade edge in resolved form, exactly the tuple the
/// paper uses. Appears in the report's candidate edges; the analysis layers
/// carry [`DenseTradeEdge`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TradeEdge {
    /// Timestamp of the sale.
    pub timestamp: Timestamp,
    /// Transaction hash of the sale.
    pub tx_hash: TxHash,
    /// The marketplace contract interacted with, if any.
    pub marketplace: Option<Address>,
    /// Amount paid for the NFT.
    pub price: Wei,
}

/// Annotation of one trade edge in dense form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseTradeEdge {
    /// Timestamp of the sale.
    pub timestamp: Timestamp,
    /// Transaction hash of the sale.
    pub tx_hash: TxHash,
    /// The marketplace interacted with, if any.
    pub marketplace: Option<MarketId>,
    /// Amount paid for the NFT.
    pub price: Wei,
}

impl DenseTradeEdge {
    /// The report-boundary view of this edge.
    pub fn resolve(&self, interner: &Interner) -> TradeEdge {
        TradeEdge {
            timestamp: self.timestamp,
            tx_hash: self.tx_hash,
            marketplace: self.marketplace.map(|id| interner.market(id)),
            price: self.price,
        }
    }
}

/// The transaction graph of one NFT, over dense account ids.
#[derive(Debug, Clone)]
pub struct NftGraph {
    /// The NFT this graph describes.
    pub nft: NftKey,
    /// The directed multigraph: account → account per sale.
    pub graph: DiMultiGraph<AccountId, DenseTradeEdge>,
}

impl NftGraph {
    /// An empty graph for an NFT, ready to receive transfers incrementally
    /// through [`NftGraph::apply_rows`].
    pub fn new(nft: NftKey) -> Self {
        NftGraph { nft, graph: DiMultiGraph::new() }
    }

    /// Append column-store rows to the graph in the given order. Feeding an
    /// NFT's history through any sequence of `apply_rows` calls produces a
    /// graph identical to a one-shot [`NftGraph::from_columns`] over the full
    /// history — the seam the streaming subsystem uses to grow graphs epoch
    /// by epoch instead of rebuilding them.
    pub fn apply_rows(&mut self, columns: &TransferColumns, rows: &[u32]) {
        for &row in rows {
            let i = row as usize;
            let edge = DenseTradeEdge {
                timestamp: columns.timestamp[i],
                tx_hash: columns.tx_hash[i],
                marketplace: columns.marketplace[i],
                price: columns.price[i],
            };
            self.graph.add_edge_by_key(columns.from[i], columns.to[i], edge);
        }
    }

    /// Build the graph of one NFT from its chronological column slice. The
    /// row count is known up front, so the edge columns are sized exactly
    /// once (node capacity is left to grow: most NFT graphs have far fewer
    /// distinct accounts than transfers).
    pub fn from_columns(nft: NftKey, columns: &TransferColumns) -> Self {
        let rows = columns.rows_of(nft);
        let mut graph = NftGraph { nft, graph: DiMultiGraph::with_capacity(4, rows.len()) };
        graph.apply_rows(columns, rows);
        graph
    }

    /// Build graphs for every NFT in a dataset using one thread per
    /// available core; thin wrapper over [`NftGraph::from_dataset_with`].
    pub fn from_dataset(dataset: &Dataset) -> Vec<NftGraph> {
        NftGraph::from_dataset_with(dataset, &Executor::default())
    }

    /// Build graphs for every NFT in a dataset, spreading construction over
    /// the executor's thread budget. The result is indexed by [`NftKey`]:
    /// `graphs[key.index()]` is that NFT's graph, so no keyed map is needed
    /// downstream. Keys are a fixed enumeration, so the output is identical
    /// at any thread count.
    pub fn from_dataset_with(dataset: &Dataset, executor: &Executor) -> Vec<NftGraph> {
        let keys: Vec<NftKey> = (0..dataset.nft_count() as u32).map(NftKey).collect();
        executor.map(&keys, |key| NftGraph::from_columns(*key, &dataset.columns))
    }

    /// The paper's candidate components: SCCs with at least two nodes, plus
    /// single nodes with a self-loop. Accounts within each component are
    /// sorted by their **resolved address** — the order every candidate
    /// list, shape position and report account list is built on, which is
    /// what keeps dense outputs bit-identical to the address-keyed pipeline.
    pub fn suspicious_account_sets(&self, interner: &Interner) -> Vec<Vec<AccountId>> {
        suspicious_components(&self.graph)
            .into_iter()
            .map(|component| self.accounts_of(&component, interner))
            .collect()
    }

    /// Resolve node indices into account ids, sorted by resolved address.
    pub fn accounts_of(&self, component: &[NodeIndex], interner: &Interner) -> Vec<AccountId> {
        let mut accounts: Vec<AccountId> =
            component.iter().map(|&index| *self.graph.node(index)).collect();
        accounts.sort_unstable_by_key(|&id| interner.address(id));
        accounts
    }

    /// Graph-local membership mask for a set of accounts: `mask[node]` is
    /// true iff that node's account is in `accounts`. Shared by the edge
    /// filters here and the zero-risk net-position scan.
    pub(crate) fn membership(&self, accounts: &[AccountId]) -> Vec<bool> {
        let mut mask = vec![false; self.graph.node_count()];
        for account in accounts {
            if let Some(index) = self.graph.node_id(account) {
                mask[index] = true;
            }
        }
        mask
    }

    /// All edges between accounts of `accounts` (self-loops included),
    /// in insertion (chronological) order.
    pub fn edges_among(
        &self,
        accounts: &[AccountId],
    ) -> Vec<(AccountId, AccountId, DenseTradeEdge)> {
        let mask = self.membership(accounts);
        self.graph
            .edges()
            .filter(|edge| mask[edge.source] && mask[edge.target])
            .map(|edge| {
                (*self.graph.node(edge.source), *self.graph.node(edge.target), *edge.weight)
            })
            .collect()
    }

    /// All edges incident to any account of `accounts` (either endpoint),
    /// in chronological order. Used by the zero-risk computation, which must
    /// see acquisitions from and disposals to outsiders.
    pub fn edges_touching(
        &self,
        accounts: &[AccountId],
    ) -> Vec<(AccountId, AccountId, DenseTradeEdge)> {
        let mask = self.membership(accounts);
        self.graph
            .edges()
            .filter(|edge| mask[edge.source] || mask[edge.target])
            .map(|edge| {
                (*self.graph.node(edge.source), *self.graph.node(edge.target), *edge.weight)
            })
            .collect()
    }

    /// The distinct directed shape of the subgraph induced by `accounts`,
    /// as local positions, suitable for pattern classification.
    pub fn shape_of(&self, accounts: &[AccountId]) -> Vec<(usize, usize)> {
        let indices: Vec<NodeIndex> =
            accounts.iter().filter_map(|account| self.graph.node_id(account)).collect();
        self.graph.simple_shape_within(&indices)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use ethsim::BlockNumber;
    use tokens::NftId;

    use crate::dataset::NftTransfer;

    pub(crate) fn transfer(
        nft: NftId,
        from: &str,
        to: &str,
        price_eth: f64,
        at_secs: u64,
    ) -> NftTransfer {
        NftTransfer {
            nft,
            from: if from == "null" { Address::NULL } else { Address::derived(from) },
            to: Address::derived(to),
            tx_hash: TxHash::hash_of(format!("{from}->{to}@{at_secs}").as_bytes()),
            block: BlockNumber(at_secs / 13),
            timestamp: Timestamp::from_secs(at_secs),
            price: Wei::from_eth(price_eth),
            marketplace: None,
        }
    }

    /// Intern a transfer list into a dataset — the fixture seam the dense
    /// unit tests build their worlds through.
    pub(crate) fn dataset_of(transfers: &[NftTransfer]) -> Dataset {
        let mut dataset = Dataset::default();
        for transfer in transfers {
            dataset.push_transfer(transfer);
        }
        dataset
    }

    pub(crate) fn ids_of(dataset: &Dataset, seeds: &[&str]) -> Vec<AccountId> {
        seeds
            .iter()
            .map(|seed| dataset.interner.account_id(Address::derived(seed)).expect("interned"))
            .collect()
    }

    fn round_trip_world() -> (Dataset, NftGraph) {
        let nft = NftId::new(Address::derived("collection"), 1);
        let transfers = vec![
            transfer(nft, "minter", "washer-a", 0.0, 100),
            transfer(nft, "washer-a", "washer-b", 1.0, 200),
            transfer(nft, "washer-b", "washer-a", 1.0, 300),
            transfer(nft, "washer-a", "victim", 5.0, 400),
        ];
        let dataset = dataset_of(&transfers);
        let key = dataset.interner.nft_key(nft).unwrap();
        let graph = NftGraph::from_columns(key, &dataset.columns);
        (dataset, graph)
    }

    #[test]
    fn graph_structure_and_suspicious_sets() {
        let (dataset, graph) = round_trip_world();
        assert_eq!(graph.graph.node_count(), 4);
        assert_eq!(graph.graph.edge_count(), 4);
        let suspicious = graph.suspicious_account_sets(&dataset.interner);
        assert_eq!(suspicious.len(), 1);
        let mut expected = ids_of(&dataset, &["washer-a", "washer-b"]);
        expected.sort_unstable_by_key(|&id| dataset.interner.address(id));
        assert_eq!(suspicious[0], expected);
    }

    #[test]
    fn edges_among_and_touching_differ() {
        let (dataset, graph) = round_trip_world();
        let component = ids_of(&dataset, &["washer-a", "washer-b"]);
        let among = graph.edges_among(&component);
        assert_eq!(among.len(), 2, "only the two internal round-trip trades");
        let touching = graph.edges_touching(&component);
        assert_eq!(touching.len(), 4, "plus the mint-in and the external sale");
        // Chronological order is preserved.
        assert!(touching.windows(2).all(|w| w[0].2.timestamp <= w[1].2.timestamp));
    }

    #[test]
    fn shape_classifies_as_round_trip() {
        let (dataset, graph) = round_trip_world();
        let mut component = ids_of(&dataset, &["washer-a", "washer-b"]);
        component.sort_unstable_by_key(|&id| dataset.interner.address(id));
        let shape = graph.shape_of(&component);
        let catalogue = graphlib::PatternCatalogue::paper();
        assert_eq!(catalogue.classify(2, &shape), Some(graphlib::PatternId(1)));
    }

    #[test]
    fn self_loop_is_suspicious() {
        let nft = NftId::new(Address::derived("c"), 7);
        let transfers = vec![
            transfer(nft, "minter", "selfish", 0.0, 100),
            transfer(nft, "selfish", "selfish", 2.0, 200),
        ];
        let dataset = dataset_of(&transfers);
        let key = dataset.interner.nft_key(nft).unwrap();
        let graph = NftGraph::from_columns(key, &dataset.columns);
        let suspicious = graph.suspicious_account_sets(&dataset.interner);
        assert_eq!(suspicious, vec![ids_of(&dataset, &["selfish"])]);
        let shape = graph.shape_of(&suspicious[0]);
        assert_eq!(shape, vec![(0, 0)]);
    }

    #[test]
    fn incremental_application_matches_one_shot_build() {
        let nft = NftId::new(Address::derived("collection"), 1);
        let transfers = vec![
            transfer(nft, "minter", "washer-a", 0.0, 100),
            transfer(nft, "washer-a", "washer-b", 1.0, 200),
            transfer(nft, "washer-b", "washer-a", 1.0, 300),
            transfer(nft, "washer-a", "victim", 5.0, 400),
        ];
        let dataset = dataset_of(&transfers);
        let key = dataset.interner.nft_key(nft).unwrap();
        let batch = NftGraph::from_columns(key, &dataset.columns);
        let rows = dataset.columns.rows_of(key);
        let mut incremental = NftGraph::new(key);
        incremental.apply_rows(&dataset.columns, &rows[..2]);
        incremental.apply_rows(&dataset.columns, &rows[2..]);
        assert_eq!(incremental.graph.node_count(), batch.graph.node_count());
        assert_eq!(incremental.graph.edge_count(), batch.graph.edge_count());
        assert_eq!(
            incremental.suspicious_account_sets(&dataset.interner),
            batch.suspicious_account_sets(&dataset.interner)
        );
        let component = ids_of(&dataset, &["washer-a", "washer-b"]);
        assert_eq!(incremental.edges_among(&component), batch.edges_among(&component));
    }

    #[test]
    fn clean_history_has_no_suspicious_sets() {
        let nft = NftId::new(Address::derived("c"), 9);
        let transfers = vec![
            transfer(nft, "minter", "a", 0.0, 100),
            transfer(nft, "a", "b", 1.0, 200),
            transfer(nft, "b", "c", 2.0, 300),
        ];
        let dataset = dataset_of(&transfers);
        let key = dataset.interner.nft_key(nft).unwrap();
        let graph = NftGraph::from_columns(key, &dataset.columns);
        assert!(graph.suspicious_account_sets(&dataset.interner).is_empty());
    }
}
