//! Per-NFT transaction graphs (§IV-A).
//!
//! For each NFT the paper builds a directed multigraph whose nodes are the
//! accounts that ever held or received it and whose edges are individual
//! sales annotated with `(timestamp, transaction hash, interacted contract,
//! amount paid)`. Strongly connected components of this graph are the
//! wash-trading candidates.

use ethsim::{Address, Timestamp, TxHash, Wei};
use graphlib::{suspicious_components, DiMultiGraph, NodeIndex};
use serde::{Deserialize, Serialize};
use tokens::NftId;

use crate::dataset::{Dataset, NftTransfer};
use crate::parallel::Executor;

/// Annotation of one trade edge, exactly the tuple the paper uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TradeEdge {
    /// Timestamp of the sale.
    pub timestamp: Timestamp,
    /// Transaction hash of the sale.
    pub tx_hash: TxHash,
    /// The marketplace contract interacted with, if any.
    pub marketplace: Option<Address>,
    /// Amount paid for the NFT.
    pub price: Wei,
}

/// The transaction graph of one NFT.
#[derive(Debug, Clone)]
pub struct NftGraph {
    /// The NFT this graph describes.
    pub nft: NftId,
    /// The directed multigraph: account → account per sale.
    pub graph: DiMultiGraph<Address, TradeEdge>,
}

impl NftGraph {
    /// An empty graph for an NFT, ready to receive transfers incrementally
    /// through [`NftGraph::apply_transfers`].
    pub fn new(nft: NftId) -> Self {
        NftGraph { nft, graph: DiMultiGraph::new() }
    }

    /// Append transfers to the graph in the given order. Feeding an NFT's
    /// history through any sequence of `apply_transfers` calls produces a
    /// graph identical to a one-shot [`NftGraph::from_transfers`] over the
    /// concatenation — the seam the streaming subsystem uses to grow graphs
    /// epoch by epoch instead of rebuilding them.
    pub fn apply_transfers(&mut self, transfers: &[NftTransfer]) {
        for transfer in transfers {
            let edge = TradeEdge {
                timestamp: transfer.timestamp,
                tx_hash: transfer.tx_hash,
                marketplace: transfer.marketplace,
                price: transfer.price,
            };
            self.graph.add_edge_by_key(transfer.from, transfer.to, edge);
        }
    }

    /// Build the graph from an NFT's chronological transfer list.
    pub fn from_transfers(nft: NftId, transfers: &[NftTransfer]) -> Self {
        let mut graph = NftGraph::new(nft);
        graph.apply_transfers(transfers);
        graph
    }

    /// Build graphs for every NFT in a dataset using one thread per
    /// available core; thin wrapper over [`NftGraph::from_dataset_with`].
    pub fn from_dataset(dataset: &Dataset) -> Vec<NftGraph> {
        NftGraph::from_dataset_with(dataset, &Executor::default())
    }

    /// Build graphs for every NFT in a dataset, spreading construction over
    /// the executor's thread budget. NFT histories are sorted before the
    /// fan-out, so the returned order (ascending by NFT) is identical at any
    /// thread count.
    pub fn from_dataset_with(dataset: &Dataset, executor: &Executor) -> Vec<NftGraph> {
        let mut histories: Vec<(&NftId, &Vec<NftTransfer>)> =
            dataset.transfers_by_nft.iter().collect();
        histories.sort_by_key(|(nft, _)| **nft);
        executor.map(&histories, |(nft, transfers)| NftGraph::from_transfers(**nft, transfers))
    }

    /// The paper's candidate components: SCCs with at least two nodes, plus
    /// single nodes with a self-loop, expressed as account addresses.
    pub fn suspicious_account_sets(&self) -> Vec<Vec<Address>> {
        suspicious_components(&self.graph)
            .into_iter()
            .map(|component| self.addresses_of(&component))
            .collect()
    }

    /// Resolve node indices into account addresses (sorted).
    pub fn addresses_of(&self, component: &[NodeIndex]) -> Vec<Address> {
        let mut addresses: Vec<Address> =
            component.iter().map(|&index| *self.graph.node(index)).collect();
        addresses.sort();
        addresses
    }

    /// All edges between accounts of `accounts` (self-loops included),
    /// in insertion (chronological) order.
    pub fn edges_among(&self, accounts: &[Address]) -> Vec<(Address, Address, TradeEdge)> {
        let set: std::collections::HashSet<Address> = accounts.iter().copied().collect();
        self.graph
            .edges()
            .filter(|edge| {
                set.contains(self.graph.node(edge.source))
                    && set.contains(self.graph.node(edge.target))
            })
            .map(|edge| (*self.graph.node(edge.source), *self.graph.node(edge.target), edge.weight))
            .collect()
    }

    /// All edges incident to any account of `accounts` (either endpoint),
    /// in chronological order. Used by the zero-risk computation, which must
    /// see acquisitions from and disposals to outsiders.
    pub fn edges_touching(&self, accounts: &[Address]) -> Vec<(Address, Address, TradeEdge)> {
        let set: std::collections::HashSet<Address> = accounts.iter().copied().collect();
        self.graph
            .edges()
            .filter(|edge| {
                set.contains(self.graph.node(edge.source))
                    || set.contains(self.graph.node(edge.target))
            })
            .map(|edge| (*self.graph.node(edge.source), *self.graph.node(edge.target), edge.weight))
            .collect()
    }

    /// The distinct directed shape of the subgraph induced by `accounts`,
    /// as local positions, suitable for pattern classification.
    pub fn shape_of(&self, accounts: &[Address]) -> Vec<(usize, usize)> {
        let indices: Vec<NodeIndex> =
            accounts.iter().filter_map(|address| self.graph.node_id(address)).collect();
        self.graph.simple_shape_within(&indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ethsim::BlockNumber;

    fn transfer(nft: NftId, from: &str, to: &str, price_eth: f64, at_secs: u64) -> NftTransfer {
        NftTransfer {
            nft,
            from: Address::derived(from),
            to: Address::derived(to),
            tx_hash: TxHash::hash_of(format!("{from}->{to}@{at_secs}").as_bytes()),
            block: BlockNumber(at_secs / 13),
            timestamp: Timestamp::from_secs(at_secs),
            price: Wei::from_eth(price_eth),
            marketplace: None,
        }
    }

    fn round_trip_graph() -> NftGraph {
        let nft = NftId::new(Address::derived("collection"), 1);
        let transfers = vec![
            transfer(nft, "minter", "washer-a", 0.0, 100),
            transfer(nft, "washer-a", "washer-b", 1.0, 200),
            transfer(nft, "washer-b", "washer-a", 1.0, 300),
            transfer(nft, "washer-a", "victim", 5.0, 400),
        ];
        NftGraph::from_transfers(nft, &transfers)
    }

    #[test]
    fn graph_structure_and_suspicious_sets() {
        let graph = round_trip_graph();
        assert_eq!(graph.graph.node_count(), 4);
        assert_eq!(graph.graph.edge_count(), 4);
        let suspicious = graph.suspicious_account_sets();
        assert_eq!(suspicious.len(), 1);
        let mut expected = vec![Address::derived("washer-a"), Address::derived("washer-b")];
        expected.sort();
        assert_eq!(suspicious[0], expected);
    }

    #[test]
    fn edges_among_and_touching_differ() {
        let graph = round_trip_graph();
        let component = vec![Address::derived("washer-a"), Address::derived("washer-b")];
        let among = graph.edges_among(&component);
        assert_eq!(among.len(), 2, "only the two internal round-trip trades");
        let touching = graph.edges_touching(&component);
        assert_eq!(touching.len(), 4, "plus the mint-in and the external sale");
        // Chronological order is preserved.
        assert!(touching.windows(2).all(|w| w[0].2.timestamp <= w[1].2.timestamp));
    }

    #[test]
    fn shape_classifies_as_round_trip() {
        let graph = round_trip_graph();
        let component = vec![Address::derived("washer-a"), Address::derived("washer-b")];
        let shape = graph.shape_of(&component);
        let catalogue = graphlib::PatternCatalogue::paper();
        assert_eq!(catalogue.classify(2, &shape), Some(graphlib::PatternId(1)));
    }

    #[test]
    fn self_loop_is_suspicious() {
        let nft = NftId::new(Address::derived("c"), 7);
        let transfers = vec![
            transfer(nft, "minter", "selfish", 0.0, 100),
            transfer(nft, "selfish", "selfish", 2.0, 200),
        ];
        let graph = NftGraph::from_transfers(nft, &transfers);
        let suspicious = graph.suspicious_account_sets();
        assert_eq!(suspicious, vec![vec![Address::derived("selfish")]]);
        let shape = graph.shape_of(&suspicious[0]);
        assert_eq!(shape, vec![(0, 0)]);
    }

    #[test]
    fn incremental_application_matches_one_shot_build() {
        let nft = NftId::new(Address::derived("collection"), 1);
        let transfers = vec![
            transfer(nft, "minter", "washer-a", 0.0, 100),
            transfer(nft, "washer-a", "washer-b", 1.0, 200),
            transfer(nft, "washer-b", "washer-a", 1.0, 300),
            transfer(nft, "washer-a", "victim", 5.0, 400),
        ];
        let batch = NftGraph::from_transfers(nft, &transfers);
        let mut incremental = NftGraph::new(nft);
        incremental.apply_transfers(&transfers[..2]);
        incremental.apply_transfers(&transfers[2..]);
        assert_eq!(incremental.graph.node_count(), batch.graph.node_count());
        assert_eq!(incremental.graph.edge_count(), batch.graph.edge_count());
        assert_eq!(incremental.suspicious_account_sets(), batch.suspicious_account_sets());
        let component = vec![Address::derived("washer-a"), Address::derived("washer-b")];
        assert_eq!(incremental.edges_among(&component), batch.edges_among(&component));
    }

    #[test]
    fn clean_history_has_no_suspicious_sets() {
        let nft = NftId::new(Address::derived("c"), 9);
        let transfers = vec![
            transfer(nft, "minter", "a", 0.0, 100),
            transfer(nft, "a", "b", 1.0, 200),
            transfer(nft, "b", "c", 2.0, 300),
        ];
        let graph = NftGraph::from_transfers(nft, &transfers);
        assert!(graph.suspicious_account_sets().is_empty());
    }
}
